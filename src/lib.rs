#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

//! Umbrella crate for the ChainNet reproduction workspace.
//!
//! Re-exports the member crates under short names so examples and
//! integration tests can use a single dependency:
//!
//! ```
//! use chainnet_suite::qsim;
//! let _exp = qsim::dist::Exponential::new(1.0).unwrap();
//! ```

pub mod cli;

pub use chainnet as core;
pub use chainnet_ckpt as ckpt;
pub use chainnet_datagen as datagen;
pub use chainnet_neural as neural;
pub use chainnet_obs as obs;
pub use chainnet_placement as placement;
pub use chainnet_qsim as qsim;
pub use chainnet_serve as serve;
