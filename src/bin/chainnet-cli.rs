//! The `chainnet` command-line tool: simulate, generate datasets, train,
//! predict and optimize from JSON files. See `chainnet-cli --help`.

use chainnet_suite::ckpt::CkptError;
use chainnet_suite::cli::{parse_args, run, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|inv| run(&inv)) {
        Ok(output) => println!("{output}"),
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(CliError::Interrupted(msg)) => {
            eprintln!("interrupted: {msg}");
            // SIGTERM/SIGINT wind-down: artifacts and checkpoints were
            // flushed; exit 5 so scripts know the run is resumable.
            std::process::exit(5);
        }
        Err(CliError::Ckpt(e)) => {
            eprintln!("error: checkpoint error: {e}");
            // `--resume` with nothing to resume from is its own exit code
            // so scripts can distinguish "start fresh" from real failures.
            let code = match e {
                CkptError::NoCheckpoint { .. } => 4,
                _ => 3,
            };
            std::process::exit(code);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
