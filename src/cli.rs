//! Command-line interface logic for the `chainnet` binary.
//!
//! The CLI wires the workspace crates into five file-oriented commands so
//! the system can be driven without writing Rust:
//!
//! * `simulate`    — run the queueing simulator on a system JSON;
//! * `gen-dataset` — simulate a labeled dataset (Table III generators);
//! * `train`       — train a ChainNet surrogate on a dataset;
//! * `predict`     — predict per-chain performance of a system JSON;
//! * `optimize`    — SA search over a placement problem, GNN- or
//!   simulation-evaluated.
//!
//! All inputs and outputs are the same serde JSON shapes used by the
//! library, so artifacts interoperate with the experiment harness.

use chainnet::config::{ModelConfig, TrainConfig};
use chainnet::graph::PlacementGraph;
use chainnet::model::{ChainNet, Surrogate};
use chainnet::train::{GuardConfig, TrainError, Trainer, TRAIN_CKPT_SCHEMA};
use chainnet_ckpt::{CkptError, CkptStore};
use chainnet_datagen::dataset::{
    generate_raw_dataset_observed, generate_raw_dataset_sharded_observed, to_labeled,
    DatasetConfig, RawSample, DATAGEN_CKPT_SCHEMA,
};
use chainnet_datagen::error::DatagenError;
use chainnet_datagen::typesets::NetworkParams;
use chainnet_obs::{EventLog, Obs, Tracer};
use chainnet_placement::error::PlacementError;
use chainnet_placement::evaluator::{loss_probability, Evaluator, GnnEvaluator, SimEvaluator};
use chainnet_placement::problem::PlacementProblem;
use chainnet_placement::sa::{SaConfig, SaResult, SimulatedAnnealing, SA_CKPT_SCHEMA};
use chainnet_qsim::faults::FaultSchedule;
use chainnet_qsim::model::SystemModel;
use chainnet_qsim::sim::{SimConfig, Simulator};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// A parsed command line: the subcommand and its `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// The subcommand name.
    pub command: String,
    /// Options without the `--` prefix.
    pub options: HashMap<String, String>,
}

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// Model/simulation error.
    Qsim(chainnet_qsim::QsimError),
    /// Dataset generation or statistics error.
    Datagen(DatagenError),
    /// Surrogate training error.
    Train(TrainError),
    /// Placement search error.
    Placement(PlacementError),
    /// Checkpoint save/load/resume failure (distinct exit codes: 4 for
    /// a missing checkpoint on `--resume`, 3 otherwise).
    Ckpt(CkptError),
    /// Cooperative cancellation: SIGTERM/SIGINT arrived and the command
    /// wound down at a safe boundary, flushing its observability
    /// artifacts and (when checkpointing) a final checkpoint. Exit
    /// code 5, so scripts can distinguish "interrupted but resumable"
    /// from real failures.
    Interrupted(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Json(e) => write!(f, "json error: {e}"),
            CliError::Qsim(e) => write!(f, "model error: {e}"),
            CliError::Datagen(e) => write!(f, "dataset error: {e}"),
            CliError::Train(e) => write!(f, "training error: {e}"),
            CliError::Placement(e) => write!(f, "search error: {e}"),
            CliError::Ckpt(e) => write!(f, "checkpoint error: {e}"),
            CliError::Interrupted(m) => write!(f, "interrupted: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}
impl From<chainnet_qsim::QsimError> for CliError {
    fn from(e: chainnet_qsim::QsimError) -> Self {
        CliError::Qsim(e)
    }
}
impl From<DatagenError> for CliError {
    fn from(e: DatagenError) -> Self {
        match e {
            DatagenError::Checkpoint(c) => CliError::Ckpt(c),
            DatagenError::Interrupted { .. } => CliError::Interrupted(e.to_string()),
            other => CliError::Datagen(other),
        }
    }
}
impl From<TrainError> for CliError {
    fn from(e: TrainError) -> Self {
        match e {
            TrainError::Checkpoint(c) => CliError::Ckpt(c),
            other => CliError::Train(other),
        }
    }
}
impl From<PlacementError> for CliError {
    fn from(e: PlacementError) -> Self {
        match e {
            PlacementError::Checkpoint(c) => CliError::Ckpt(c),
            other => CliError::Placement(other),
        }
    }
}
impl From<CkptError> for CliError {
    fn from(e: CkptError) -> Self {
        CliError::Ckpt(e)
    }
}

/// The options each subcommand accepts, or `None` for unknown commands
/// (those fail later in [`run`] with the full usage text).
fn allowed_options(command: &str) -> Option<&'static [&'static str]> {
    match command {
        "simulate" => Some(&[
            "system",
            "horizon",
            "seed",
            "trace",
            "fault-schedule",
            "sim-budget",
            "sim-deadline",
            "metrics-out",
            "log-json",
            "trace-out",
        ]),
        "gen-dataset" => Some(&[
            "out",
            "samples",
            "type",
            "horizon",
            "seed",
            "metrics-out",
            "log-json",
            "trace-out",
            "checkpoint-dir",
            "checkpoint-every",
            "resume",
        ]),
        "train" => Some(&[
            "data",
            "out",
            "epochs",
            "hidden",
            "iterations",
            "batch",
            "dtype",
            "lr",
            "seed",
            "metrics-out",
            "log-json",
            "trace-out",
            "checkpoint-dir",
            "checkpoint-every",
            "resume",
        ]),
        "predict" => Some(&["model", "system"]),
        "optimize" => Some(&[
            "problem",
            "model",
            "steps",
            "trials",
            "horizon",
            "seed",
            "neighborhood",
            "out",
            "metrics-out",
            "log-json",
            "trace-out",
            "checkpoint-dir",
            "checkpoint-every",
            "resume",
        ]),
        "stats" => Some(&["data"]),
        "evaluate" => Some(&["model", "data"]),
        "export-dot" => Some(&["system", "out"]),
        "case-study" => Some(&["out"]),
        _ => None,
    }
}

/// Options that are boolean flags: present or absent, no value follows.
const FLAG_OPTIONS: &[&str] = &["resume"];

/// Parse `args` (excluding the program name) into an [`Invocation`].
///
/// # Errors
///
/// Returns [`CliError::Usage`] when no subcommand is given, an option is
/// malformed, or an option is not accepted by the subcommand.
pub fn parse_args(args: &[String]) -> Result<Invocation, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage(usage()));
    };
    if command == "--help" || command == "-h" || command == "help" {
        return Err(CliError::Usage(usage()));
    }
    let allowed = allowed_options(command);
    let mut options = HashMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = &args[i];
        let Some(stripped) = key.strip_prefix("--") else {
            return Err(CliError::Usage(format!("expected --option, got `{key}`")));
        };
        if let Some(valid) = allowed {
            if !valid.contains(&stripped) {
                return Err(CliError::Usage(format!(
                    "unknown option --{stripped} for `{command}`; valid options: {}",
                    valid
                        .iter()
                        .map(|o| format!("--{o}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        if FLAG_OPTIONS.contains(&stripped) {
            options.insert(stripped.to_string(), String::new());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return Err(CliError::Usage(format!("missing value for --{stripped}")));
        };
        options.insert(stripped.to_string(), value.clone());
        i += 2;
    }
    Ok(Invocation {
        command: command.clone(),
        options,
    })
}

/// The usage string shown on `--help` and usage errors.
pub fn usage() -> String {
    "\
chainnet — loss-aware edge AI deployment toolkit (DSN 2024 reproduction)

USAGE: chainnet <command> [--option value]...

COMMANDS:
  simulate     --system s.json [--horizon 20000] [--seed 0] [--trace N]
               [--fault-schedule faults.json] [--sim-budget MAX_EVENTS]
               [--sim-deadline SECS]
  gen-dataset  --out d.json --samples 100 [--type i|ii] [--horizon 2000] [--seed 0]
  train        --data d.json --out model.json [--epochs 40] [--hidden 32]
               [--iterations 4] [--batch 32] [--dtype f32|f64] [--lr 0.001]
               [--seed 0]  --dtype packs each mini-batch into one padded
               tape pass in that precision (fast path; no checkpointing)
  predict      --model model.json --system s.json
  optimize     --problem p.json [--model model.json] [--steps 100]
               [--trials 5] [--horizon 2000] [--seed 0] [--out placement.json]
               [--neighborhood K]  score K candidates per SA step in one
                                   batched evaluator call (incompatible
                                   with --checkpoint-dir)
  stats        --data d.json
  evaluate     --model model.json --data d.json
  export-dot   --system s.json [--out graph.dot]
  case-study   [--out problem.json]

OBSERVABILITY (simulate, gen-dataset, train, optimize):
  --metrics-out metrics.json   write a metrics snapshot when the command
                               finishes (`.prom` extension selects the
                               Prometheus text format instead of JSON)
  --log-json events.jsonl      append structured JSON-lines events
  --trace-out trace.json       record causal spans (qsim.run, train.epoch,
                               sa.batch_eval, …) and write them when the
                               command finishes: Chrome trace_event JSON
                               by default (loadable in chrome://tracing or
                               Perfetto), a raw span log with `.jsonl` /
                               `.spans`, collapsed flamegraph stacks with
                               `.folded` / `.collapsed`; diff two trace
                               files with the `trace-report` binary

CHECKPOINTING (gen-dataset, train, optimize):
  --checkpoint-dir DIR         persist crash-safe, checksummed state so a
                               killed run can continue where it left off
  --checkpoint-every N         checkpoint cadence: epochs for train (1),
                               search steps for optimize (10), samples
                               per shard for gen-dataset (64)
  --resume                     continue from the newest verified
                               checkpoint in --checkpoint-dir; the result
                               is bit-identical to an uninterrupted run.
                               Exit codes: 4 when no checkpoint exists,
                               3 for any other checkpoint error

SIGNALS (gen-dataset, train, optimize):
  SIGTERM / SIGINT wind the command down at the next safe boundary
  (shard, epoch, or search step): metrics and traces are flushed, a
  final checkpoint is written when --checkpoint-dir is active, and the
  process exits with code 5 so scripts can tell \"interrupted but
  resumable\" from a failure.

All files are the library's serde JSON formats; see the crate docs."
        .to_string()
}

/// Resolve `--checkpoint-dir` / `--checkpoint-every` / `--resume` into
/// an opened store, or `None` when checkpointing is off.
fn checkpoint_options(
    inv: &Invocation,
    prefix: &str,
    schema: u32,
    default_every: usize,
    obs: &Obs,
) -> Result<Option<(CkptStore, usize, bool)>, CliError> {
    let resume = inv.options.contains_key("resume");
    let Some(dir) = inv.options.get("checkpoint-dir") else {
        if resume || inv.options.contains_key("checkpoint-every") {
            return Err(CliError::Usage(
                "--checkpoint-every and --resume require --checkpoint-dir".into(),
            ));
        }
        return Ok(None);
    };
    let every = opt_usize(inv, "checkpoint-every", default_every)?;
    let store = CkptStore::open_observed(Path::new(dir), prefix, schema, obs)?;
    Ok(Some((store, every, resume)))
}

/// Route SIGTERM/SIGINT to the command's cooperative-cancel flag so the
/// long-running commands (`train`, `optimize`, `gen-dataset`) wind down
/// at a safe boundary — flushing metrics, traces, and (when enabled) a
/// final checkpoint — instead of dying mid-write. Registration failures
/// are ignored: the command still works, it just cannot be interrupted
/// gracefully.
fn register_cancel_signals(obs: &Obs) {
    let _ = signal_hook::flag::register(signal_hook::consts::SIGTERM, obs.cancel.shared());
    let _ = signal_hook::flag::register(signal_hook::consts::SIGINT, obs.cancel.shared());
}

/// Build the telemetry context from `--metrics-out` / `--log-json` /
/// `--trace-out`. Returns the disabled context when no flag is given, so
/// the instrumented code paths cost one branch per site.
fn build_obs(inv: &Invocation) -> Result<Obs, CliError> {
    let metrics_out = inv.options.get("metrics-out");
    let log_json = inv.options.get("log-json");
    let trace_out = inv.options.get("trace-out");
    if metrics_out.is_none() && log_json.is_none() && trace_out.is_none() {
        return Ok(Obs::disabled());
    }
    let mut obs = Obs::enabled();
    if let Some(path) = log_json {
        obs = obs.with_events(EventLog::to_file(Path::new(path))?);
    }
    if trace_out.is_some() {
        obs = obs.with_tracer(Tracer::enabled());
    }
    Ok(obs)
}

/// Write the registry snapshot to `--metrics-out` (if given): Prometheus
/// text when the path ends in `.prom`, pretty JSON otherwise. The write
/// is atomic (temp file + fsync + rename) so scrapers never observe a
/// torn snapshot.
fn write_metrics(inv: &Invocation, obs: &Obs) -> Result<(), CliError> {
    let Some(path) = inv.options.get("metrics-out") else {
        return Ok(());
    };
    let snapshot = obs.registry.snapshot();
    let rendered = if path.ends_with(".prom") {
        snapshot.to_prometheus()
    } else {
        snapshot.to_json_pretty()?
    };
    chainnet_ckpt::atomic_write(Path::new(path), rendered.as_bytes())?;
    obs.events.flush();
    Ok(())
}

/// Drain the span tracer and write the trace to `--trace-out` (if
/// given). The extension picks the format: `.jsonl`/`.spans` for the
/// raw JSON-lines span log, `.folded`/`.collapsed` for flamegraph
/// collapsed stacks, anything else for Chrome `trace_event` JSON. The
/// write is atomic like [`write_metrics`].
fn write_trace(inv: &Invocation, obs: &Obs) -> Result<(), CliError> {
    let Some(path) = inv.options.get("trace-out") else {
        return Ok(());
    };
    let trace = obs.tracer.take();
    let rendered = if path.ends_with(".jsonl") || path.ends_with(".spans") {
        trace.to_json_lines()
    } else if path.ends_with(".folded") || path.ends_with(".collapsed") {
        trace.to_collapsed_stacks()
    } else {
        trace.to_chrome_trace()
    };
    chainnet_ckpt::atomic_write(Path::new(path), rendered.as_bytes())?;
    Ok(())
}

fn opt_f64(inv: &Invocation, key: &str, default: f64) -> Result<f64, CliError> {
    match inv.options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("--{key} expects a number, got `{v}`"))),
    }
}

fn opt_usize(inv: &Invocation, key: &str, default: usize) -> Result<usize, CliError> {
    match inv.options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("--{key} expects an integer, got `{v}`"))),
    }
}

fn opt_u64(inv: &Invocation, key: &str, default: u64) -> Result<u64, CliError> {
    match inv.options.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("--{key} expects an integer, got `{v}`"))),
    }
}

fn required<'a>(inv: &'a Invocation, key: &str) -> Result<&'a str, CliError> {
    inv.options
        .get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| CliError::Usage(format!("missing required --{key}")))
}

fn read_json<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, CliError> {
    let text = std::fs::read_to_string(Path::new(path))?;
    Ok(serde_json::from_str(&text)?)
}

/// Serialize `value` as pretty JSON and write it atomically, so a crash
/// mid-write can never leave a torn artifact at `path`.
fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), CliError> {
    let json = serde_json::to_string_pretty(value)?;
    chainnet_ckpt::atomic_write(Path::new(path), json.as_bytes())?;
    Ok(())
}

/// Execute an invocation, returning the text to print on stdout.
///
/// # Errors
///
/// Any [`CliError`]; callers print it to stderr and exit non-zero.
pub fn run(inv: &Invocation) -> Result<String, CliError> {
    // Reject dangling checkpoint flags before any file I/O so the
    // usage error is not masked by a missing input file.
    if (inv.options.contains_key("resume") || inv.options.contains_key("checkpoint-every"))
        && !inv.options.contains_key("checkpoint-dir")
    {
        return Err(CliError::Usage(
            "--checkpoint-every and --resume require --checkpoint-dir".into(),
        ));
    }
    match inv.command.as_str() {
        "simulate" => cmd_simulate(inv),
        "gen-dataset" => cmd_gen_dataset(inv),
        "train" => cmd_train(inv),
        "predict" => cmd_predict(inv),
        "optimize" => cmd_optimize(inv),
        "stats" => cmd_stats(inv),
        "evaluate" => cmd_evaluate(inv),
        "export-dot" => cmd_export_dot(inv),
        "case-study" => cmd_case_study(inv),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{}",
            usage()
        ))),
    }
}

fn cmd_simulate(inv: &Invocation) -> Result<String, CliError> {
    let system: SystemModel = read_json(required(inv, "system")?)?;
    let horizon = opt_f64(inv, "horizon", 20_000.0)?;
    let seed = opt_u64(inv, "seed", 0)?;
    let trace = opt_usize(inv, "trace", 0)?;
    let mut cfg = SimConfig::try_new(horizon, seed)?.with_trace_capacity(trace);
    if let Some(v) = inv.options.get("sim-budget") {
        let budget = v
            .parse::<u64>()
            .map_err(|_| CliError::Usage(format!("--sim-budget expects an integer, got `{v}`")))?;
        if budget == 0 {
            return Err(CliError::Usage("--sim-budget must be positive".into()));
        }
        cfg = cfg.with_max_events(budget);
    }
    if let Some(v) = inv.options.get("sim-deadline") {
        let secs = v
            .parse::<f64>()
            .map_err(|_| CliError::Usage(format!("--sim-deadline expects seconds, got `{v}`")))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(CliError::Usage(
                "--sim-deadline must be finite and non-negative".into(),
            ));
        }
        cfg = cfg.with_max_wall_secs(secs);
    }
    let faults: FaultSchedule = match inv.options.get("fault-schedule") {
        Some(path) => read_json(path)?,
        None => FaultSchedule::new(),
    };
    let obs = build_obs(inv)?;
    // `run_faulted_observed` validates the schedule against the system,
    // so a schedule referencing unknown devices/chains exits non-zero
    // with a model error instead of panicking mid-run.
    let result = Simulator::new().run_faulted_observed(&system, &cfg, &faults, &obs)?;
    write_metrics(inv, &obs)?;
    write_trace(inv, &obs)?;
    Ok(serde_json::to_string_pretty(&result)?)
}

fn cmd_export_dot(inv: &Invocation) -> Result<String, CliError> {
    let system: SystemModel = read_json(required(inv, "system")?)?;
    let graph = PlacementGraph::from_model(&system, ModelConfig::paper_chainnet().feature_mode);
    let dot = chainnet::dot::to_dot(&graph);
    match inv.options.get("out") {
        Some(path) => {
            std::fs::write(Path::new(path), &dot)?;
            Ok(format!("wrote DOT graph to {path}"))
        }
        None => Ok(dot),
    }
}

fn cmd_case_study(inv: &Invocation) -> Result<String, CliError> {
    let problem = chainnet_datagen::case_study::case_study_problem()?;
    match inv.options.get("out") {
        Some(path) => {
            write_json(path, &problem)?;
            Ok(format!(
                "wrote the Section VIII-D case study ({} devices, {} chains) to {path}",
                problem.num_devices(),
                problem.num_chains()
            ))
        }
        None => Ok(serde_json::to_string_pretty(&problem)?),
    }
}

fn cmd_gen_dataset(inv: &Invocation) -> Result<String, CliError> {
    let out = required(inv, "out")?;
    let samples = opt_usize(inv, "samples", 100)?;
    let horizon = opt_f64(inv, "horizon", 2_000.0)?;
    let seed = opt_u64(inv, "seed", 0)?;
    let params = match inv.options.get("type").map(|s| s.as_str()).unwrap_or("i") {
        "i" | "I" => NetworkParams::type_i(),
        "ii" | "II" => NetworkParams::type_ii(),
        other => {
            return Err(CliError::Usage(format!(
                "--type expects `i` or `ii`, got `{other}`"
            )))
        }
    };
    let cfg = DatasetConfig::new(samples, seed).with_horizon(horizon);
    let obs = build_obs(inv)?;
    register_cancel_signals(&obs);
    let ckpt = checkpoint_options(inv, "shard", DATAGEN_CKPT_SCHEMA, 64, &obs)?;
    let generated = match &ckpt {
        Some((store, every, resume)) => {
            generate_raw_dataset_sharded_observed(params, &cfg, *every, store, *resume, &obs)
        }
        None => generate_raw_dataset_observed(params, &cfg, &obs),
    };
    let raw = match generated {
        Ok(raw) => raw,
        Err(e @ DatagenError::Interrupted { .. }) => {
            // SIGTERM/SIGINT at a shard boundary: the completed shards
            // are on disk (when checkpointing); flush the telemetry so
            // the interrupted run still leaves a snapshot, then exit 5.
            write_metrics(inv, &obs)?;
            write_trace(inv, &obs)?;
            return Err(e.into());
        }
        Err(e) => return Err(e.into()),
    };
    write_json(out, &raw)?;
    write_metrics(inv, &obs)?;
    write_trace(inv, &obs)?;
    Ok(format!("wrote {} samples to {out}", raw.len()))
}

fn cmd_train(inv: &Invocation) -> Result<String, CliError> {
    // --dtype selects the packed mini-batch path (one padded tape pass
    // per batch) in the requested precision. Without it, training runs
    // the original per-graph loop, bit-identical to earlier releases.
    // Validated before any file I/O so usage errors surface first.
    let dtype = inv.options.get("dtype").map(String::as_str);
    if let Some(d) = dtype {
        if d != "f32" && d != "f64" {
            return Err(CliError::Usage(format!(
                "--dtype must be f32 or f64, got `{d}`"
            )));
        }
        if inv.options.contains_key("checkpoint-dir")
            || inv.options.contains_key("checkpoint-every")
            || inv.options.contains_key("resume")
        {
            return Err(CliError::Usage(
                "--dtype (batched training) does not support checkpointing yet; \
                 drop --checkpoint-dir/--checkpoint-every/--resume"
                    .into(),
            ));
        }
    }
    let data: Vec<RawSample> = read_json(required(inv, "data")?)?;
    let out = required(inv, "out")?;
    let mut model_cfg = ModelConfig::paper_chainnet();
    model_cfg.hidden = opt_usize(inv, "hidden", 32)?;
    model_cfg.iterations = opt_usize(inv, "iterations", 4)?;
    let train_cfg = TrainConfig {
        epochs: opt_usize(inv, "epochs", 40)?,
        batch_size: opt_usize(inv, "batch", 32)?,
        learning_rate: opt_f64(inv, "lr", 1e-3)?,
        lr_decay: 0.9,
        lr_decay_period: 10,
        seed: opt_u64(inv, "seed", 0)?,
    };
    let mut model = ChainNet::new(model_cfg, opt_u64(inv, "seed", 0)?);
    let labeled = to_labeled(&data, model_cfg.feature_mode);
    let trainer = Trainer::new(train_cfg);
    let obs = build_obs(inv)?;
    register_cancel_signals(&obs);
    let ckpt = checkpoint_options(inv, "train", TRAIN_CKPT_SCHEMA, 1, &obs)?;
    let report = match dtype {
        Some("f32") => trainer.train_batched::<f32>(&mut model, &labeled, None, &obs),
        Some(_) => trainer.train_batched::<f64>(&mut model, &labeled, None, &obs),
        None => match &ckpt {
            Some((store, every, resume)) => {
                // No gradient clipping (max_grad_norm = 0), so a healthy
                // checkpointed run stays bit-identical to the plain path; the
                // guard still rolls back on non-finite loss/grads/params.
                let guard = GuardConfig {
                    max_grad_norm: 0.0,
                    max_trips: 3,
                };
                trainer.train_checkpointed_observed(
                    &mut model, &labeled, None, &guard, store, *every, *resume, &obs,
                )?
            }
            None => trainer.train_observed(&mut model, &labeled, None, &obs),
        },
    };
    write_json(out, &model)?;
    write_metrics(inv, &obs)?;
    write_trace(inv, &obs)?;
    if report.interrupted {
        // The model written above holds the last completed epoch and the
        // checkpointed path has already flushed a resumable checkpoint;
        // the distinct exit code tells scripts to `--resume` later.
        return Err(CliError::Interrupted(format!(
            "training stopped after {} completed epoch(s); partial model saved to {out}",
            report.history.len()
        )));
    }
    let mut msg = String::new();
    writeln!(
        msg,
        "trained on {} samples for {} epochs; final loss {:.5}",
        labeled.len(),
        train_cfg.epochs,
        report.final_train_loss().unwrap_or(f64::NAN)
    )
    .expect("write to string");
    write!(msg, "model saved to {out}").expect("write to string");
    Ok(msg)
}

fn cmd_predict(inv: &Invocation) -> Result<String, CliError> {
    let model: ChainNet = read_json(required(inv, "model")?)?;
    let system: SystemModel = read_json(required(inv, "system")?)?;
    let graph = PlacementGraph::from_model(&system, model.config().feature_mode);
    let preds = model.predict(&graph);
    Ok(serde_json::to_string_pretty(&preds)?)
}

fn cmd_evaluate(inv: &Invocation) -> Result<String, CliError> {
    let model: ChainNet = read_json(required(inv, "model")?)?;
    let data: Vec<RawSample> = read_json(required(inv, "data")?)?;
    if data.is_empty() {
        return Err(CliError::Usage("dataset is empty".into()));
    }
    let labeled = to_labeled(&data, model.config().feature_mode);
    let trainer = Trainer::new(TrainConfig::paper_default());
    let apes = trainer.evaluate_ape(&model, &labeled);
    let (tput, lat) = apes.summaries();
    let (tput, lat) = (
        tput.expect("nonempty dataset"),
        lat.expect("nonempty dataset"),
    );
    let mut msg = String::new();
    writeln!(
        msg,
        "evaluated {} chains across {} graphs",
        tput.count,
        data.len()
    )
    .expect("write to string");
    writeln!(
        msg,
        "throughput APE: MAPE {:.4}  p50 {:.4}  p75 {:.4}  p95 {:.4}  p99 {:.4}",
        tput.mape, tput.p50, tput.p75, tput.p95, tput.p99
    )
    .expect("write to string");
    write!(
        msg,
        "latency    APE: MAPE {:.4}  p50 {:.4}  p75 {:.4}  p95 {:.4}  p99 {:.4}",
        lat.mape, lat.p50, lat.p75, lat.p95, lat.p99
    )
    .expect("write to string");
    Ok(msg)
}

fn cmd_stats(inv: &Invocation) -> Result<String, CliError> {
    let data: Vec<RawSample> = read_json(required(inv, "data")?)?;
    let stats = chainnet_datagen::stats::dataset_stats(&data)?;
    Ok(chainnet_datagen::stats::render_stats(&stats))
}

/// Run the SA search with or without checkpointing, depending on
/// whether `--checkpoint-dir` was given.
fn run_sa(
    sa: &SimulatedAnnealing,
    problem: &PlacementProblem,
    initial: &chainnet_qsim::model::Placement,
    ev: &mut dyn Evaluator,
    trials: usize,
    ckpt: &Option<(CkptStore, usize, bool)>,
    obs: &Obs,
) -> Result<SaResult, CliError> {
    match ckpt {
        Some((store, every, resume)) => Ok(sa.optimize_checkpointed_observed(
            problem, initial, ev, trials, store, *every, *resume, obs,
        )?),
        None => Ok(sa.optimize_observed(problem, initial, ev, trials, obs)),
    }
}

fn cmd_optimize(inv: &Invocation) -> Result<String, CliError> {
    let neighborhood = opt_usize(inv, "neighborhood", 0)?;
    if neighborhood > 0 && inv.options.contains_key("checkpoint-dir") {
        return Err(CliError::Usage(
            "--neighborhood is incompatible with --checkpoint-dir: the \
             batched neighborhood driver has no checkpoint schema"
                .to_string(),
        ));
    }
    let problem: PlacementProblem = read_json(required(inv, "problem")?)?;
    let steps = opt_usize(inv, "steps", 100)?;
    let trials = opt_usize(inv, "trials", 5)?;
    let horizon = opt_f64(inv, "horizon", 2_000.0)?;
    let seed = opt_u64(inv, "seed", 0)?;
    let initial = problem.initial_placement()?;
    let sa = SimulatedAnnealing::new(
        SaConfig::paper_default()
            .with_max_steps(steps)
            .with_seed(seed),
    );
    let obs = build_obs(inv)?;
    register_cancel_signals(&obs);
    let ckpt = checkpoint_options(inv, "sa", SA_CKPT_SCHEMA, 10, &obs)?;
    let result = match inv.options.get("model") {
        Some(path) => {
            let model: ChainNet = read_json(path)?;
            let mut ev = GnnEvaluator::new(model);
            if neighborhood > 0 {
                sa.optimize_neighborhood_observed(
                    &problem,
                    &initial,
                    &mut ev,
                    trials,
                    neighborhood,
                    &obs,
                )
            } else {
                run_sa(&sa, &problem, &initial, &mut ev, trials, &ckpt, &obs)?
            }
        }
        None => {
            let mut ev = SimEvaluator::new(SimConfig::new(horizon, seed));
            if neighborhood > 0 {
                sa.optimize_neighborhood_observed(
                    &problem,
                    &initial,
                    &mut ev,
                    trials,
                    neighborhood,
                    &obs,
                )
            } else {
                run_sa(&sa, &problem, &initial, &mut ev, trials, &ckpt, &obs)?
            }
        }
    };
    if matches!(
        result.termination_reason,
        chainnet_placement::sa::TerminationReason::Cancelled
    ) {
        // Best-so-far is still a valid placement; persist everything the
        // completed run would have, then exit with the interrupted code.
        if let Some(out) = inv.options.get("out") {
            write_json(out, &result.best_placement)?;
        }
        write_metrics(inv, &obs)?;
        write_trace(inv, &obs)?;
        return Err(CliError::Interrupted(format!(
            "search cancelled after {} evaluation(s); best-so-far objective {:.6}",
            result.evaluations, result.best_objective
        )));
    }
    // Post-process with the simulator as the paper does.
    let model = problem.bind(result.best_placement.clone())?;
    let sim = Simulator::new().run(&model, &SimConfig::new(horizon, seed ^ 0xdead))?;
    write_metrics(inv, &obs)?;
    write_trace(inv, &obs)?;
    let lam = problem.total_arrival_rate();
    if let Some(out) = inv.options.get("out") {
        write_json(out, &result.best_placement)?;
    }
    let mut msg = String::new();
    writeln!(
        msg,
        "search: {} evaluations in {:.2}s over {} trials",
        result.evaluations,
        result.elapsed_secs,
        result.trials.len()
    )
    .expect("write to string");
    writeln!(
        msg,
        "initial loss probability: {:.4}",
        loss_probability(lam, result.initial_objective)
    )
    .expect("write to string");
    writeln!(
        msg,
        "optimized loss probability (simulated): {:.4}",
        sim.loss_probability
    )
    .expect("write to string");
    write!(
        msg,
        "best placement: {}",
        serde_json::to_string(&result.best_placement)?
    )
    .expect("write to string");
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainnet_qsim::model::{Device, Fragment, Placement, ServiceChain};

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_valid_invocation() {
        let inv = parse_args(&args(&["simulate", "--system", "s.json", "--seed", "7"])).unwrap();
        assert_eq!(inv.command, "simulate");
        assert_eq!(inv.options["system"], "s.json");
        assert_eq!(inv.options["seed"], "7");
    }

    #[test]
    fn parse_rejects_unknown_option_with_suggestions() {
        let err = parse_args(&args(&["simulate", "--sytem", "s.json"])).unwrap_err();
        let CliError::Usage(text) = err else {
            panic!("expected usage error")
        };
        assert!(text.contains("unknown option --sytem for `simulate`"));
        assert!(text.contains("--system"));
        assert!(text.contains("--metrics-out"));
    }

    #[test]
    fn parse_allows_any_option_for_unknown_command() {
        // Unknown commands defer to `run` for the full usage message.
        let inv = parse_args(&args(&["frobnicate", "--whatever", "1"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_rejects_missing_value() {
        let err = parse_args(&args(&["simulate", "--system"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn parse_rejects_bare_option() {
        let err = parse_args(&args(&["simulate", "system.json"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn help_returns_usage() {
        let err = parse_args(&args(&["--help"])).unwrap_err();
        let CliError::Usage(text) = err else {
            panic!("expected usage")
        };
        assert!(text.contains("COMMANDS"));
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        let inv = parse_args(&args(&["frobnicate"])).unwrap();
        assert!(matches!(run(&inv), Err(CliError::Usage(_))));
    }

    fn temp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("chainnet_cli_test_{name}_{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn simulate_round_trip() {
        let devices = vec![Device::new(10.0, 1.0).unwrap()];
        let chains = vec![ServiceChain::new(0.5, vec![Fragment::new(1.0, 1.0).unwrap()]).unwrap()];
        let system = SystemModel::new(devices, chains, Placement::new(vec![vec![0]])).unwrap();
        let path = temp("system.json");
        std::fs::write(&path, serde_json::to_string(&system).unwrap()).unwrap();
        let inv = parse_args(&args(&[
            "simulate",
            "--system",
            &path,
            "--horizon",
            "500",
            "--seed",
            "3",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("total_throughput"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simulate_with_fault_schedule_and_budget() {
        let devices = vec![
            Device::new(10.0, 1.0).unwrap(),
            Device::new(10.0, 1.0).unwrap(),
        ];
        let chains = vec![ServiceChain::new(0.5, vec![Fragment::new(1.0, 1.0).unwrap()]).unwrap()];
        let system = SystemModel::new(devices, chains, Placement::new(vec![vec![0]])).unwrap();
        let sys_path = temp("fault_system.json");
        let sched_path = temp("fault_schedule.json");
        let metrics_path = temp("fault_metrics.json");
        std::fs::write(&sys_path, serde_json::to_string(&system).unwrap()).unwrap();
        let schedule = FaultSchedule::new().crash(100.0, 0).recover(300.0, 0);
        std::fs::write(&sched_path, serde_json::to_string(&schedule).unwrap()).unwrap();
        let inv = parse_args(&args(&[
            "simulate",
            "--system",
            &sys_path,
            "--horizon",
            "500",
            "--fault-schedule",
            &sched_path,
            "--sim-budget",
            "1000000",
            "--metrics-out",
            &metrics_path,
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("total_throughput"));
        let snap =
            chainnet_obs::Snapshot::from_json(&std::fs::read_to_string(&metrics_path).unwrap())
                .unwrap();
        assert_eq!(snap.counters["faults.injected"], 2);
        // A schedule referencing a device outside the system exits with a
        // model error rather than a panic.
        let bad = FaultSchedule::new().crash(10.0, 99);
        std::fs::write(&sched_path, serde_json::to_string(&bad).unwrap()).unwrap();
        let err = run(&inv).unwrap_err();
        assert!(matches!(err, CliError::Qsim(_)));
        for p in [&sys_path, &sched_path, &metrics_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn simulate_rejects_invalid_budget_deadline_and_horizon() {
        let devices = vec![Device::new(10.0, 1.0).unwrap()];
        let chains = vec![ServiceChain::new(0.5, vec![Fragment::new(1.0, 1.0).unwrap()]).unwrap()];
        let system = SystemModel::new(devices, chains, Placement::new(vec![vec![0]])).unwrap();
        let path = temp("bad_opts_system.json");
        std::fs::write(&path, serde_json::to_string(&system).unwrap()).unwrap();
        let run_with = |extra: &[&str]| {
            let mut argv = vec!["simulate", "--system", path.as_str()];
            argv.extend_from_slice(extra);
            run(&parse_args(&args(&argv)).unwrap())
        };
        assert!(matches!(
            run_with(&["--sim-budget", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_with(&["--sim-budget", "many"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_with(&["--sim-deadline", "-1"]),
            Err(CliError::Usage(_))
        ));
        // A bad horizon is a typed error (non-zero exit), not a panic.
        assert!(matches!(
            run_with(&["--horizon", "-5"]),
            Err(CliError::Qsim(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simulate_writes_metrics_and_event_log() {
        let devices = vec![Device::new(10.0, 1.0).unwrap()];
        let chains = vec![ServiceChain::new(0.5, vec![Fragment::new(1.0, 1.0).unwrap()]).unwrap()];
        let system = SystemModel::new(devices, chains, Placement::new(vec![vec![0]])).unwrap();
        let sys_path = temp("obs_system.json");
        let metrics_path = temp("obs_metrics.json");
        let prom_path = format!("{}.prom", temp("obs_metrics"));
        let events_path = temp("obs_events.jsonl");
        std::fs::write(&sys_path, serde_json::to_string(&system).unwrap()).unwrap();
        let inv = parse_args(&args(&[
            "simulate",
            "--system",
            &sys_path,
            "--horizon",
            "500",
            "--metrics-out",
            &metrics_path,
            "--log-json",
            &events_path,
        ]))
        .unwrap();
        run(&inv).unwrap();
        let snap =
            chainnet_obs::Snapshot::from_json(&std::fs::read_to_string(&metrics_path).unwrap())
                .unwrap();
        assert!(snap.counters["qsim.events_processed"] > 0);
        assert!(snap
            .counters
            .keys()
            .any(|k| k.starts_with("qsim.device.drops{device=")));
        assert_eq!(snap.histograms["qsim.run_wall_seconds"].count, 1);
        let events = std::fs::read_to_string(&events_path).unwrap();
        let first: serde_json::Value =
            serde_json::from_str(events.lines().next().unwrap()).unwrap();
        assert_eq!(
            first.get("component").and_then(|v| v.as_str()),
            Some("qsim")
        );
        // A `.prom` extension selects the Prometheus text format.
        let inv = parse_args(&args(&[
            "simulate",
            "--system",
            &sys_path,
            "--horizon",
            "500",
            "--metrics-out",
            &prom_path,
        ]))
        .unwrap();
        run(&inv).unwrap();
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(prom.contains("# TYPE qsim_events_processed counter"));
        for p in [&sys_path, &metrics_path, &prom_path, &events_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn gen_train_predict_pipeline() {
        let data_path = temp("data.json");
        let model_path = temp("model.json");
        // Generate a tiny dataset.
        let inv = parse_args(&args(&[
            "gen-dataset",
            "--out",
            &data_path,
            "--samples",
            "6",
            "--horizon",
            "150",
            "--seed",
            "4",
        ]))
        .unwrap();
        let msg = run(&inv).unwrap();
        assert!(msg.contains("6 samples"));
        // Train a tiny model.
        let inv = parse_args(&args(&[
            "train",
            "--data",
            &data_path,
            "--out",
            &model_path,
            "--epochs",
            "2",
            "--hidden",
            "8",
            "--iterations",
            "2",
            "--batch",
            "4",
        ]))
        .unwrap();
        let msg = run(&inv).unwrap();
        assert!(msg.contains("model saved"));
        // Predict on one of the dataset systems.
        let raw: Vec<RawSample> =
            serde_json::from_str(&std::fs::read_to_string(&data_path).unwrap()).unwrap();
        let sys_path = temp("sys2.json");
        std::fs::write(&sys_path, serde_json::to_string(&raw[0].model).unwrap()).unwrap();
        let inv = parse_args(&args(&[
            "predict",
            "--model",
            &model_path,
            "--system",
            &sys_path,
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("throughput"));
        for p in [&data_path, &model_path, &sys_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn train_dtype_routes_batched_path() {
        let data_path = temp("dtype_data.json");
        let inv = parse_args(&args(&[
            "gen-dataset",
            "--out",
            &data_path,
            "--samples",
            "6",
            "--horizon",
            "150",
            "--seed",
            "4",
        ]))
        .unwrap();
        run(&inv).unwrap();
        for dtype in ["f32", "f64"] {
            let model_path = temp(&format!("dtype_model_{dtype}.json"));
            let inv = parse_args(&args(&[
                "train",
                "--data",
                &data_path,
                "--out",
                &model_path,
                "--epochs",
                "2",
                "--hidden",
                "8",
                "--iterations",
                "2",
                "--batch",
                "4",
                "--dtype",
                dtype,
            ]))
            .unwrap();
            let msg = run(&inv).unwrap();
            assert!(msg.contains("model saved"), "dtype {dtype}: {msg}");
            // The saved model round-trips through predict.
            let model: ChainNet =
                serde_json::from_str(&std::fs::read_to_string(&model_path).unwrap()).unwrap();
            assert!(model.params().values_all_finite());
            let _ = std::fs::remove_file(&model_path);
        }
        let _ = std::fs::remove_file(&data_path);
    }

    #[test]
    fn train_dtype_rejects_bad_values_and_checkpointing() {
        let inv = parse_args(&args(&[
            "train", "--data", "d.json", "--out", "m.json", "--dtype", "f16",
        ]))
        .unwrap();
        let err = run(&inv).unwrap_err();
        assert!(matches!(err, CliError::Usage(ref m) if m.contains("f32 or f64")));
        let inv = parse_args(&args(&[
            "train",
            "--data",
            "d.json",
            "--out",
            "m.json",
            "--dtype",
            "f32",
            "--checkpoint-dir",
            "ckpts",
        ]))
        .unwrap();
        let err = run(&inv).unwrap_err();
        assert!(matches!(err, CliError::Usage(ref m) if m.contains("checkpoint")));
    }

    #[test]
    fn stats_command_summarizes_dataset() {
        let data_path = temp("stats_data.json");
        let inv = parse_args(&args(&[
            "gen-dataset",
            "--out",
            &data_path,
            "--samples",
            "4",
            "--horizon",
            "120",
        ]))
        .unwrap();
        run(&inv).unwrap();
        let inv = parse_args(&args(&["stats", "--data", &data_path])).unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("4 graphs"));
        let _ = std::fs::remove_file(&data_path);
    }

    #[test]
    fn evaluate_command_reports_ape() {
        let data_path = temp("eval_data.json");
        let model_path = temp("eval_model.json");
        run(&parse_args(&args(&[
            "gen-dataset",
            "--out",
            &data_path,
            "--samples",
            "5",
            "--horizon",
            "120",
        ]))
        .unwrap())
        .unwrap();
        run(&parse_args(&args(&[
            "train",
            "--data",
            &data_path,
            "--out",
            &model_path,
            "--epochs",
            "1",
            "--hidden",
            "8",
            "--iterations",
            "2",
        ]))
        .unwrap())
        .unwrap();
        let out = run(&parse_args(&args(&[
            "evaluate",
            "--model",
            &model_path,
            "--data",
            &data_path,
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("throughput APE"));
        for p in [&data_path, &model_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn export_dot_emits_digraph() {
        let devices = vec![Device::new(10.0, 1.0).unwrap()];
        let chains = vec![ServiceChain::new(0.5, vec![Fragment::new(1.0, 1.0).unwrap()]).unwrap()];
        let system = SystemModel::new(devices, chains, Placement::new(vec![vec![0]])).unwrap();
        let path = temp("dot_system.json");
        std::fs::write(&path, serde_json::to_string(&system).unwrap()).unwrap();
        let out = run(&parse_args(&args(&["export-dot", "--system", &path])).unwrap()).unwrap();
        assert!(out.starts_with("digraph placement"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn case_study_command_round_trips() {
        let path = temp("case_problem.json");
        let msg = run(&parse_args(&args(&["case-study", "--out", &path])).unwrap()).unwrap();
        assert!(msg.contains("5 devices"));
        let problem: PlacementProblem =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(problem.num_chains(), 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn optimize_with_sim_evaluator() {
        let devices = vec![
            Device::new(5.0, 0.3).unwrap(),
            Device::new(30.0, 2.0).unwrap(),
            Device::new(30.0, 2.0).unwrap(),
        ];
        let chains = vec![ServiceChain::new(
            1.0,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
            ],
        )
        .unwrap()];
        let problem = PlacementProblem::new(devices, chains).unwrap();
        let path = temp("problem.json");
        std::fs::write(&path, serde_json::to_string(&problem).unwrap()).unwrap();
        let inv = parse_args(&args(&[
            "optimize",
            "--problem",
            &path,
            "--steps",
            "10",
            "--trials",
            "1",
            "--horizon",
            "300",
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("optimized loss probability"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn optimize_neighborhood_batched_path() {
        let devices = vec![
            Device::new(5.0, 0.3).unwrap(),
            Device::new(30.0, 2.0).unwrap(),
            Device::new(30.0, 2.0).unwrap(),
        ];
        let chains = vec![ServiceChain::new(
            1.0,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
            ],
        )
        .unwrap()];
        let problem = PlacementProblem::new(devices, chains).unwrap();
        let path = temp("problem_nbhd.json");
        std::fs::write(&path, serde_json::to_string(&problem).unwrap()).unwrap();
        let metrics = temp("problem_nbhd_metrics.json");
        let inv = parse_args(&args(&[
            "optimize",
            "--problem",
            &path,
            "--steps",
            "10",
            "--trials",
            "1",
            "--horizon",
            "300",
            "--neighborhood",
            "4",
            "--metrics-out",
            &metrics,
        ]))
        .unwrap();
        let out = run(&inv).unwrap();
        assert!(out.contains("optimized loss probability"));
        // The batched driver must have routed through
        // BatchEvaluator::total_throughput_batch.
        let snap =
            chainnet_obs::Snapshot::from_json(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(snap.counters["sa.batch_evals"] > 0);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&metrics);
    }

    #[test]
    fn train_trace_out_writes_valid_chrome_trace() {
        let data_path = temp("trace_train_data.json");
        let model_path = temp("trace_train_model.json");
        let trace_path = temp("trace_train.json");
        run(&parse_args(&args(&[
            "gen-dataset",
            "--out",
            &data_path,
            "--samples",
            "3",
            "--horizon",
            "120",
        ]))
        .unwrap())
        .unwrap();
        run(&parse_args(&args(&[
            "train",
            "--data",
            &data_path,
            "--out",
            &model_path,
            "--epochs",
            "2",
            "--hidden",
            "8",
            "--iterations",
            "2",
            "--trace-out",
            &trace_path,
        ]))
        .unwrap())
        .unwrap();
        // The file is well-formed Chrome trace_event JSON...
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let json: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(json
            .get("traceEvents")
            .and_then(|v| v.as_seq())
            .is_some_and(|events| !events.is_empty()));
        // ...that parses back into a structurally valid trace
        // (unique ids, live parents, children nested inside parents).
        let trace = chainnet_obs::report::parse_trace(&text).unwrap();
        trace.validate().unwrap();
        let stats = trace.phase_stats();
        assert_eq!(stats["train.epoch"].count, 2);
        assert!(stats["train.step"].count >= 2);
        assert!(stats["neural.forward"].count >= stats["train.step"].count);
        assert_eq!(
            stats["neural.forward"].count,
            stats["neural.backward"].count
        );
        // Forward spans nest under steps, steps under epochs.
        let step_ids: Vec<u64> = trace
            .spans
            .iter()
            .filter(|s| s.name == "train.step")
            .map(|s| s.id)
            .collect();
        let epoch_ids: Vec<u64> = trace
            .spans
            .iter()
            .filter(|s| s.name == "train.epoch")
            .map(|s| s.id)
            .collect();
        for s in &trace.spans {
            match s.name.as_str() {
                "train.step" => assert!(epoch_ids.contains(&s.parent)),
                "neural.forward" | "neural.backward" => {
                    assert!(step_ids.contains(&s.parent), "{} under step", s.name)
                }
                _ => {}
            }
        }
        for p in [&data_path, &model_path, &trace_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn optimize_neighborhood_trace_has_sa_spans_and_diffs() {
        let devices = vec![
            Device::new(5.0, 0.3).unwrap(),
            Device::new(30.0, 2.0).unwrap(),
            Device::new(30.0, 2.0).unwrap(),
        ];
        let chains = vec![ServiceChain::new(
            1.0,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
            ],
        )
        .unwrap()];
        let problem = PlacementProblem::new(devices, chains).unwrap();
        let path = temp("trace_nbhd_problem.json");
        std::fs::write(&path, serde_json::to_string(&problem).unwrap()).unwrap();
        let trace_path = temp("trace_nbhd.json");
        run(&parse_args(&args(&[
            "optimize",
            "--problem",
            &path,
            "--steps",
            "5",
            "--trials",
            "2",
            "--horizon",
            "300",
            "--neighborhood",
            "4",
            "--trace-out",
            &trace_path,
        ]))
        .unwrap())
        .unwrap();
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let trace = chainnet_obs::report::parse_trace(&text).unwrap();
        trace.validate().unwrap();
        let stats = trace.phase_stats();
        assert_eq!(stats["sa.trial"].count, 2);
        assert_eq!(stats["sa.iteration"].count, 10);
        assert!(stats["sa.batch_eval"].count >= 1);
        // The cross-run diff emits one table row per phase.
        let rows = chainnet_obs::report::diff_traces(&trace, &trace);
        let table = chainnet_obs::report::render_diff_table(&rows);
        for phase in ["sa.trial", "sa.iteration", "sa.batch_eval"] {
            assert!(table.contains(phase), "diff table should list {phase}");
        }
        assert_eq!(chainnet_obs::report::worst_regression_pct(&rows), 0.0);
        for p in [&path, &trace_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn trace_out_extension_selects_format() {
        let devices = vec![Device::new(10.0, 1.0).unwrap()];
        let chains = vec![ServiceChain::new(0.5, vec![Fragment::new(1.0, 1.0).unwrap()]).unwrap()];
        let system = SystemModel::new(devices, chains, Placement::new(vec![vec![0]])).unwrap();
        let sys_path = temp("trace_fmt_system.json");
        std::fs::write(&sys_path, serde_json::to_string(&system).unwrap()).unwrap();
        let folded_path = format!("{}.folded", temp("trace_fmt"));
        let spans_path = format!("{}.jsonl", temp("trace_fmt"));
        for trace_path in [&folded_path, &spans_path] {
            run(&parse_args(&args(&[
                "simulate",
                "--system",
                &sys_path,
                "--horizon",
                "500",
                "--trace-out",
                trace_path,
            ]))
            .unwrap())
            .unwrap();
        }
        // Collapsed stacks: `name value` lines, rooted at qsim.run.
        let folded = std::fs::read_to_string(&folded_path).unwrap();
        assert!(folded.lines().any(|l| l.starts_with("qsim.run ")));
        // JSON-lines span log round-trips through the typed parser.
        let spans = std::fs::read_to_string(&spans_path).unwrap();
        let trace = chainnet_obs::Trace::from_json_lines(&spans).unwrap();
        trace.validate().unwrap();
        assert_eq!(trace.phase_stats()["qsim.run"].count, 1);
        for p in [&sys_path, &folded_path, &spans_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn optimize_neighborhood_rejects_checkpointing() {
        let err = run(&parse_args(&args(&[
            "optimize",
            "--problem",
            "p.json",
            "--neighborhood",
            "4",
            "--checkpoint-dir",
            "ck",
        ]))
        .unwrap())
        .unwrap_err();
        let CliError::Usage(text) = err else {
            panic!("expected usage error")
        };
        assert!(text.contains("--neighborhood"));
    }

    /// Fresh, empty directory for checkpoint tests (removed by callers).
    fn temp_dir(name: &str) -> String {
        let dir = temp(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_resume_is_a_boolean_flag() {
        // `--resume` consumes no value: `--epochs` after it must still
        // bind to `2`.
        let inv = parse_args(&args(&[
            "train", "--data", "d.json", "--out", "m.json", "--resume", "--epochs", "2",
        ]))
        .unwrap();
        assert!(inv.options.contains_key("resume"));
        assert_eq!(inv.options["epochs"], "2");
    }

    #[test]
    fn checkpoint_flags_require_checkpoint_dir() {
        for argv in [
            vec!["train", "--data", "d.json", "--out", "m.json", "--resume"],
            vec!["gen-dataset", "--out", "d.json", "--checkpoint-every", "4"],
            vec!["optimize", "--problem", "p.json", "--resume"],
        ] {
            let err = run(&parse_args(&args(&argv)).unwrap()).unwrap_err();
            let CliError::Usage(text) = err else {
                panic!("expected usage error for {argv:?}")
            };
            assert!(text.contains("--checkpoint-dir"));
        }
    }

    #[test]
    fn checkpoint_flag_errors_are_typed() {
        // Cadence of zero.
        let dir = temp_dir("cli_ckpt_zero");
        let out = temp("cli_ckpt_zero_out.json");
        let err = run(&parse_args(&args(&[
            "gen-dataset",
            "--out",
            &out,
            "--samples",
            "2",
            "--horizon",
            "100",
            "--checkpoint-dir",
            &dir,
            "--checkpoint-every",
            "0",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(matches!(err, CliError::Ckpt(CkptError::InvalidCadence)));
        // `--checkpoint-dir` pointing at a regular file.
        let file = temp("cli_ckpt_not_a_dir");
        std::fs::write(&file, b"x").unwrap();
        let err = run(&parse_args(&args(&[
            "gen-dataset",
            "--out",
            &out,
            "--samples",
            "2",
            "--horizon",
            "100",
            "--checkpoint-dir",
            &file,
        ]))
        .unwrap())
        .unwrap_err();
        assert!(matches!(
            err,
            CliError::Ckpt(CkptError::NotADirectory { .. })
        ));
        // `--resume` over an empty directory.
        let err = run(&parse_args(&args(&[
            "gen-dataset",
            "--out",
            &out,
            "--samples",
            "2",
            "--horizon",
            "100",
            "--checkpoint-dir",
            &dir,
            "--resume",
        ]))
        .unwrap())
        .unwrap_err();
        assert!(matches!(
            err,
            CliError::Ckpt(CkptError::NoCheckpoint { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn gen_dataset_checkpointed_resume_reuses_shards() {
        let dir = temp_dir("cli_gen_resume");
        let out1 = temp("cli_gen_resume_1.json");
        let out2 = temp("cli_gen_resume_2.json");
        let metrics = temp("cli_gen_resume_metrics.json");
        let base = |out: &str| {
            args(&[
                "gen-dataset",
                "--out",
                out,
                "--samples",
                "6",
                "--horizon",
                "120",
                "--seed",
                "9",
                "--checkpoint-dir",
                &dir,
                "--checkpoint-every",
                "4",
            ])
        };
        run(&parse_args(&base(&out1)).unwrap()).unwrap();
        let mut argv = base(&out2);
        argv.push("--resume".into());
        argv.extend(["--metrics-out".into(), metrics.clone()]);
        run(&parse_args(&argv).unwrap()).unwrap();
        // The resumed run reuses every completed shard: identical output,
        // no new checkpoint writes, one resume recorded.
        assert_eq!(
            std::fs::read_to_string(&out1).unwrap(),
            std::fs::read_to_string(&out2).unwrap()
        );
        let snap =
            chainnet_obs::Snapshot::from_json(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert_eq!(snap.counters["ckpt.resumes"], 1);
        assert_eq!(snap.counters.get("ckpt.writes").copied().unwrap_or(0), 0);
        for p in [&out1, &out2, &metrics] {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn train_checkpointed_matches_plain_run() {
        let data = temp("cli_train_ckpt_data.json");
        let plain = temp("cli_train_plain_model.json");
        let ckpt = temp("cli_train_ckpt_model.json");
        let dir = temp_dir("cli_train_ckpt");
        run(&parse_args(&args(&[
            "gen-dataset",
            "--out",
            &data,
            "--samples",
            "4",
            "--horizon",
            "120",
        ]))
        .unwrap())
        .unwrap();
        let train = |out: &str, extra: &[&str]| {
            let mut argv = vec![
                "train",
                "--data",
                &data,
                "--out",
                out,
                "--epochs",
                "2",
                "--hidden",
                "8",
                "--iterations",
                "2",
                "--batch",
                "4",
            ];
            argv.extend_from_slice(extra);
            run(&parse_args(&args(&argv)).unwrap()).unwrap()
        };
        train(&plain, &[]);
        train(&ckpt, &["--checkpoint-dir", &dir]);
        // The unclipped guard makes the checkpointed path bit-identical
        // to the plain trainer on a healthy run.
        assert_eq!(
            std::fs::read_to_string(&plain).unwrap(),
            std::fs::read_to_string(&ckpt).unwrap()
        );
        assert!(std::path::Path::new(&dir)
            .join("train-00000002.ckpt")
            .exists());
        for p in [&data, &plain, &ckpt] {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn optimize_checkpointed_resume_round_trip() {
        let devices = vec![
            Device::new(5.0, 0.3).unwrap(),
            Device::new(30.0, 2.0).unwrap(),
            Device::new(30.0, 2.0).unwrap(),
        ];
        let chains = vec![ServiceChain::new(
            1.0,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
            ],
        )
        .unwrap()];
        let problem = PlacementProblem::new(devices, chains).unwrap();
        let path = temp("cli_opt_ckpt_problem.json");
        let dir = temp_dir("cli_opt_ckpt");
        std::fs::write(&path, serde_json::to_string(&problem).unwrap()).unwrap();
        let argv = |extra: &[&str]| {
            let mut v = vec![
                "optimize",
                "--problem",
                &path,
                "--steps",
                "10",
                "--trials",
                "1",
                "--horizon",
                "300",
                "--checkpoint-dir",
                &dir,
                "--checkpoint-every",
                "4",
            ];
            v.extend_from_slice(extra);
            args(&v)
        };
        let full = run(&parse_args(&argv(&[])).unwrap()).unwrap();
        // Resuming a finished search replays the stored result: same best
        // placement, same cumulative evaluation count (nothing re-run).
        let resumed = run(&parse_args(&argv(&["--resume"])).unwrap()).unwrap();
        let line = |msg: &str, prefix: &str| {
            msg.lines()
                .find(|l| l.starts_with(prefix))
                .map(str::to_owned)
                .unwrap()
        };
        assert_eq!(
            line(&full, "best placement:"),
            line(&resumed, "best placement:")
        );
        let evals = |msg: &str| {
            line(msg, "search:")
                .split_whitespace()
                .nth(1)
                .unwrap()
                .to_owned()
        };
        assert_eq!(evals(&full), evals(&resumed));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
