//! Loss-aware deployment search: train a small ChainNet surrogate, then
//! use it inside simulated annealing to find a placement minimizing the
//! data loss rate — the full workflow of Fig. 3 in the paper — and
//! compare against simulation-based search.
//!
//! Run with `cargo run --release --example loss_aware_deployment`.

use chainnet_suite::core::config::{ModelConfig, TrainConfig};
use chainnet_suite::core::model::ChainNet;
use chainnet_suite::core::train::Trainer;
use chainnet_suite::datagen::dataset::{generate_raw_dataset, to_labeled, DatasetConfig};
use chainnet_suite::datagen::problems::{ProblemGenerator, ProblemParams};
use chainnet_suite::datagen::typesets::NetworkParams;
use chainnet_suite::placement::evaluator::{loss_probability, GnnEvaluator, SimEvaluator};
use chainnet_suite::placement::sa::{SaConfig, SimulatedAnnealing};
use chainnet_suite::qsim::sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Train the surrogate on simulator-labeled Type I data.
    println!("training surrogate...");
    let raw = generate_raw_dataset(
        NetworkParams::type_i(),
        &DatasetConfig::new(160, 3).with_horizon(1_000.0),
    )?;
    let mut cfg = ModelConfig::paper_chainnet();
    cfg.hidden = 24;
    cfg.iterations = 4;
    let mut net = ChainNet::new(cfg, 1);
    let trainer = Trainer::new(TrainConfig {
        epochs: 30,
        batch_size: 16,
        learning_rate: 2e-3,
        lr_decay: 0.9,
        lr_decay_period: 10,
        seed: 0,
    });
    trainer.train(&mut net, &to_labeled(&raw, cfg.feature_mode), None);

    // --- 2. A deployment problem (Table VII family, reduced and pushed
    // into overload so the loss rate is worth optimizing).
    let mut params = ProblemParams::paper_default(8);
    params.num_chains = 5;
    params.max_fragments = 5;
    params.interarrival_mean = 0.8; // heavier offered load than Table VII
    params.comp_demand = (0.02, 0.18);
    let problem = ProblemGenerator::new(params).generate(7)?;
    let initial = problem.initial_placement()?;
    let lam = problem.total_arrival_rate();

    let simulate = |placement: &chainnet_suite::qsim::model::Placement| -> f64 {
        let model = problem.bind(placement.clone()).expect("valid placement");
        Simulator::new()
            .run(&model, &SimConfig::new(3_000.0, 123))
            .expect("simulation")
            .total_throughput
    };
    let x0 = simulate(&initial);
    println!(
        "initial placement: loss probability {:.3}",
        loss_probability(lam, x0)
    );

    // --- 3. Surrogate-driven annealing search (Section VII).
    let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(60));
    let mut gnn_ev = GnnEvaluator::new(net);
    let gnn_result = sa.optimize(&problem, &initial, &mut gnn_ev, 5);
    // Post-process with the simulator, as the paper does (Sec. VIII-C5).
    let x_gnn = simulate(&gnn_result.best_placement);
    println!(
        "ChainNet-guided search: loss {:.3} after {:.2}s ({} evaluations)",
        loss_probability(lam, x_gnn),
        gnn_result.elapsed_secs,
        gnn_result.evaluations
    );

    // --- 4. Simulation-driven search with the same budget of trials.
    let mut sim_ev = SimEvaluator::new(SimConfig::new(3_000.0, 5));
    let sim_result = sa.optimize(&problem, &initial, &mut sim_ev, 5);
    let x_sim = simulate(&sim_result.best_placement);
    println!(
        "simulation-based search: loss {:.3} after {:.2}s ({} evaluations)",
        loss_probability(lam, x_sim),
        sim_result.elapsed_secs,
        sim_result.evaluations
    );
    Ok(())
}
