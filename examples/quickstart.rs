//! Quickstart: model a small edge AI deployment, simulate its ground
//! truth, and compare it with an (untrained) ChainNet prediction.
//!
//! Run with `cargo run --release --example quickstart`.

use chainnet_suite::core::config::ModelConfig;
use chainnet_suite::core::graph::PlacementGraph;
use chainnet_suite::core::model::{ChainNet, Surrogate};
use chainnet_suite::qsim::model::{Device, Fragment, Placement, ServiceChain, SystemModel};
use chainnet_suite::qsim::sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three edge devices: one fast hub and two constrained sensors.
    let devices = vec![
        Device::new(30.0, 2.0)?, // memory capacity 30, service rate 2
        Device::new(10.0, 1.0)?,
        Device::new(10.0, 0.8)?,
    ];

    // Two AI services, each a chain of DNN fragments. Chain 0 is an image
    // pipeline split into three fragments; chain 1 a two-stage detector.
    let chains = vec![
        ServiceChain::new(
            0.6,
            vec![
                Fragment::new(1.0, 1.0)?, // memory demand, compute demand
                Fragment::new(1.0, 0.8)?,
                Fragment::new(1.0, 0.5)?,
            ],
        )?,
        ServiceChain::new(
            0.4,
            vec![Fragment::new(1.0, 0.7)?, Fragment::new(1.0, 1.2)?],
        )?,
    ];

    // A placement decision: which device runs each fragment.
    let placement = Placement::new(vec![vec![0, 1, 2], vec![0, 2]]);
    let system = SystemModel::new(devices, chains, placement)?;
    println!(
        "placement feasible (Eq. 2 memory constraint): {}",
        system.memory_feasible()
    );

    // Ground truth from the finite-buffer queueing simulator.
    let result = Simulator::new().run(&system, &SimConfig::new(20_000.0, 42))?;
    for (i, c) in result.chains.iter().enumerate() {
        println!(
            "chain {i}: throughput {:.3} (offered {:.1}), latency {:.2}, loss {:.1}%",
            c.throughput,
            system.chains()[i].arrival_rate,
            c.mean_latency,
            100.0 * c.loss_probability
        );
    }
    println!(
        "system: X_total {:.3}, loss probability {:.1}%",
        result.total_throughput,
        100.0 * result.loss_probability
    );

    // The same placement as a heterogeneous graph (Algorithm 1)...
    let cfg = ModelConfig::paper_chainnet();
    let graph = PlacementGraph::from_model(&system, cfg.feature_mode);
    println!(
        "graph: {} nodes ({} chains, {} fragments, {} devices), {} edges",
        graph.num_nodes(),
        graph.num_chains(),
        graph.num_fragments(),
        graph.num_devices(),
        graph.num_edges()
    );

    // ...evaluated by ChainNet. Untrained weights — the point here is the
    // API shape; see the `surrogate_training` example for a trained model.
    let net = ChainNet::new(cfg, 0);
    for (i, p) in net.predict(&graph).iter().enumerate() {
        println!(
            "chain {i}: ChainNet (untrained) predicts X={:.3}, L={:.2}",
            p.throughput, p.latency
        );
    }
    Ok(())
}
