//! The paper's future-work scenarios on the same substrate: unreliable
//! inter-device links (Sec. X, limitation 2) and early-exit DNNs (Sec. X,
//! limitation 1), plus multi-server devices — all simulated and compared
//! against the strict-forward baseline.
//!
//! Run with `cargo run --release --example reliability_extensions`.

use chainnet_suite::qsim::model::{Device, Fragment, Placement, ServiceChain, SystemModel};
use chainnet_suite::qsim::sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let devices = vec![
        Device::new(30.0, 2.0)?, // fast front device
        Device::new(8.0, 0.5)?,  // constrained tail device
    ];
    let chain = ServiceChain::new(
        0.8,
        vec![Fragment::new(1.0, 1.0)?, Fragment::new(1.0, 1.0)?],
    )?;
    let placement = Placement::new(vec![vec![0, 1]]);
    let cfg = SimConfig::new(50_000.0, 7);
    let run = |chain: ServiceChain,
               devices: Vec<Device>|
     -> Result<(f64, f64), Box<dyn std::error::Error>> {
        let model = SystemModel::new(devices, vec![chain], placement.clone())?;
        let res = Simulator::new().run(&model, &cfg)?;
        Ok((res.chains[0].throughput, res.loss_probability))
    };

    // 1. The paper's base model: strict forward execution, perfect links.
    let (x, loss) = run(chain.clone(), devices.clone())?;
    println!(
        "strict forward          : X = {x:.3}, loss = {:.1}%",
        100.0 * loss
    );

    // 2. Unreliable link between the two fragments (90% success).
    let flaky = chain.clone().with_hop_reliability(vec![0.9]);
    let (x, loss) = run(flaky, devices.clone())?;
    println!(
        "10% link failure        : X = {x:.3}, loss = {:.1}%",
        100.0 * loss
    );

    // 3. Early-exit network: 40% of requests finish after fragment 1.
    let early = chain.clone().with_early_exit(vec![0.4]);
    let (x, loss) = run(early, devices.clone())?;
    println!(
        "40% early exit          : X = {x:.3}, loss = {:.1}%",
        100.0 * loss
    );

    // 4. Upgrade the tail device to two cores (M/M/2/K station).
    let mut upgraded = devices;
    upgraded[1] = Device::new(8.0, 0.5)?.with_servers(2);
    let (x, loss) = run(chain, upgraded)?;
    println!(
        "dual-core tail device   : X = {x:.3}, loss = {:.1}%",
        100.0 * loss
    );

    Ok(())
}
