//! Train a ChainNet surrogate end to end on simulator-labeled data and
//! report its test accuracy — a miniature of the paper's Section VIII-B.
//!
//! Run with `cargo run --release --example surrogate_training`.

use chainnet_suite::core::config::{ModelConfig, TrainConfig};
use chainnet_suite::core::model::ChainNet;
use chainnet_suite::core::train::Trainer;
use chainnet_suite::datagen::dataset::{generate_raw_dataset, to_labeled, DatasetConfig};
use chainnet_suite::datagen::typesets::NetworkParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate a small Type I dataset (Table III parameters).
    println!("simulating training data...");
    let train_raw = generate_raw_dataset(
        NetworkParams::type_i(),
        &DatasetConfig::new(120, 1).with_horizon(1_000.0),
    )?;
    let test_raw = generate_raw_dataset(
        NetworkParams::type_i(),
        &DatasetConfig::new(40, 99_999).with_horizon(1_000.0),
    )?;

    // 2. Build a compact ChainNet (paper architecture, reduced width).
    let mut cfg = ModelConfig::paper_chainnet();
    cfg.hidden = 24;
    cfg.iterations = 4;
    let mut model = ChainNet::new(cfg, 7);

    // 3. Train with the Eq. 13 joint MSE loss.
    let train = to_labeled(&train_raw, cfg.feature_mode);
    let test = to_labeled(&test_raw, cfg.feature_mode);
    let trainer = Trainer::new(TrainConfig {
        epochs: 25,
        batch_size: 16,
        learning_rate: 2e-3,
        lr_decay: 0.9,
        lr_decay_period: 10,
        seed: 0,
    });
    let report = trainer.train(&mut model, &train, Some(&test));
    for e in report.history.iter().step_by(5) {
        println!(
            "epoch {:>3}: train loss {:.4}, test loss {:.4}",
            e.epoch,
            e.train_loss,
            e.val_loss.unwrap_or(f64::NAN)
        );
    }

    // 4. Report APE statistics on held-out graphs.
    let apes = trainer.evaluate_ape(&model, &test);
    let (tput, lat) = apes.summaries();
    let (tput, lat) = (tput.expect("nonempty"), lat.expect("nonempty"));
    println!(
        "\nthroughput APE: MAPE {:.3}, p75 {:.3}, p95 {:.3}",
        tput.mape, tput.p75, tput.p95
    );
    println!(
        "latency    APE: MAPE {:.3}, p75 {:.3}, p95 {:.3}",
        lat.mape, lat.p75, lat.p95
    );
    Ok(())
}
