//! Chaos soak harness for `chainnet-serve`: replay thousands of
//! placement queries against a live daemon while faulting the topology
//! underneath it, overloading its admission queue, and SIGKILLing the
//! process mid-run — then assert the robustness contract held.
//!
//! Phases:
//!
//! 1. **warmup** — install the topology, issue generous-deadline
//!    queries, and require every one to come back `FullSearch`;
//! 2. **fault storm** — interleave crash/degrade/burst/recover events
//!    with queries, tight deadlines forcing the degradation ladder;
//! 3. **overload** — pipeline a burst far beyond the admission queue
//!    and require every request answered exactly once (`Placed` or a
//!    typed `Overloaded` rejection — nothing lost, nothing duplicated);
//! 4. **kill + restart** — SIGKILL the daemon mid-conversation, restart
//!    it on the same state dir, re-send the unanswered tail, and
//!    require the resumed process to remember its fault state;
//! 5. **recovery** — lift the faults and require full-capacity service.
//!
//! With `SOAK_WORKERS=N` (N ≥ 2) three supervised-pool phases follow,
//! against a fresh `--workers N` daemon:
//!
//! 6. **worker-kill storm** — SIGKILL ≥ 3 shard workers (pids from
//!    `Stats`) interleaved with queries; every query must still be
//!    answered `Placed` and the supervisor must restart every victim;
//! 7. **wedged worker** — SIGSTOP one worker and require hedging to
//!    keep every deadline query answered below its deadline;
//! 8. **supervisor kill + replay** — SIGKILL the supervisor itself,
//!    restart it on the same state dir, re-send recorded request lines,
//!    and require byte-identical answers from the ledger.
//!
//! Gates (process exits non-zero when any fails):
//!
//! * zero lost accepted requests across the whole run, restarts
//!   included;
//! * the degradation ladder is monotone in the deadline: no-deadline
//!   queries always report `full_search`, sub-`min_full_search_ms`
//!   deadlines never do;
//! * the storm actually degraded something (`serve.degraded_total` > 0)
//!   and repairs ran (`serve.repairs` > 0).
//!
//! The report at the end prints request-latency p50/p99 and QPS from
//! the daemon's own metrics snapshot (`serve-metrics.json`), so the
//! numbers are the served truth, not client-side guesses.
//!
//! Run with `cargo run --release --example soak`. Environment knobs:
//! `SOAK_QUERIES` (default 20000; CI smoke uses a few hundred),
//! `SOAK_DAEMON` (path to the `chainnet-serve` binary, default derived
//! from this executable's target dir), `SOAK_DIR` (state dir),
//! `SOAK_WORKERS` (supervised-pool size for phases 6–8; 0 = skip).

use chainnet_suite::obs::Snapshot;
use chainnet_suite::placement::problem::PlacementProblem;
use chainnet_suite::qsim::model::{Device, Fragment, ServiceChain};
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn main() {
    match soak() {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("soak: FAILED: {e}");
            std::process::exit(1);
        }
    }
}

type SoakResult<T> = Result<T, String>;

/// One live daemon process plus a client connection to it.
struct Daemon {
    child: Child,
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Daemon {
    fn spawn(binary: &Path, state_dir: &Path, queue: usize, extra: &[&str]) -> SoakResult<Self> {
        // Daemon stderr goes to a log file in the state dir so a CI
        // failure can upload what the supervisor saw, not a null sink.
        let stderr_log = std::fs::File::create(state_dir.join(format!(
            "daemon-stderr-{}.log",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        )))
        .map_err(|e| format!("create stderr log: {e}"))?;
        let mut child = Command::new(binary)
            .arg("--bind")
            .arg("127.0.0.1:0")
            .arg("--state-dir")
            .arg(state_dir)
            .arg("--sa-steps")
            .arg("12")
            .arg("--trials")
            .arg("1")
            .arg("--queue")
            .arg(queue.to_string())
            .arg("--quiet")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::from(stderr_log))
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", binary.display()))?;
        let stdout = child.stdout.take().ok_or("daemon stdout missing")?;
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read announce line: {e}"))?;
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .ok_or("empty announce line")?
            .to_string();
        let stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| format!("set timeout: {e}"))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
        Ok(Daemon {
            child,
            reader,
            stream,
        })
    }

    fn send(&mut self, line: &str) -> SoakResult<()> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("send: {e}"))
    }

    /// Read one raw response line (trailing newline stripped);
    /// `Ok(None)` means the connection died (daemon killed) — the
    /// caller decides whether that was expected.
    fn recv_raw(&mut self) -> SoakResult<Option<String>> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            // No trailing newline means EOF cut the response short: the
            // daemon was killed mid-write. Treat it as a dead peer.
            Ok(_) if !line.ends_with('\n') => Ok(None),
            Ok(_) => Ok(Some(line.trim_end().to_string())),
            Err(e)
                if e.kind() == std::io::ErrorKind::ConnectionReset
                    || e.kind() == std::io::ErrorKind::BrokenPipe =>
            {
                Ok(None)
            }
            Err(e) => Err(format!("recv: {e}")),
        }
    }

    /// Read and parse one response line; `Ok(None)` on a dead peer.
    fn recv(&mut self) -> SoakResult<Option<Value>> {
        match self.recv_raw()? {
            None => Ok(None),
            Some(line) => serde_json::from_str(&line)
                .map(Some)
                .map_err(|e| format!("parse response: {e} in {line:?}")),
        }
    }

    /// Serial request/response; `Ok(None)` when the daemon vanished.
    fn call(&mut self, line: &str) -> SoakResult<Option<Value>> {
        self.send(line)?;
        self.recv()
    }

    /// Serial request/response keeping the raw response line.
    fn call_raw(&mut self, line: &str) -> SoakResult<Option<String>> {
        self.send(line)?;
        self.recv_raw()
    }

    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn shutdown(&mut self, id: u64) -> SoakResult<()> {
        let _ = self.call(&format!("{{\"id\":{id},\"body\":\"Shutdown\"}}"))?;
        let status = self.child.wait().map_err(|e| format!("wait: {e}"))?;
        if status.code() != Some(0) {
            return Err(format!("daemon exited {:?}, want 0", status.code()));
        }
        Ok(())
    }
}

/// The soak topology: enough slack that crashing one device leaves a
/// feasible repair, tight enough that degradation matters.
fn topology_json() -> String {
    let mk_dev = |mem: f64, rate: f64| Device::new(mem, rate).expect("device");
    let mk_frag = |mem: f64, comp: f64| Fragment::new(mem, comp).expect("fragment");
    let devices = vec![
        mk_dev(12.0, 4.0),
        mk_dev(12.0, 3.0),
        mk_dev(10.0, 2.0),
        mk_dev(10.0, 2.0),
        mk_dev(8.0, 1.5),
    ];
    let chains = vec![
        ServiceChain::new(0.8, vec![mk_frag(2.0, 1.0), mk_frag(2.0, 1.0)]).expect("chain"),
        ServiceChain::new(0.5, vec![mk_frag(1.0, 1.0), mk_frag(1.0, 1.0)]).expect("chain"),
        ServiceChain::new(0.4, vec![mk_frag(1.5, 0.8), mk_frag(1.0, 0.6)]).expect("chain"),
    ];
    let problem = PlacementProblem::new(devices, chains).expect("problem");
    serde_json::to_string(&problem).expect("serialize problem")
}

fn place_line(id: u64, deadline_ms: Option<u64>) -> String {
    match deadline_ms {
        Some(d) => {
            format!("{{\"id\":{id},\"deadline_ms\":{d},\"body\":{{\"Place\":{{\"hint\":null}}}}}}")
        }
        None => format!("{{\"id\":{id},\"body\":{{\"Place\":{{\"hint\":null}}}}}}"),
    }
}

fn fault_line(id: u64, kind_json: &str) -> String {
    format!("{{\"id\":{id},\"body\":{{\"Fault\":{{\"event\":{{\"time\":0.0,\"kind\":{kind_json}}}}}}}}}")
}

fn get<'a>(v: &'a Value, path: &[&str]) -> SoakResult<&'a Value> {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .ok_or_else(|| format!("missing field {key} in {cur:?}"))?;
    }
    Ok(cur)
}

/// Externally-tagged variant name of the response outcome.
fn outcome_key(v: &Value) -> SoakResult<String> {
    match get(v, &["outcome"])? {
        Value::Str(s) => Ok(s.clone()),
        Value::Map(m) => m
            .first()
            .map(|(k, _)| k.clone())
            .ok_or_else(|| "empty outcome object".to_string()),
        other => Err(format!("unexpected outcome shape: {other:?}")),
    }
}

/// What the ledger records for each answered request id.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Answer {
    Placed { degradation: String },
    Rejected { kind: String },
    Other(String),
}

/// Classify a response and record it; duplicate ids are a gate failure.
fn record(ledger: &mut BTreeMap<u64, Answer>, resp: &Value) -> SoakResult<u64> {
    let id = get(resp, &["id"])?
        .as_u64()
        .ok_or_else(|| format!("non-integer response id in {resp:?}"))?;
    let key = outcome_key(resp)?;
    let answer = match key.as_str() {
        "Placed" => Answer::Placed {
            degradation: get(resp, &["outcome", "Placed", "degradation"])?
                .as_str()
                .unwrap_or("?")
                .to_string(),
        },
        "Rejected" => Answer::Rejected {
            kind: get(resp, &["outcome", "Rejected", "kind"])?
                .as_str()
                .unwrap_or("?")
                .to_string(),
        },
        other => Answer::Other(other.to_string()),
    };
    if let Some(prev) = ledger.insert(id, answer) {
        return Err(format!("duplicate response for id {id}: {prev:?}"));
    }
    Ok(id)
}

fn soak() -> SoakResult<String> {
    let queries: u64 = std::env::var("SOAK_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let binary = daemon_binary()?;
    let dir = match std::env::var("SOAK_DIR") {
        Ok(d) => PathBuf::from(d),
        Err(_) => std::env::temp_dir().join(format!("chainnet-soak-{}", std::process::id())),
    };
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;

    const QUEUE: usize = 32;
    let mut ledger: BTreeMap<u64, Answer> = BTreeMap::new();
    let mut sent: Vec<u64> = Vec::new();
    let mut next_id: u64 = 1;
    let wall = Instant::now();

    let mut daemon = Daemon::spawn(&binary, &dir, QUEUE, &[])?;

    // ---- phase 1: topology + warmup --------------------------------
    let topo = topology_json();
    let resp = daemon
        .call(&format!(
            "{{\"id\":0,\"body\":{{\"Topology\":{{\"problem\":{topo}}}}}}}"
        ))?
        .ok_or("daemon died installing topology")?;
    if outcome_key(&resp)? != "TopologyInstalled" {
        return Err(format!("topology rejected: {resp:?}"));
    }
    let warmup = (queries / 10).clamp(8, 500);
    for _ in 0..warmup {
        let id = next_id;
        next_id += 1;
        sent.push(id);
        let resp = daemon
            .call(&place_line(id, None))?
            .ok_or("daemon died during warmup")?;
        record(&mut ledger, &resp)?;
        match ledger.get(&id) {
            Some(Answer::Placed { degradation }) if degradation == "FullSearch" => {}
            other => {
                return Err(format!(
                    "warmup id {id}: no-deadline query must be FullSearch, got {other:?}"
                ))
            }
        }
    }

    // ---- phase 2: fault storm with tight deadlines -----------------
    // Cycle through the FaultSchedule vocabulary; every K queries flip
    // a fault. Tight deadlines (below min_full_search_ms = 10) must
    // never report full_search — that is the monotone-ladder gate.
    let faults = [
        r#"{"DeviceCrash":{"device":4}}"#,
        r#"{"ServiceDegrade":{"device":2,"factor":0.5}}"#,
        r#"{"ArrivalBurst":{"chain":0,"factor":1.5}}"#,
        r#"{"DeviceRecover":{"device":4}}"#,
        r#"{"ServiceRestore":{"device":2}}"#,
        r#"{"ArrivalCalm":{"chain":0}}"#,
    ];
    let storm = (queries * 6 / 10).max(12);
    let mut fault_idx = 0usize;
    let mut tight_placed = 0u64;
    let mut tight_rejected = 0u64;
    for i in 0..storm {
        if i % 25 == 0 {
            let id = next_id;
            next_id += 1;
            let resp = daemon
                .call(&fault_line(id, faults[fault_idx % faults.len()]))?
                .ok_or("daemon died applying fault")?;
            if outcome_key(&resp)? != "FaultApplied" {
                return Err(format!("fault rejected: {resp:?}"));
            }
            fault_idx += 1;
        }
        let id = next_id;
        next_id += 1;
        sent.push(id);
        // Alternate tight (2ms — below the full-search threshold) and
        // generous deadlines.
        let deadline = if i % 2 == 0 { Some(2) } else { Some(5_000) };
        let resp = daemon
            .call(&place_line(id, deadline))?
            .ok_or("daemon died during storm")?;
        record(&mut ledger, &resp)?;
        match (i % 2 == 0, ledger.get(&id)) {
            (true, Some(Answer::Placed { degradation })) => {
                if degradation == "FullSearch" {
                    return Err(format!(
                        "monotone-ladder violation: 2ms deadline answered FullSearch (id {id})"
                    ));
                }
                tight_placed += 1;
            }
            (true, Some(Answer::Rejected { kind })) if kind == "DeadlineExceeded" => {
                tight_rejected += 1;
            }
            (false, Some(Answer::Placed { .. })) => {}
            (_, other) => return Err(format!("storm id {id}: unexpected answer {other:?}")),
        }
    }

    // ---- phase 3: overload burst -----------------------------------
    // Pipeline far beyond the queue; every id must be answered exactly
    // once, rejections must be typed Overloaded.
    let burst = (queries / 10).clamp(16, 2_000);
    let first_burst_id = next_id;
    for _ in 0..burst {
        let id = next_id;
        next_id += 1;
        sent.push(id);
        daemon.send(&place_line(id, None))?;
    }
    let mut overloaded = 0u64;
    for _ in 0..burst {
        let resp = daemon.recv()?.ok_or("daemon died during overload burst")?;
        let id = record(&mut ledger, &resp)?;
        if id < first_burst_id {
            return Err(format!("response id {id} from before the burst"));
        }
        if let Some(Answer::Rejected { kind }) = ledger.get(&id) {
            if kind != "Overloaded" {
                return Err(format!("burst id {id}: non-admission rejection {kind}"));
            }
            overloaded += 1;
        }
    }

    // ---- phase 4: SIGKILL mid-conversation, restart, re-send -------
    // Crash a device (checkpointed immediately), pipeline a few
    // requests, and SIGKILL with some still in flight.
    let resp = daemon
        .call(&fault_line(next_id, r#"{"DeviceCrash":{"device":4}}"#))?
        .ok_or("daemon died applying pre-kill fault")?;
    next_id += 1;
    if outcome_key(&resp)? != "FaultApplied" {
        return Err(format!("pre-kill fault rejected: {resp:?}"));
    }
    let inflight: Vec<u64> = (0..10)
        .map(|_| {
            let id = next_id;
            next_id += 1;
            sent.push(id);
            id
        })
        .collect();
    for id in &inflight {
        daemon.send(&place_line(*id, None))?;
    }
    // SIGKILL with the batch still mid-pipeline, then drain whatever
    // answers made it out (buffered responses are still readable after
    // the peer dies) until the connection reports the death.
    daemon.kill9();
    loop {
        let done = inflight.iter().all(|id| ledger.contains_key(id));
        if done {
            break;
        }
        match daemon.recv()? {
            Some(resp) => {
                record(&mut ledger, &resp)?;
            }
            None => break,
        }
    }
    drop(daemon);

    let mut daemon = Daemon::spawn(&binary, &dir, QUEUE, &[])?;
    let stats = daemon
        .call(&format!("{{\"id\":{next_id},\"body\":\"Stats\"}}"))?
        .ok_or("restarted daemon died on Stats")?;
    next_id += 1;
    let crashed = get(&stats, &["outcome", "Stats", "crashed_devices"])?
        .as_u64()
        .unwrap_or(0);
    if crashed != 1 {
        return Err(format!(
            "restart lost fault state: crashed_devices = {crashed}, want 1"
        ));
    }
    // Zero-lost: re-send every request the kill left unanswered.
    let unanswered: Vec<u64> = inflight
        .iter()
        .copied()
        .filter(|id| !ledger.contains_key(id))
        .collect();
    let retried = unanswered.len() as u64;
    for id in unanswered {
        let resp = daemon
            .call(&place_line(id, None))?
            .ok_or("restarted daemon died on retry")?;
        record(&mut ledger, &resp)?;
    }
    // The resumed daemon must still degrade gracefully (device 4 is
    // still down here). These also put `serve.degraded_total` into the
    // snapshot the shutdown below flushes — the SIGKILLed first daemon
    // never got to flush its own storm counters.
    for _ in 0..24 {
        let id = next_id;
        next_id += 1;
        sent.push(id);
        let resp = daemon
            .call(&place_line(id, Some(2)))?
            .ok_or("restarted daemon died on tight-deadline query")?;
        record(&mut ledger, &resp)?;
        match ledger.get(&id) {
            Some(Answer::Placed { degradation }) if degradation != "FullSearch" => {
                tight_placed += 1;
            }
            Some(Answer::Rejected { kind }) if kind == "DeadlineExceeded" => {
                tight_rejected += 1;
            }
            other => {
                return Err(format!(
                    "post-restart tight id {id}: unexpected answer {other:?}"
                ))
            }
        }
    }

    // ---- phase 5: recovery -----------------------------------------
    for kind in [
        r#"{"DeviceRecover":{"device":4}}"#,
        r#"{"ServiceRestore":{"device":2}}"#,
        r#"{"ArrivalCalm":{"chain":0}}"#,
    ] {
        let resp = daemon
            .call(&fault_line(next_id, kind))?
            .ok_or("daemon died during recovery")?;
        next_id += 1;
        if outcome_key(&resp)? != "FaultApplied" {
            return Err(format!("recovery fault rejected: {resp:?}"));
        }
    }
    let tail = (queries / 10).clamp(8, 500);
    for _ in 0..tail {
        let id = next_id;
        next_id += 1;
        sent.push(id);
        let resp = daemon
            .call(&place_line(id, None))?
            .ok_or("daemon died during recovery tail")?;
        record(&mut ledger, &resp)?;
        match ledger.get(&id) {
            Some(Answer::Placed { degradation }) if degradation == "FullSearch" => {}
            other => {
                return Err(format!(
                    "recovery id {id}: full-capacity query must be FullSearch, got {other:?}"
                ))
            }
        }
    }
    daemon.shutdown(next_id)?;

    // ---- phases 6–8: supervised pool (opt-in via SOAK_WORKERS) -----
    let workers: usize = std::env::var("SOAK_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let supervised_report = if workers >= 2 {
        Some(supervised_soak(&binary, &dir, workers)?)
    } else {
        None
    };
    let elapsed = wall.elapsed().as_secs_f64();

    // ---- gates ------------------------------------------------------
    let lost: Vec<u64> = sent
        .iter()
        .copied()
        .filter(|id| !ledger.contains_key(id))
        .collect();
    if !lost.is_empty() {
        return Err(format!(
            "{} accepted request(s) lost: first few {:?}",
            lost.len(),
            &lost[..lost.len().min(5)]
        ));
    }

    let snap_path = dir.join("serve-metrics.json");
    let snap_text = std::fs::read_to_string(&snap_path)
        .map_err(|e| format!("read {}: {e}", snap_path.display()))?;
    let snap = Snapshot::from_json(&snap_text).map_err(|e| format!("parse snapshot: {e}"))?;
    // The snapshot is the *restarted* daemon's registry (the SIGKILLed
    // first daemon never flushed), so the storm itself is gated
    // client-side and the snapshot gates cover the post-restart life.
    if tight_placed == 0 {
        return Err("no tight-deadline query ever produced a degraded placement".into());
    }
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    if counter("serve.degraded_total") == 0 {
        return Err(
            "resumed daemon reported no degraded responses (serve.degraded_total = 0)".into(),
        );
    }
    if counter("serve.repairs") == 0 {
        return Err("fault events never triggered a repair (serve.repairs = 0)".into());
    }
    let hist = snap
        .histograms
        .get("serve.request_seconds")
        .ok_or("serve.request_seconds histogram missing from snapshot")?;
    let quantile = |q: f64| {
        hist.quantile(q)
            .map(|s| format!("{:.2}ms", s * 1e3))
            .unwrap_or_else(|| "n/a".into())
    };

    let answered = ledger.len() as u64;
    let mut report = format!(
        "soak: PASS\n\
         queries answered       {answered} (0 lost; {retried} retried across restart)\n\
         tight-deadline storm   {tight_placed} degraded placements, {tight_rejected} deadline rejections\n\
         overload burst         {overloaded}/{burst} shed with typed Overloaded\n\
         daemon-side latency    p50 {} / p99 {} ({} requests in the snapshot)\n\
         client wall clock      {elapsed:.1}s ({:.0} QPS end-to-end)",
        quantile(0.5),
        quantile(0.99),
        hist.count,
        answered as f64 / elapsed.max(1e-9),
    );
    if let Some(s) = supervised_report {
        report.push('\n');
        report.push_str(&s);
    }
    Ok(report)
}

/// Live worker pids from a supervised daemon's `Stats` answer.
fn stats_pids(stats: &Value) -> SoakResult<Vec<u64>> {
    let workers = get(stats, &["outcome", "Stats", "workers"])?
        .as_seq()
        .ok_or("workers is not an array")?;
    Ok(workers
        .iter()
        .filter_map(|w| w.get("pid").and_then(Value::as_u64))
        .filter(|&p| p > 0)
        .collect())
}

/// A counter from the `Stats` answer's embedded metrics snapshot.
fn stats_counter(stats: &Value, name: &str) -> u64 {
    get(stats, &["outcome", "Stats", "snapshot", "counters"])
        .ok()
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn signal(pid: u64, sig: &str) -> SoakResult<()> {
    let status = Command::new("kill")
        .arg(sig)
        .arg(pid.to_string())
        .status()
        .map_err(|e| format!("kill {sig} {pid}: {e}"))?;
    if !status.success() {
        return Err(format!("kill {sig} {pid} failed"));
    }
    Ok(())
}

/// Phases 6–8 against a `--workers N` supervised pool, in a fresh
/// state dir under the soak dir. Returns the report lines.
fn supervised_soak(binary: &Path, dir: &Path, workers: usize) -> SoakResult<String> {
    let sdir = dir.join("supervised");
    let _ = std::fs::remove_dir_all(&sdir);
    std::fs::create_dir_all(&sdir).map_err(|e| format!("mkdir {}: {e}", sdir.display()))?;
    let flags = [
        "--workers",
        &workers.to_string(),
        "--heartbeat-ms",
        "250",
        "--hedge-after-ms",
        "100",
    ]
    .map(String::from);
    let flag_refs: Vec<&str> = flags.iter().map(String::as_str).collect();

    let mut daemon = Daemon::spawn(binary, &sdir, 32, &flag_refs)?;
    let mut next_id: u64 = 1;
    let topo = topology_json();
    let resp = daemon
        .call(&format!(
            "{{\"id\":0,\"body\":{{\"Topology\":{{\"problem\":{topo}}}}}}}"
        ))?
        .ok_or("supervised daemon died installing topology")?;
    if outcome_key(&resp)? != "TopologyInstalled" {
        return Err(format!("supervised topology rejected: {resp:?}"));
    }

    // A serial Placed query; the degradation string must be one of the
    // ladder's rungs (Stale included — a recovering pool may serve it).
    let place = |daemon: &mut Daemon, next_id: &mut u64, deadline| -> SoakResult<String> {
        let id = *next_id;
        *next_id += 1;
        let resp = daemon
            .call(&place_line(id, deadline))?
            .ok_or(format!("supervised daemon died answering id {id}"))?;
        if outcome_key(&resp)? != "Placed" {
            return Err(format!("supervised id {id} not Placed: {resp:?}"));
        }
        let degradation = get(&resp, &["outcome", "Placed", "degradation"])?
            .as_str()
            .unwrap_or("?")
            .to_string();
        if !["FullSearch", "LocalRepair", "Cached", "Stale"].contains(&degradation.as_str()) {
            return Err(format!(
                "supervised id {id}: unknown degradation {degradation}"
            ));
        }
        Ok(degradation)
    };

    for _ in 0..8 {
        place(&mut daemon, &mut next_id, None)?;
    }

    // ---- phase 6: worker-kill storm --------------------------------
    // Three rounds: SIGKILL a live worker, then keep querying. Every
    // query must be answered Placed — rerouted, hedged, served stale,
    // or handled by the respawned shard.
    let mut kills = 0u64;
    for _round in 0..3 {
        let stats = daemon
            .call(&format!("{{\"id\":{next_id},\"body\":\"Stats\"}}"))?
            .ok_or("supervised daemon died on Stats")?;
        next_id += 1;
        let pids = stats_pids(&stats)?;
        if pids.is_empty() {
            return Err("no live workers reported before a kill round".into());
        }
        signal(pids[kills as usize % pids.len()], "-KILL")?;
        kills += 1;
        for _ in 0..20 {
            place(&mut daemon, &mut next_id, None)?;
        }
    }
    // The supervisor must have restarted every victim.
    let restart_deadline = Instant::now() + Duration::from_secs(20);
    let restarts = loop {
        let stats = daemon
            .call(&format!("{{\"id\":{next_id},\"body\":\"Stats\"}}"))?
            .ok_or("supervised daemon died polling restarts")?;
        next_id += 1;
        let restarts = stats_counter(&stats, "supervisor.restarts");
        if restarts >= kills {
            break restarts;
        }
        if Instant::now() >= restart_deadline {
            return Err(format!(
                "kill storm: only {restarts}/{kills} restarts observed within 20s"
            ));
        }
        std::thread::sleep(Duration::from_millis(100));
    };

    // ---- phase 7: wedged worker + hedging --------------------------
    // SIGSTOP one worker: requests routed to it must be hedged to a
    // sibling and still answered within the client deadline.
    let stats = daemon
        .call(&format!("{{\"id\":{next_id},\"body\":\"Stats\"}}"))?
        .ok_or("supervised daemon died before the wedge")?;
    next_id += 1;
    let pids = stats_pids(&stats)?;
    let wedged = *pids.first().ok_or("no live worker to wedge")?;
    signal(wedged, "-STOP")?;
    const WEDGE_DEADLINE_MS: u64 = 2_000;
    let mut worst_ms = 0.0f64;
    for _ in 0..40 {
        let started = Instant::now();
        place(&mut daemon, &mut next_id, Some(WEDGE_DEADLINE_MS))?;
        worst_ms = worst_ms.max(started.elapsed().as_secs_f64() * 1e3);
    }
    // Defensive: the supervisor normally SIGKILLs the wedged worker
    // once its heartbeats go silent, but never leave a stopped orphan.
    // (Racing that cleanup is fine — hence no status check, no stderr.)
    let _ = Command::new("kill")
        .arg("-CONT")
        .arg(wedged.to_string())
        .stderr(Stdio::null())
        .status();
    let stats = daemon
        .call(&format!("{{\"id\":{next_id},\"body\":\"Stats\"}}"))?
        .ok_or("supervised daemon died after the wedge")?;
    next_id += 1;
    let hedges = stats_counter(&stats, "supervisor.hedges");
    if hedges == 0 {
        return Err("wedged worker never triggered a hedge (supervisor.hedges = 0)".into());
    }
    if worst_ms >= WEDGE_DEADLINE_MS as f64 {
        return Err(format!(
            "wedged-shard worst latency {worst_ms:.0}ms breached the {WEDGE_DEADLINE_MS}ms deadline"
        ));
    }

    // ---- phase 8: supervisor SIGKILL + bit-identical replay --------
    // Record raw answers, SIGKILL the supervisor itself, restart the
    // pool from the same state dir, and re-send the recorded lines:
    // the ledger must replay them byte for byte.
    let mut recorded: Vec<(String, String)> = Vec::new();
    for _ in 0..6 {
        let id = next_id;
        next_id += 1;
        let line = place_line(id, None);
        let answer = daemon
            .call_raw(&line)?
            .ok_or("supervised daemon died while recording replays")?;
        recorded.push((line, answer));
    }
    daemon.kill9();
    drop(daemon);

    let mut daemon = Daemon::spawn(binary, &sdir, 32, &flag_refs)?;
    for (line, want) in &recorded {
        let got = daemon
            .call_raw(line)?
            .ok_or("restarted supervisor died on replay")?;
        if got != *want {
            return Err(format!(
                "replay diverged after supervisor restart:\n sent {line}\n want {want}\n got  {got}"
            ));
        }
    }
    let stats = daemon
        .call(&format!("{{\"id\":{next_id},\"body\":\"Stats\"}}"))?
        .ok_or("restarted supervisor died on Stats")?;
    next_id += 1;
    let replays = stats_counter(&stats, "supervisor.ledger_replays");
    if replays < recorded.len() as u64 {
        return Err(format!(
            "only {replays}/{} replays served from the ledger",
            recorded.len()
        ));
    }
    // The resumed pool still computes fresh placements.
    place(&mut daemon, &mut next_id, None)?;
    daemon.shutdown(next_id)?;

    Ok(format!(
        "supervised pool        {workers} workers: {kills} SIGKILLs survived ({restarts} restarts), \
         {hedges} hedges kept wedged-shard worst latency {worst_ms:.0}ms < {WEDGE_DEADLINE_MS}ms, \
         {replays} bit-identical replays after supervisor SIGKILL",
    ))
}

/// The `chainnet-serve` binary: `SOAK_DAEMON` override, else next to
/// this example's executable (`target/<profile>/examples/soak` →
/// `target/<profile>/chainnet-serve`).
fn daemon_binary() -> SoakResult<PathBuf> {
    if let Ok(p) = std::env::var("SOAK_DAEMON") {
        return Ok(PathBuf::from(p));
    }
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let profile_dir = me
        .parent() // examples/
        .and_then(Path::parent) // target/<profile>/
        .ok_or("cannot locate target dir from current_exe")?;
    let candidate = profile_dir.join("chainnet-serve");
    if candidate.is_file() {
        Ok(candidate)
    } else {
        Err(format!(
            "{} not found — build it first (cargo build -p chainnet-serve) or set SOAK_DAEMON",
            candidate.display()
        ))
    }
}
