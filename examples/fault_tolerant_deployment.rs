//! Fault-tolerant deployment demo: the resilience layer end to end.
//!
//! Five short acts:
//!
//! 1. simulate a deployment healthy, then under an injected device
//!    crash-and-recover schedule, and compare the realized loss;
//! 2. trip the event-budget watchdog on a runaway horizon and recover
//!    the partial statistics instead of losing the run;
//! 3. run a budget-bounded simulated-annealing search that stops at an
//!    evaluation cap and still reports its best-so-far placement;
//! 4. rig the GNN surrogate to emit NaN predictions and watch the
//!    search degrade gracefully to its simulation fallback;
//! 5. checkpoint a search, "crash" it (keep only the earliest
//!    checkpoints), resume, and verify the recovered result is
//!    bit-identical to the uninterrupted run.
//!
//! Run with `cargo run --release --example fault_tolerant_deployment`.
//!
//! With `CKPT_SMOKE_DIR=<dir>` set, the binary instead runs *only* a
//! checkpointed search in that directory (continuing from its latest
//! checkpoint when `CKPT_SMOKE_RESUME=1`) and prints one canonical
//! result line. CI uses this to SIGKILL a live run after its first
//! checkpoint lands and assert the resumed process finishes with the
//! same result as an uninterrupted reference run.

use chainnet_suite::ckpt::CkptStore;
use chainnet_suite::core::config::ModelConfig;
use chainnet_suite::core::data::ChainTargets;
use chainnet_suite::core::graph::PlacementGraph;
use chainnet_suite::core::model::{ChainNet, PerfPrediction, Surrogate};
use chainnet_suite::datagen::problems::{ProblemGenerator, ProblemParams};
use chainnet_suite::neural::params::ParamStore;
use chainnet_suite::neural::tape::{Tape, Var};
use chainnet_suite::obs::Obs;
use chainnet_suite::placement::evaluator::{
    loss_probability, GnnEvaluator, ResilientEvaluator, SimEvaluator,
};
use chainnet_suite::placement::problem::PlacementProblem;
use chainnet_suite::placement::sa::{
    SaConfig, SimulatedAnnealing, TerminationReason, SA_CKPT_SCHEMA,
};
use chainnet_suite::qsim::faults::FaultSchedule;
use chainnet_suite::qsim::sim::{SimConfig, Simulator};
use chainnet_suite::qsim::QsimError;

/// A surrogate whose predictions are always NaN: stands in for a
/// corrupted or badly trained model checkpoint.
struct NanRigged(ChainNet);

impl Surrogate for NanRigged {
    fn name(&self) -> &str {
        "nan-rigged"
    }
    fn config(&self) -> &ModelConfig {
        self.0.config()
    }
    fn params(&self) -> &ParamStore {
        self.0.params()
    }
    fn params_mut(&mut self) -> &mut ParamStore {
        self.0.params_mut()
    }
    fn loss_on_graph(&self, tape: &mut Tape, graph: &PlacementGraph, t: &[ChainTargets]) -> Var {
        self.0.loss_on_graph(tape, graph, t)
    }
    fn predict(&self, graph: &PlacementGraph) -> Vec<PerfPrediction> {
        self.0
            .predict(graph)
            .into_iter()
            .map(|mut p| {
                p.throughput = f64::NAN;
                p
            })
            .collect()
    }
}

/// Build the demo's deterministic deployment problem.
fn demo_problem() -> Result<PlacementProblem, Box<dyn std::error::Error>> {
    // A small, moderately loaded deployment problem: healthy losses stay
    // low so the injected faults are clearly visible against them.
    let mut params = ProblemParams::paper_default(6);
    params.num_chains = 4;
    params.interarrival_mean = 2.5;
    Ok(ProblemGenerator::new(params).generate(11)?)
}

/// CI smoke mode: one checkpointed search in `dir`, slow enough that the
/// workflow can SIGKILL it after the first checkpoint file appears. The
/// single printed line is what the reference and resumed runs compare.
fn ckpt_smoke(dir: &std::path::Path, resume: bool) -> Result<(), Box<dyn std::error::Error>> {
    let problem = demo_problem()?;
    let initial = problem.initial_placement()?;
    let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(300).with_seed(5));
    let store = CkptStore::open(dir, "sa", SA_CKPT_SCHEMA)?;
    let mut ev = SimEvaluator::new(SimConfig::new(20_000.0, 7));
    let result = sa.optimize_checkpointed(&problem, &initial, &mut ev, 2, &store, 5, resume)?;
    println!(
        "smoke: objective_bits={:016x} evaluations={} placement={}",
        result.best_objective.to_bits(),
        result.evaluations,
        serde_json::to_string(&result.best_placement)?
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if let Ok(dir) = std::env::var("CKPT_SMOKE_DIR") {
        let resume = std::env::var("CKPT_SMOKE_RESUME").is_ok();
        return ckpt_smoke(std::path::Path::new(&dir), resume);
    }

    let problem = demo_problem()?;
    let initial = problem.initial_placement()?;
    let lam = problem.total_arrival_rate();
    let system = problem.bind(initial.clone())?;

    // --- Act 1: healthy run vs. a crash-and-recover schedule.
    let cfg = SimConfig::new(5_000.0, 42);
    let healthy = Simulator::new().run(&system, &cfg)?;
    // Crash the device hosting the most fragments: the worst case the
    // schedule can express for this placement.
    let victim = initial
        .used_devices()
        .into_iter()
        .max_by_key(|&d| initial.iter().filter(|&(_, _, dev)| dev == d).count())
        .expect("at least one used device");
    let schedule = FaultSchedule::new()
        .crash(1_000.0, victim)
        .recover(4_000.0, victim);
    let faulted = Simulator::new().run_faulted(&system, &cfg, &schedule)?;
    println!("act 1: fault injection");
    println!(
        "  healthy: throughput {:.3}, loss probability {:.4}",
        healthy.total_throughput, healthy.loss_probability
    );
    println!(
        "  device {victim} down for t in [1000, 4000): throughput {:.3}, loss probability {:.4}",
        faulted.total_throughput, faulted.loss_probability
    );

    // --- Act 2: the watchdog turns a runaway run into partial stats.
    // The warm-up is placed inside the window the budget can actually
    // cover, so the recovered partial statistics are meaningful.
    let runaway = SimConfig::new(1e9, 42)
        .with_warmup(100.0)
        .with_max_events(50_000);
    match Simulator::new().run(&system, &runaway) {
        Err(QsimError::BudgetExceeded { reason, partial }) => {
            println!("act 2: watchdog ({reason})");
            println!(
                "  stopped after {} events, {:.0} simulated time units; \
                 partial throughput {:.3}",
                partial.events, partial.measured_time, partial.total_throughput
            );
        }
        other => println!("act 2: unexpected outcome {other:?}"),
    }

    // --- Act 3: budget-bounded search returns its best-so-far.
    let sa = SimulatedAnnealing::new(
        SaConfig::paper_default()
            .with_max_steps(200)
            .with_max_evaluations(60),
    );
    let mut ev = SimEvaluator::new(SimConfig::new(1_000.0, 7));
    let capped = sa.optimize(&problem, &initial, &mut ev, 4);
    println!("act 3: evaluation-capped search");
    println!(
        "  stopped by {} after {} evaluations; best loss probability {:.4}",
        capped.termination_reason,
        capped.evaluations,
        loss_probability(lam, capped.best_objective)
    );

    // --- Act 4: NaN surrogate, graceful degradation to simulation.
    let obs = Obs::enabled();
    let rigged = GnnEvaluator::new(NanRigged(ChainNet::new(ModelConfig::small(), 7)));
    let mut resilient = ResilientEvaluator::new_observed(
        rigged,
        SimEvaluator::new(SimConfig::new(1_000.0, 7)),
        obs.clone(),
    );
    let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(40));
    let rescued = sa.optimize_observed(&problem, &initial, &mut resilient, 1, &obs);
    assert_eq!(rescued.termination_reason, TerminationReason::Completed);
    assert!(rescued.best_objective.is_finite());
    println!("act 4: NaN surrogate with simulation fallback");
    println!(
        "  {} fallback evaluations rescued the search; best loss probability {:.4}",
        resilient.fallback_evals(),
        loss_probability(lam, rescued.best_objective)
    );
    println!(
        "  metrics: sa.fallback_evals = {}",
        obs.registry.snapshot().counters["sa.fallback_evals"]
    );

    // --- Act 5: checkpointed search, crash, bit-identical resume.
    let base = std::env::temp_dir().join(format!("chainnet_ckpt_demo_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(60).with_seed(5));
    let full_store = CkptStore::open(base.join("full"), "sa", SA_CKPT_SCHEMA)?;
    let mut ev = SimEvaluator::new(SimConfig::new(1_000.0, 7));
    let full = sa.optimize_checkpointed(&problem, &initial, &mut ev, 2, &full_store, 8, false)?;
    // Simulate a crash: only the two earliest checkpoints survive, then
    // a fresh process resumes from what is left on disk.
    let cut_store = CkptStore::open(base.join("cut"), "sa", SA_CKPT_SCHEMA)?;
    let survived = full_store.list()?.into_iter().take(2).collect::<Vec<_>>();
    for &seq in &survived {
        std::fs::copy(full_store.path_of(seq), cut_store.path_of(seq))?;
    }
    let mut ev = SimEvaluator::new(SimConfig::new(1_000.0, 7));
    let resumed = sa.optimize_checkpointed(&problem, &initial, &mut ev, 2, &cut_store, 8, true)?;
    assert_eq!(full.best_placement, resumed.best_placement);
    assert_eq!(
        full.best_objective.to_bits(),
        resumed.best_objective.to_bits()
    );
    assert_eq!(full.evaluations, resumed.evaluations);
    println!("act 5: checkpointed search killed and resumed");
    println!(
        "  crash left {} of {} checkpoints; resume replayed to the same \
         best placement in {} total evaluations (objective bits match)",
        survived.len(),
        full_store.list()?.len(),
        resumed.evaluations
    );
    let _ = std::fs::remove_dir_all(&base);
    Ok(())
}
