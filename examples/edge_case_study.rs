//! The Section VIII-D scenario as an example: eight partitioned DNNs
//! (two each of VGG16, VGG19, a 28-layer CNN and an intrusion-detection
//! CNN) deployed on five single-board computers, optimized with a
//! simulation-driven annealing search.
//!
//! Run with `cargo run --release --example edge_case_study`.

use chainnet_suite::datagen::case_study::{
    case_study_dnns, case_study_problem, CASE_STUDY_DEVICES,
};
use chainnet_suite::placement::evaluator::{loss_probability, SimEvaluator};
use chainnet_suite::placement::sa::{SaConfig, SimulatedAnnealing};
use chainnet_suite::qsim::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("devices:");
    for d in CASE_STUDY_DEVICES {
        println!(
            "  {:<22} {:>5} MB RAM, {:.3} GFLOP/s",
            d.name, d.ram_mb, d.gflops
        );
    }
    println!("\nservices (two instances each):");
    for dnn in case_study_dnns() {
        println!(
            "  {:<34} {} fragments, mean interarrival {:.1}s",
            dnn.name,
            dnn.fragments.len(),
            dnn.mean_interarrival
        );
    }

    let problem = case_study_problem()?;
    let initial = problem.initial_placement()?;
    let lam = problem.total_arrival_rate();

    let mut evaluator = SimEvaluator::new(SimConfig::new(500.0, 11));
    let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(60));
    let result = sa.optimize(&problem, &initial, &mut evaluator, 3);

    println!(
        "\ninitial loss probability:   {:.3}",
        loss_probability(lam, result.initial_objective)
    );
    println!(
        "optimized loss probability: {:.3} ({} evaluations, {:.1}s)",
        loss_probability(lam, result.best_objective),
        result.evaluations,
        result.elapsed_secs
    );
    println!("\noptimized placement (chain -> device route):");
    for i in 0..problem.num_chains() {
        let route: Vec<String> = result
            .best_placement
            .chain_route(i)
            .iter()
            .map(|&k| CASE_STUDY_DEVICES[k].name.to_string())
            .collect();
        println!("  chain {i}: {}", route.join(" -> "));
    }
    Ok(())
}
