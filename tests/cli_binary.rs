//! Black-box tests of the `chainnet-cli` binary: spawn the real
//! executable and check its stdout/stderr/exit codes, covering the full
//! gen → train → evaluate → optimize workflow a user would run.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chainnet-cli"))
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chainnet_bin_{name}_{}", std::process::id()))
}

#[test]
fn help_exits_with_usage() {
    let out = bin().arg("--help").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("COMMANDS"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = bin().arg("explode").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_file_is_an_io_error_not_a_panic() {
    let out = bin()
        .args(["simulate", "--system", "/nonexistent/nope.json"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn sigterm_interrupts_gen_dataset_with_exit_5_and_resumable_checkpoints() {
    let dir = temp("sigterm_ckpts");
    let out = temp("sigterm_data.json");
    let _ = std::fs::remove_dir_all(&dir);

    // A sweep far too large to finish: the run must end because of the
    // signal, not because it ran out of work.
    let child = bin()
        .args([
            "gen-dataset",
            "--out",
            out.to_str().unwrap(),
            "--samples",
            "2000000",
            "--horizon",
            "2000",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
            "--checkpoint-every",
            "8",
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn");

    // Let at least one shard land, then ask for a polite wind-down.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let shard_landed = std::fs::read_dir(&dir)
            .map(|d| d.filter_map(Result::ok).next().is_some())
            .unwrap_or(false);
        if shard_landed {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no shard checkpoint appeared within 60s"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());

    let done = child.wait_with_output().expect("wait");
    assert_eq!(
        done.status.code(),
        Some(5),
        "SIGTERM must exit with the documented interrupted code, stderr: {}",
        String::from_utf8_lossy(&done.stderr)
    );
    let stderr = String::from_utf8_lossy(&done.stderr);
    assert!(
        stderr.contains("interrupted"),
        "stderr should explain the interruption: {stderr}"
    );

    // The wind-down left durable shards behind — the resume contract.
    let ckpts = std::fs::read_dir(&dir)
        .expect("checkpoint dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
        .count();
    assert!(ckpts > 0, "completed shards must be checkpointed");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&out);
}

#[test]
fn full_workflow_through_the_binary() {
    let data = temp("wf_data.json");
    let model = temp("wf_model.json");

    // 1. Generate a small dataset.
    let out = bin()
        .args([
            "gen-dataset",
            "--out",
            data.to_str().unwrap(),
            "--samples",
            "6",
            "--horizon",
            "150",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 2. Dataset statistics.
    let out = bin()
        .args(["stats", "--data", data.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("6 graphs"));

    // 3. Train a tiny surrogate.
    let out = bin()
        .args([
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--epochs",
            "2",
            "--hidden",
            "8",
            "--iterations",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 4. Evaluate it on its own training data.
    let out = bin()
        .args([
            "evaluate",
            "--model",
            model.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("throughput APE"));

    // 5. Export the case study and optimize it with the model.
    let problem = temp("wf_problem.json");
    let out = bin()
        .args(["case-study", "--out", problem.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let out = bin()
        .args([
            "optimize",
            "--problem",
            problem.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--steps",
            "5",
            "--trials",
            "1",
            "--horizon",
            "120",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("optimized loss probability"));

    for p in [&data, &model, &problem] {
        let _ = std::fs::remove_file(p);
    }
}
