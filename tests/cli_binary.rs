//! Black-box tests of the `chainnet-cli` binary: spawn the real
//! executable and check its stdout/stderr/exit codes, covering the full
//! gen → train → evaluate → optimize workflow a user would run.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chainnet-cli"))
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chainnet_bin_{name}_{}", std::process::id()))
}

#[test]
fn help_exits_with_usage() {
    let out = bin().arg("--help").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("COMMANDS"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = bin().arg("explode").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_file_is_an_io_error_not_a_panic() {
    let out = bin()
        .args(["simulate", "--system", "/nonexistent/nope.json"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn full_workflow_through_the_binary() {
    let data = temp("wf_data.json");
    let model = temp("wf_model.json");

    // 1. Generate a small dataset.
    let out = bin()
        .args([
            "gen-dataset",
            "--out",
            data.to_str().unwrap(),
            "--samples",
            "6",
            "--horizon",
            "150",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 2. Dataset statistics.
    let out = bin()
        .args(["stats", "--data", data.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("6 graphs"));

    // 3. Train a tiny surrogate.
    let out = bin()
        .args([
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
            "--epochs",
            "2",
            "--hidden",
            "8",
            "--iterations",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 4. Evaluate it on its own training data.
    let out = bin()
        .args([
            "evaluate",
            "--model",
            model.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("throughput APE"));

    // 5. Export the case study and optimize it with the model.
    let problem = temp("wf_problem.json");
    let out = bin()
        .args(["case-study", "--out", problem.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let out = bin()
        .args([
            "optimize",
            "--problem",
            problem.to_str().unwrap(),
            "--model",
            model.to_str().unwrap(),
            "--steps",
            "5",
            "--trials",
            "1",
            "--horizon",
            "120",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("optimized loss probability"));

    for p in [&data, &model, &problem] {
        let _ = std::fs::remove_file(p);
    }
}
