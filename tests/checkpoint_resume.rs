//! End-to-end crash-recovery tests of the `chainnet-cli` binary: kill a
//! checkpointed run with SIGKILL, resume it in a fresh process, and
//! check the final artifact is byte-identical to an uninterrupted run;
//! corrupt a checkpoint on disk and watch resume quarantine it and fall
//! back; check the documented exit codes for checkpoint flag misuse.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chainnet-cli"))
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chainnet_ckpt_{name}_{}", std::process::id()))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = temp(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generate the small dataset the training tests share.
fn gen_dataset(path: &Path) {
    let out = bin()
        .args([
            "gen-dataset",
            "--out",
            path.to_str().unwrap(),
            "--samples",
            "10",
            "--horizon",
            "150",
            "--seed",
            "5",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The shared `train` invocation; every run of it must produce the same
/// model bytes, interrupted or not.
fn train_cmd(data: &Path, model: &Path, ckpt_dir: &Path, resume: bool) -> Command {
    let mut cmd = bin();
    cmd.args([
        "train",
        "--data",
        data.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
        "--epochs",
        "30",
        "--hidden",
        "16",
        "--iterations",
        "3",
        "--batch",
        "4",
        "--checkpoint-dir",
        ckpt_dir.to_str().unwrap(),
        "--checkpoint-every",
        "1",
    ]);
    if resume {
        cmd.arg("--resume");
    }
    cmd
}

#[test]
fn checkpoint_flag_misuse_has_documented_exit_codes() {
    let dir = temp_dir("codes");
    let out_file = temp("codes_out.json");
    let data = temp("codes_data.json");
    gen_dataset(&data);

    // --resume without --checkpoint-dir: usage error, exit 2.
    let out = bin()
        .args([
            "train",
            "--data",
            data.to_str().unwrap(),
            "--out",
            out_file.to_str().unwrap(),
            "--resume",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint-dir"));

    // --checkpoint-every 0: typed checkpoint error, exit 3.
    let out = bin()
        .args([
            "gen-dataset",
            "--out",
            out_file.to_str().unwrap(),
            "--samples",
            "2",
            "--horizon",
            "100",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
            "--checkpoint-every",
            "0",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("checkpoint"));

    // --checkpoint-dir pointing at a regular file: exit 3.
    let file = temp("codes_not_a_dir");
    std::fs::write(&file, b"x").unwrap();
    let out = bin()
        .args([
            "gen-dataset",
            "--out",
            out_file.to_str().unwrap(),
            "--samples",
            "2",
            "--horizon",
            "100",
            "--checkpoint-dir",
            file.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3));

    // --resume over an empty directory: nothing to resume, exit 4.
    let out = bin()
        .args([
            "gen-dataset",
            "--out",
            out_file.to_str().unwrap(),
            "--samples",
            "2",
            "--horizon",
            "100",
            "--checkpoint-dir",
            dir.to_str().unwrap(),
            "--resume",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(4));
    assert!(String::from_utf8_lossy(&out.stderr).contains("checkpoint"));

    for p in [&out_file, &data, &file] {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn sigkill_mid_train_then_resume_is_bit_identical() {
    let data = temp("kill_data.json");
    gen_dataset(&data);

    // Uninterrupted reference run.
    let ref_dir = temp_dir("kill_ref");
    let ref_model = temp("kill_ref_model.json");
    let out = train_cmd(&data, &ref_model, &ref_dir, false)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Killed run: SIGKILL as soon as a few checkpoints have landed. If
    // the run wins the race and finishes first, the resume below still
    // has to reproduce the identical model from its final checkpoint.
    let kill_dir = temp_dir("kill_victim");
    let kill_model = temp("kill_victim_model.json");
    let mut child = train_cmd(&data, &kill_model, &kill_dir, false)
        .spawn()
        .expect("spawn");
    let target = kill_dir.join("train-00000003.ckpt");
    for _ in 0..600 {
        if target.exists() {
            break;
        }
        if let Ok(Some(_)) = child.try_wait() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let _ = child.kill(); // SIGKILL
    let _ = child.wait();
    assert!(
        !kill_dir.join("train-00000030.ckpt").exists() || kill_model.exists(),
        "killed run left a final checkpoint but no model artifact"
    );

    // Resume in a fresh process and compare the model byte for byte.
    let out = train_cmd(&data, &kill_model, &kill_dir, true)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&ref_model).unwrap(),
        std::fs::read(&kill_model).unwrap(),
        "resumed model differs from the uninterrupted reference"
    );

    for p in [&data, &ref_model, &kill_model] {
        let _ = std::fs::remove_file(p);
    }
    for d in [&ref_dir, &kill_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn corrupt_checkpoint_is_quarantined_and_resume_falls_back() {
    let data = temp("corrupt_data.json");
    gen_dataset(&data);

    // Complete checkpointed run, then flip one byte in the newest
    // checkpoint to simulate on-disk corruption.
    let dir = temp_dir("corrupt");
    let ref_model = temp("corrupt_ref_model.json");
    let out = train_cmd(&data, &ref_model, &dir, false)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let latest = dir.join("train-00000030.ckpt");
    let mut bytes = std::fs::read(&latest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&latest, &bytes).unwrap();

    // Resume must quarantine the bad file, fall back to the previous
    // verified checkpoint, and still converge to the identical model.
    let resumed_model = temp("corrupt_resumed_model.json");
    let out = train_cmd(&data, &resumed_model, &dir, true)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        dir.join("train-00000030.ckpt.corrupt").exists(),
        "corrupt checkpoint was not quarantined"
    );
    assert_eq!(
        std::fs::read(&ref_model).unwrap(),
        std::fs::read(&resumed_model).unwrap(),
        "fallback resume produced a different model"
    );

    for p in [&data, &ref_model, &resumed_model] {
        let _ = std::fs::remove_file(p);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
