//! End-to-end integration tests spanning all crates: simulate → label →
//! train → predict → optimize, the full workflow of Fig. 3 in the paper.

use chainnet_suite::core::config::{ModelConfig, TrainConfig};
use chainnet_suite::core::model::{ChainNet, Surrogate};
use chainnet_suite::core::train::Trainer;
use chainnet_suite::datagen::dataset::{generate_raw_dataset, to_labeled, DatasetConfig};
use chainnet_suite::datagen::problems::{ProblemGenerator, ProblemParams};
use chainnet_suite::datagen::typesets::NetworkParams;
use chainnet_suite::placement::evaluator::{GnnEvaluator, SimEvaluator};
use chainnet_suite::placement::sa::{SaConfig, SimulatedAnnealing};
use chainnet_suite::qsim::sim::SimConfig;

fn small_config() -> ModelConfig {
    let mut cfg = ModelConfig::paper_chainnet();
    cfg.hidden = 12;
    cfg.iterations = 3;
    cfg
}

fn quick_trainer(epochs: usize) -> Trainer {
    Trainer::new(TrainConfig {
        epochs,
        batch_size: 8,
        learning_rate: 3e-3,
        lr_decay: 0.9,
        lr_decay_period: 10,
        seed: 0,
    })
}

#[test]
fn training_on_simulated_data_reduces_loss_and_ape() {
    let raw = generate_raw_dataset(
        NetworkParams::type_i(),
        &DatasetConfig::new(30, 11).with_horizon(400.0),
    )
    .expect("dataset");
    let cfg = small_config();
    let data = to_labeled(&raw, cfg.feature_mode);
    let (train, test) = data.split_at(22);

    let mut model = ChainNet::new(cfg, 5);
    let trainer = quick_trainer(8);
    let loss_before = trainer.evaluate_loss(&model, test);
    let ape_before = trainer.evaluate_ape(&model, test);
    trainer.train(&mut model, train, None);
    let loss_after = trainer.evaluate_loss(&model, test);
    let ape_after = trainer.evaluate_ape(&model, test);

    assert!(
        loss_after < loss_before,
        "test loss should drop: {loss_before} -> {loss_after}"
    );
    let mape = |c: &chainnet_suite::core::metrics::ApeCollector| {
        c.throughput.iter().sum::<f64>() / c.throughput.len() as f64
    };
    assert!(
        mape(&ape_after) < mape(&ape_before),
        "throughput MAPE should drop: {} -> {}",
        mape(&ape_before),
        mape(&ape_after)
    );
}

#[test]
fn trained_surrogate_generalizes_to_unseen_type_i_graphs() {
    // A 400-unit horizon gives labels too noisy for a robust
    // generalization bound: whether MAPE lands under the threshold then
    // depends on the RNG draw. 80 samples at a 800-unit horizon keeps
    // the test fast but makes the property hold with a wide margin.
    let train_raw = generate_raw_dataset(
        NetworkParams::type_i(),
        &DatasetConfig::new(80, 21).with_horizon(800.0),
    )
    .expect("train");
    let test_raw = generate_raw_dataset(
        NetworkParams::type_i(),
        &DatasetConfig::new(10, 77_000).with_horizon(800.0),
    )
    .expect("test");
    let cfg = small_config();
    let mut model = ChainNet::new(cfg, 3);
    let trainer = quick_trainer(40);
    trainer.train(&mut model, &to_labeled(&train_raw, cfg.feature_mode), None);
    let apes = trainer.evaluate_ape(&model, &to_labeled(&test_raw, cfg.feature_mode));
    let (tput, _) = apes.summaries();
    let tput = tput.expect("nonempty");
    // Loose sanity bound: a briefly-trained surrogate is already much
    // better than chance on small graphs.
    assert!(
        tput.mape < 0.8,
        "unexpectedly poor generalization: MAPE {}",
        tput.mape
    );
}

#[test]
fn gnn_guided_search_improves_over_initial_placement() {
    // Train a quick surrogate.
    let raw = generate_raw_dataset(
        NetworkParams::type_i(),
        &DatasetConfig::new(30, 31).with_horizon(400.0),
    )
    .expect("dataset");
    let cfg = small_config();
    let mut model = ChainNet::new(cfg, 9);
    quick_trainer(8).train(&mut model, &to_labeled(&raw, cfg.feature_mode), None);

    // Optimize a problem with a deliberately bad initial placement.
    let mut params = ProblemParams::small();
    params.num_devices = 8;
    let problem = ProblemGenerator::new(params).generate(3).expect("problem");
    let initial = problem.initial_placement().expect("initial");

    let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(20));
    let mut ev = GnnEvaluator::new(model);
    let result = sa.optimize(&problem, &initial, &mut ev, 2);
    // The search must never return something worse than the start, and
    // the decision must stay feasible.
    assert!(result.best_objective >= result.initial_objective);
    assert!(problem.is_feasible(&result.best_placement));
}

#[test]
fn simulation_and_gnn_searches_agree_on_feasibility() {
    let problem = ProblemGenerator::new(ProblemParams::small())
        .generate(5)
        .expect("problem");
    let initial = problem.initial_placement().expect("initial");
    let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(10));

    let mut sim_ev = SimEvaluator::new(SimConfig::new(150.0, 2));
    let sim_res = sa.optimize(&problem, &initial, &mut sim_ev, 1);
    assert!(problem.is_feasible(&sim_res.best_placement));

    let model = ChainNet::new(small_config(), 4);
    let mut gnn_ev = GnnEvaluator::new(model);
    let gnn_res = sa.optimize(&problem, &initial, &mut gnn_ev, 1);
    assert!(problem.is_feasible(&gnn_res.best_placement));
    // GNN evaluations are pure inference: counts must match the sim run
    // given identical seeds and step budget.
    assert_eq!(gnn_res.evaluations, sim_res.evaluations);
}

#[test]
fn surrogate_predictions_respect_physical_bounds_after_training() {
    let raw = generate_raw_dataset(
        NetworkParams::type_i(),
        &DatasetConfig::new(25, 41).with_horizon(300.0),
    )
    .expect("dataset");
    let cfg = small_config();
    let mut model = ChainNet::new(cfg, 6);
    quick_trainer(6).train(&mut model, &to_labeled(&raw, cfg.feature_mode), None);

    for sample in &raw {
        let graph = chainnet_suite::core::graph::PlacementGraph::from_model(
            &sample.model,
            cfg.feature_mode,
        );
        for (i, p) in model.predict(&graph).iter().enumerate() {
            let lam = sample.model.chains()[i].arrival_rate;
            assert!(
                p.throughput <= lam + 1e-9,
                "throughput prediction above offered rate"
            );
            assert!(
                p.latency >= graph.chains[i].total_processing - 1e-9,
                "latency prediction below total processing time"
            );
        }
    }
}
