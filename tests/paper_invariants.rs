//! Cross-crate property tests of the paper's structural invariants:
//! Algorithm 1 graph counts, Table II feature algebra, queueing-theoretic
//! target bounds and SA move feasibility on randomly generated systems.

use chainnet_suite::core::config::FeatureMode;
use chainnet_suite::core::config::TargetMode;
use chainnet_suite::core::data::targets_to_learning_space;
use chainnet_suite::core::graph::{HomoGraph, PlacementGraph};
use chainnet_suite::datagen::problems::{ProblemGenerator, ProblemParams};
use chainnet_suite::datagen::typesets::{NetworkGenerator, NetworkParams};
use chainnet_suite::placement::sa::{SaConfig, SimulatedAnnealing};
use chainnet_suite::qsim::sim::{SimConfig, Simulator};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Node and edge counts of Algorithm 1: `C + ΣT_i + d` nodes,
    /// `2ΣT_i − C` edges, for any generated system of either type.
    #[test]
    fn graph_counts_match_formula(seed in 0u64..500, type_ii in proptest::bool::ANY) {
        let params = if type_ii { NetworkParams::type_ii() } else { NetworkParams::type_i() };
        let model = NetworkGenerator::new(params).generate(seed).unwrap();
        let graph = PlacementGraph::from_model(&model, FeatureMode::Modified);
        let c = model.chains().len();
        let total_frags: usize = model.chains().iter().map(|ch| ch.len()).sum();
        let d = model.placement().used_devices().len();
        prop_assert_eq!(graph.num_nodes(), c + total_frags + d);
        prop_assert_eq!(graph.num_edges(), 2 * total_frags - c);
        // Execution-step bookkeeping: device F_k counts sum to ΣT_i.
        let fk_sum: usize = (0..graph.num_devices()).map(|k| graph.device_step_count(k)).sum();
        prop_assert_eq!(fk_sum, total_frags);
    }

    /// Table II modified features are scale-free: fragment features lie in
    /// sensible normalized ranges for any generated system.
    #[test]
    fn modified_features_are_normalized(seed in 0u64..300) {
        let model = NetworkGenerator::new(NetworkParams::type_ii()).generate(seed).unwrap();
        let graph = PlacementGraph::from_model(&model, FeatureMode::Modified);
        for chain in &graph.chains {
            prop_assert_eq!(&chain.service_feat, &vec![1.0]);
            for step in &chain.steps {
                // t_p / Δt_k is a share of the device total: in (0, 1].
                prop_assert!(step.frag_feat[1] > 0.0 && step.frag_feat[1] <= 1.0 + 1e-12);
                // m / M_k within capacity.
                prop_assert!(step.frag_feat[2] > 0.0 && step.frag_feat[2] <= 1.0 + 1e-12);
            }
        }
        for dev in &graph.devices {
            // Δm_k / M_k may exceed 1 only if the random placement
            // overflows; the generator assigns unit demands within
            // capacity 100, so it stays in (0, 1].
            prop_assert!(dev.feat[0] > 0.0 && dev.feat[0] <= 1.0 + 1e-12);
        }
    }

    /// Ratio learning targets computed from real simulations are valid
    /// probabilities/ratios (Table II "GNN output" row).
    #[test]
    fn ratio_targets_are_in_unit_interval(seed in 0u64..60) {
        let model = NetworkGenerator::new(NetworkParams::type_i()).generate(seed).unwrap();
        let res = Simulator::new().run(&model, &SimConfig::new(400.0, seed)).unwrap();
        let graph = PlacementGraph::from_model(&model, FeatureMode::Modified);
        for (i, c) in res.chains.iter().enumerate() {
            let t = chainnet_suite::core::data::ChainTargets {
                throughput: c.throughput,
                latency: c.mean_latency,
            };
            let (tr, lr) = targets_to_learning_space(TargetMode::Ratio, &graph, i, t);
            prop_assert!((0.0..=1.0).contains(&tr), "tput ratio {}", tr);
            prop_assert!((0.0..=1.0).contains(&lr), "lat ratio {}", lr);
        }
    }

    /// The homogeneous baseline view preserves node count and leaves
    /// service nodes isolated for any generated system.
    #[test]
    fn homogeneous_view_is_consistent(seed in 0u64..300) {
        let model = NetworkGenerator::new(NetworkParams::type_i()).generate(seed).unwrap();
        let graph = PlacementGraph::from_model(&model, FeatureMode::Modified);
        let homo = HomoGraph::from_placement(&graph);
        prop_assert_eq!(homo.num_nodes(), graph.num_nodes());
        prop_assert_eq!(homo.num_adj_entries(), 2 * graph.num_edges());
        for &s in &homo.service_nodes {
            prop_assert!(homo.adj[s].is_empty());
        }
        let frag_total: usize = homo.chain_fragments.iter().map(|f| f.len()).sum();
        prop_assert_eq!(frag_total, graph.num_fragments());
    }

    /// Every SA proposal on a generated Table VII problem is feasible and
    /// differs from its parent.
    #[test]
    fn sa_moves_preserve_feasibility(seed in 0u64..100, move_seed in 0u64..100) {
        let problem = ProblemGenerator::new(ProblemParams::small()).generate(seed).unwrap();
        let initial = problem.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default());
        let mut rng = SmallRng::seed_from_u64(move_seed);
        let mut current = initial;
        for _ in 0..8 {
            if let Some(next) = sa.propose(&problem, &current, &mut rng) {
                prop_assert!(problem.is_feasible(&next));
                prop_assert_ne!(&next, &current);
                current = next;
            }
        }
    }

    /// Simulated throughput never exceeds offered load, and the Eq. 18
    /// loss probability is consistent with per-chain losses.
    #[test]
    fn simulation_respects_flow_bounds(seed in 0u64..60) {
        let model = NetworkGenerator::new(NetworkParams::type_i()).generate(seed).unwrap();
        let res = Simulator::new().run(&model, &SimConfig::new(400.0, seed ^ 0xabcd)).unwrap();
        let lam: f64 = model.total_arrival_rate();
        prop_assert!(res.total_throughput <= lam * 1.25 + 0.1);
        prop_assert!((0.0..=1.0).contains(&res.loss_probability));
    }
}
