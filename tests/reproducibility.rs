//! Reproducibility guarantees across the whole stack: identical seeds
//! must give bit-identical datasets, models, training runs and searches —
//! the property that makes every experiment in EXPERIMENTS.md rerunnable.

use chainnet_suite::core::config::{ModelConfig, TrainConfig};
use chainnet_suite::core::model::{ChainNet, Surrogate};
use chainnet_suite::core::train::Trainer;
use chainnet_suite::datagen::dataset::{generate_raw_dataset, to_labeled, DatasetConfig};
use chainnet_suite::datagen::typesets::NetworkParams;
use chainnet_suite::placement::batch::optimize_batch;
use chainnet_suite::placement::evaluator::SimEvaluator;
use chainnet_suite::placement::problem::PlacementProblem;
use chainnet_suite::placement::sa::SaConfig;
use chainnet_suite::qsim::model::{Device, Fragment, ServiceChain};
use chainnet_suite::qsim::sim::SimConfig;

fn tiny_config() -> ModelConfig {
    let mut cfg = ModelConfig::small();
    cfg.hidden = 8;
    cfg.iterations = 2;
    cfg
}

#[test]
fn model_initialization_is_seed_deterministic() {
    let a = ChainNet::new(tiny_config(), 42);
    let b = ChainNet::new(tiny_config(), 42);
    assert_eq!(a.params().to_json().unwrap(), b.params().to_json().unwrap());
    let c = ChainNet::new(tiny_config(), 43);
    assert_ne!(a.params().to_json().unwrap(), c.params().to_json().unwrap());
}

#[test]
fn full_training_run_is_deterministic() {
    let raw = generate_raw_dataset(
        NetworkParams::type_i(),
        &DatasetConfig::new(10, 7).with_horizon(200.0),
    )
    .unwrap();
    let data = to_labeled(&raw, tiny_config().feature_mode);
    let train_once = || {
        let mut model = ChainNet::new(tiny_config(), 9);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 4,
            learning_rate: 1e-3,
            lr_decay: 0.9,
            lr_decay_period: 10,
            seed: 5,
        });
        let report = trainer.train(&mut model, &data, None);
        (
            model.params().to_json().unwrap(),
            report.final_train_loss().unwrap(),
        )
    };
    let (w1, l1) = train_once();
    let (w2, l2) = train_once();
    assert_eq!(w1, w2, "weights must match bit for bit");
    assert_eq!(l1, l2);
}

#[test]
fn trained_model_serialization_preserves_behavior() {
    let raw = generate_raw_dataset(
        NetworkParams::type_i(),
        &DatasetConfig::new(8, 17).with_horizon(200.0),
    )
    .unwrap();
    let data = to_labeled(&raw, tiny_config().feature_mode);
    let mut model = ChainNet::new(tiny_config(), 1);
    Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 4,
        learning_rate: 1e-3,
        lr_decay: 0.9,
        lr_decay_period: 10,
        seed: 0,
    })
    .train(&mut model, &data, None);
    let json = serde_json::to_string(&model).unwrap();
    let restored: ChainNet = serde_json::from_str(&json).unwrap();
    for sample in &data {
        assert_eq!(
            model.predict(&sample.graph),
            restored.predict(&sample.graph)
        );
    }
}

#[test]
fn batch_search_is_thread_count_invariant() {
    let problems: Vec<PlacementProblem> = (0..3)
        .map(|i| {
            let devices = vec![
                Device::new(5.0, 0.4).unwrap(),
                Device::new(25.0, 1.5 + 0.2 * i as f64).unwrap(),
                Device::new(25.0, 1.5).unwrap(),
            ];
            let chains = vec![ServiceChain::new(
                0.9,
                vec![
                    Fragment::new(1.0, 1.0).unwrap(),
                    Fragment::new(1.0, 1.0).unwrap(),
                ],
            )
            .unwrap()];
            PlacementProblem::new(devices, chains).unwrap()
        })
        .collect();
    let cfg = SaConfig::paper_default().with_max_steps(6).with_seed(3);
    let run = |threads: usize| {
        optimize_batch(
            &problems,
            |i| SimEvaluator::new(SimConfig::new(150.0, 70 + i as u64)),
            cfg,
            1,
            threads,
        )
    };
    let serial = run(1);
    let parallel = run(3);
    for (a, b) in serial.iter().zip(&parallel) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.best_placement, b.best_placement);
        assert_eq!(a.best_objective, b.best_objective);
    }
}

#[test]
fn dataset_generation_is_seed_deterministic_end_to_end() {
    let cfg = DatasetConfig::new(6, 99).with_horizon(150.0);
    let a = generate_raw_dataset(NetworkParams::type_ii(), &cfg).unwrap();
    let b = generate_raw_dataset(NetworkParams::type_ii(), &cfg).unwrap();
    assert_eq!(a, b);
    let shifted = DatasetConfig::new(6, 100).with_horizon(150.0);
    let c = generate_raw_dataset(NetworkParams::type_ii(), &shifted).unwrap();
    assert_ne!(a, c);
}
