//! Offline shim of the `signal-hook` crate: just enough surface for
//! the ChainNet workspace — `flag::register(signal, Arc<AtomicBool>)`
//! sets the flag when the signal arrives, and `consts` exposes the two
//! signal numbers the workspace cares about.
//!
//! Implementation notes (this is the one place in the dependency tree
//! that needs `unsafe`, which is why it lives under `vendor/` where the
//! workspace lint's R3 rule does not apply — vendored shims are audited
//! by hand instead):
//!
//! * Registration installs a C handler via libc `signal(2)`. On
//!   glibc/Linux `signal` has BSD semantics: the handler persists
//!   across deliveries and syscalls restart, which is what a
//!   flag-setting handler wants.
//! * The handler body is async-signal-safe: it performs a single
//!   relaxed atomic load of a handler-table slot plus a `SeqCst` store
//!   into the caller's `AtomicBool`. No allocation, no locks, no I/O.
//! * Each registered `Arc<AtomicBool>` is leaked (`Arc::into_raw`) so
//!   the pointer stored in the handler table can never dangle, even if
//!   the caller drops their clone. Registration happens O(1) times per
//!   process, so the leak is bounded and deliberate.
//! * Re-registering the same signal replaces the stored flag pointer
//!   (the previous flag is leaked, not freed — see above) and leaves
//!   the C handler installed.

use std::io;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// Signal numbers used by the workspace (Linux values).
pub mod consts {
    /// Interactive interrupt (Ctrl-C).
    pub const SIGINT: i32 = 2;
    /// Polite termination request.
    pub const SIGTERM: i32 = 15;
}

/// Highest signal number the handler table accommodates.
const MAX_SIGNAL: usize = 32;

/// One flag slot per signal number. A null pointer means "not
/// registered"; otherwise the slot holds a pointer obtained from
/// `Arc::into_raw`, alive for the rest of the process.
static FLAGS: [AtomicPtr<AtomicBool>; MAX_SIGNAL] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const NULL: AtomicPtr<AtomicBool> = AtomicPtr::new(ptr::null_mut());
    [NULL; MAX_SIGNAL]
};

/// Count of signals delivered to registered handlers (test aid; relaxed).
static DELIVERIES: AtomicUsize = AtomicUsize::new(0);

extern "C" {
    /// libc `signal(2)`. `handler` is either `SIG_ERR`/`SIG_DFL`-style
    /// sentinel or a function pointer cast to `usize`.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// `SIG_ERR` as returned by libc `signal(2)`.
const SIG_ERR: usize = usize::MAX;

/// The C signal handler: set the registered flag for `signum`.
extern "C" fn flag_handler(signum: i32) {
    let idx = signum as usize;
    if idx < MAX_SIGNAL {
        let p = FLAGS[idx].load(Ordering::Relaxed);
        if !p.is_null() {
            // SAFETY: non-null slots only ever hold pointers from
            // `Arc::into_raw` that are intentionally leaked, so the
            // referent outlives the process.
            unsafe { (*p).store(true, Ordering::SeqCst) };
            DELIVERIES.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Flag-based registration, mirroring `signal_hook::flag`.
pub mod flag {
    use super::*;

    /// Arrange for `flag` to be set to `true` when `signal_num` is
    /// delivered to this process. The flag is shared: keep a clone and
    /// poll it from the main loop.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` if the signal number is out of range or
    /// the underlying `signal(2)` call is rejected by the kernel.
    pub fn register(signal_num: i32, flag: Arc<AtomicBool>) -> io::Result<()> {
        let idx = signal_num as usize;
        if signal_num <= 0 || idx >= MAX_SIGNAL {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("signal number {signal_num} out of range"),
            ));
        }
        // Leak a clone so the handler-table pointer stays valid forever.
        let raw = Arc::into_raw(flag) as *mut AtomicBool;
        FLAGS[idx].store(raw, Ordering::SeqCst);
        // SAFETY: `flag_handler` is async-signal-safe (atomic ops only)
        // and has the `extern "C" fn(i32)` ABI `signal(2)` expects.
        let prev = unsafe { signal(signal_num, flag_handler as extern "C" fn(i32) as usize) };
        if prev == SIG_ERR {
            FLAGS[idx].store(ptr::null_mut(), Ordering::SeqCst);
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_signals() {
        let flag = Arc::new(AtomicBool::new(false));
        assert!(flag::register(0, Arc::clone(&flag)).is_err());
        assert!(flag::register(-3, Arc::clone(&flag)).is_err());
        assert!(flag::register(99, flag).is_err());
    }

    #[test]
    fn sets_flag_on_raised_signal() {
        // SIGUSR1 = 10 on Linux; raising it in-process exercises the
        // whole register → deliver → flag path without killing the
        // test runner.
        const SIGUSR1: i32 = 10;
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        let flag = Arc::new(AtomicBool::new(false));
        flag::register(SIGUSR1, Arc::clone(&flag)).expect("register SIGUSR1");
        assert!(!flag.load(Ordering::SeqCst));
        // SAFETY: raising a registered, flag-handled signal at a known
        // safe point (no locks held, no allocation in the handler).
        unsafe { raise(SIGUSR1) };
        assert!(flag.load(Ordering::SeqCst));
    }
}
