//! Offline shim for the `parking_lot` crate: thin non-poisoning wrappers
//! over `std::sync::{Mutex, RwLock}` exposing the subset of the
//! `parking_lot` API this workspace uses (`lock`, `read`, `write`,
//! `try_lock`, `into_inner`, `get_mut`).
//!
//! Poisoned locks are unwrapped into the inner guard: a panic while a
//! lock is held aborts the observing thread instead of propagating
//! poison, which matches `parking_lot` semantics closely enough for the
//! metrics and worker-pool use cases here.

use std::sync;

/// A mutual-exclusion primitive (non-poisoning facade).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex in an unlocked state.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrow the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock (non-poisoning facade).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new unlocked reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutably borrow the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
