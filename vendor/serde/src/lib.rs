//! Offline shim for `serde`.
//!
//! Instead of serde's visitor-based zero-copy data model, this shim
//! routes all (de)serialization through one concrete JSON-like
//! [`Value`] tree:
//!
//! * [`Serialize`] renders `self` into a [`Value`];
//! * [`Deserialize`] reconstructs `Self` from a [`&Value`](Value).
//!
//! The `serde_derive` companion crate generates impls for structs
//! (named, tuple, unit), externally tagged enums, plain generics, and
//! the `#[serde(default)]` / `#[serde(default = "path")]` field
//! attributes — exactly the shapes this workspace uses. `serde_json`
//! provides the text encoding on top of [`Value`].

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The concrete data model every type (de)serializes through.
///
/// Maps preserve insertion order so derived structs round-trip with a
/// stable field order (declaration order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (any JSON integer that fits `i64`).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (ints included).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Signed integer payload, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.007199254740992e15 => Some(f as i64),
            _ => None,
        }
    }

    /// Unsigned integer payload, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f.fract() == 0.0 && (0.0..9.007199254740992e15).contains(&f) => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| find_field(m, key))
    }
}

/// Look up `key` in an insertion-ordered object body.
///
/// Used by derived `Deserialize` impls.
pub fn find_field<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// (De)serialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// The standard "missing field" error used by derived impls.
    pub fn missing_field(field: &str) -> Self {
        Error::custom(format!("missing field `{field}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type renderable into the [`Value`] data model.
pub trait Serialize {
    /// Render `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Hook for absent object fields: errors by default, `Option<T>`
    /// overrides it to yield `None` (mirroring serde's behavior).
    fn from_missing(field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(field))
    }
}

pub mod ser {
    //! Serialization-side re-exports (API-compatibility module).
    pub use crate::{Error, Serialize};
}

pub mod de {
    //! Deserialization-side re-exports (API-compatibility module).
    pub use crate::{Deserialize, Error};

    /// Owned deserialization marker; with a `Value`-based model every
    /// [`Deserialize`] already produces owned data.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for output stability: HashMap iteration order is random.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

macro_rules! impl_de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))
            }
        }
    )*};
}
impl_de_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))
            }
        }
    )*};
}
impl_de_unsigned!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // serde_json emits NaN/inf as null; accept it back as NaN.
            Value::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| Error::custom(format!("expected f64, got {v:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Deserialize for &'static str {
    /// `&'static str` cannot borrow from a transient [`Value`]; this
    /// impl exists so derives on serialize-only types with static
    /// string fields compile, and errors if actually exercised.
    fn from_value(v: &Value) -> Result<Self, Error> {
        Err(Error::custom(format!(
            "cannot deserialize borrowed &'static str (from {v:?})"
        )))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, got {v:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_de_tuple {
    ($(($len:literal: $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v
                    .as_seq()
                    .ok_or_else(|| Error::custom(format!("expected tuple array, got {v:?}")))?;
                if s.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of length {}, got {}", $len, s.len())));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}
impl_de_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom(format!("expected object, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}
