//! Offline shim for `serde_json`: JSON text encoding on top of the
//! serde shim's [`Value`] data model.
//!
//! Provides [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`]/[`from_value`], the [`json!`] macro, and the
//! [`Error`]/[`Result`] types. Float formatting uses Rust's shortest
//! round-trip `Display`, so every finite `f64` survives a
//! serialize/parse cycle bit-exactly (the `float_roundtrip` behavior).
//! Non-finite floats serialize as `null`, matching `serde_json`'s
//! `Value` conversions.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::custom(e)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// Result alias used throughout this shim.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the shapes the shim supports; the `Result` is kept
/// for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize `value` to an indented (2-space) JSON string.
///
/// # Errors
///
/// Infallible for the shapes the shim supports.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable type.
///
/// # Errors
///
/// Syntax errors and shape mismatches.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Render any serializable value into the [`Value`] tree.
///
/// # Errors
///
/// Infallible; kept for API compatibility.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuild a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Shape mismatches.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

#[doc(hidden)]
pub fn __value_of<T: Serialize>(v: &T) -> Value {
    v.to_value()
}

/// Build a [`Value`] from JSON-ish syntax.
///
/// Supports the object/array/expression forms used in this workspace;
/// nested collections should be passed as serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $( ($key.to_string(), $crate::__value_of(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::__value_of(&$val) ),* ])
    };
    ($other:expr) => { $crate::__value_of(&$other) };
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's Display is shortest-round-trip; integral floats print
        // without a fraction, which still parses back losslessly.
        out.push_str(&format!("{f}"));
    } else {
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_value(out, other),
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::custom("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::custom("bad \\u escape"))?;
        let code = u16::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{0008}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{000C}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("bad surrogate pair"))?
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| Error::custom("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (may be multi-byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            // Preserve the sign of negative zero, which has no i64 form.
            if text == "-0" {
                return Ok(Value::Float(-0.0));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compound() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::Int(-3)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::Float(0.25), Value::Null]),
            ),
            ("c".to_string(), Value::Str("x \"quoted\" \n".to_string())),
            ("d".to_string(), Value::Bool(true)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 6.02e23, 5e-324, f64::MAX, -0.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {text} -> {back}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"k": vec![1u64, 2], "name": "obs"});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n"));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn unicode_escapes() {
        let back: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(back, "é😀");
    }
}
