//! Offline shim for the `rand` 0.8 crate.
//!
//! Implements the subset of the API this workspace uses, fully
//! deterministically and with zero dependencies:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (same family as upstream's
//!   64-bit `SmallRng`, though the exact stream differs);
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seeding;
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Determinism matters more than stream compatibility here: every
//! experiment seed in the workspace reproduces bit-identically across
//! runs of this shim, but constants produced from a given seed are not
//! the same as upstream `rand`'s.

/// The core of a random number generator: a source of `u64` words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator. Only `seed_from_u64` is supported.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole "natural" range:
/// `[0, 1)` for floats, the full domain for integers, fair coin for bool.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over a caller-provided sub-range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(u128::from(inclusive));
                assert!(span > 0, "cannot sample from empty range");
                lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128)
                    .wrapping_sub(lo as i128)
                    .wrapping_add(i128::from(inclusive)) as u128;
                assert!(span > 0, "cannot sample from empty range");
                lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo < hi || (_inclusive && lo <= hi), "cannot sample from empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to the open upper bound.
                if v >= hi { lo } else { v }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over its natural domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Snapshot the internal xoshiro256++ state (for checkpointing).
        ///
        /// Restoring this state with [`SmallRng::from_state`] continues
        /// the stream exactly where the snapshot was taken, which is
        /// what makes killed-and-resumed runs bit-identical.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`SmallRng::state`] snapshot.
        ///
        /// The all-zero state is the one invalid xoshiro state (the
        /// stream would be constant zero); it is mapped to the same
        /// fallback state `seed_from_u64` uses, so a corrupted snapshot
        /// can never wedge the generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                SmallRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                }
            } else {
                SmallRng { s }
            }
        }

        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = Self::splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden state of xoshiro.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements chosen without replacement
        /// (fewer if the slice is shorter).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index vector.
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
