//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented directly on
//! `proc_macro::TokenStream` (no `syn`/`quote`, which are unavailable
//! offline).
//!
//! Supported shapes — exactly what this workspace declares:
//!
//! * structs with named fields, tuple structs (newtype and longer),
//!   unit structs;
//! * enums with unit, newtype, tuple, and struct variants, using
//!   serde's externally tagged representation;
//! * plain type parameters (`struct Trained<M>`), which receive a
//!   `Serialize`/`Deserialize` bound; declared trait bounds
//!   (`struct Tensor<S: Scalar>`) are replicated on the generated impl,
//!   and parameter defaults (`= f64`) are dropped there;
//! * field attributes `#[serde(default)]` and
//!   `#[serde(default = "path")]`.
//!
//! Anything else (rename, flatten, skip, lifetimes, where clauses)
//! panics at macro expansion time with a clear message rather than
//! silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------

/// How an absent field is filled during deserialization.
#[derive(Clone, Debug, PartialEq)]
enum DefaultAttr {
    /// No `#[serde(default)]`: absent fields go through `from_missing`.
    None,
    /// `#[serde(default)]`: `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

#[derive(Debug)]
struct Field {
    name: String,
    default: DefaultAttr,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct GenericParam {
    name: String,
    /// Declared trait bounds (`Scalar`, `Clone + Debug`, ...), rendered
    /// as source text; empty when the parameter is unbounded.
    bounds: String,
}

#[derive(Debug)]
struct Input {
    name: String,
    /// Type parameters, in declaration order.
    generics: Vec<GenericParam>,
    kind: Kind,
}

// ---------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    /// Clone-on-peek: `TokenTree` is cheap to clone, and returning an
    /// owned token keeps `self` free for `pos` bumps in the caller.
    fn peek(&self) -> Option<TokenTree> {
        self.tokens.get(self.pos).cloned()
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde shim derive: expected identifier, got {other:?}"),
        }
    }

    /// Skip (and inspect) a `#[...]` attribute; returns the parsed
    /// serde default attribute if it was `#[serde(...)]`.
    fn eat_attribute(&mut self) -> Option<DefaultAttr> {
        if !self.eat_punct('#') {
            return None;
        }
        let group = match self.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde shim derive: malformed attribute, got {other:?}"),
        };
        let mut inner = Cursor::new(group.stream());
        if !inner.eat_ident("serde") {
            return Some(DefaultAttr::None); // non-serde attribute (doc, cfg, ...)
        }
        let args = match inner.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
            other => panic!("serde shim derive: malformed #[serde] attribute, got {other:?}"),
        };
        let mut body = Cursor::new(args.stream());
        if !body.eat_ident("default") {
            panic!(
                "serde shim derive: unsupported #[serde(...)] attribute `{}` \
                 (only `default` and `default = \"path\"` are implemented)",
                args.stream()
            );
        }
        if body.eat_punct('=') {
            match body.next() {
                Some(TokenTree::Literal(lit)) => {
                    let s = lit.to_string();
                    let path = s.trim_matches('"').to_string();
                    Some(DefaultAttr::Path(path))
                }
                other => panic!("serde shim derive: expected \"path\" literal, got {other:?}"),
            }
        } else {
            Some(DefaultAttr::Trait)
        }
    }

    /// Consume every leading attribute, folding serde defaults together.
    fn eat_attributes(&mut self) -> DefaultAttr {
        let mut default = DefaultAttr::None;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(attr) = self.eat_attribute() {
                if attr != DefaultAttr::None {
                    default = attr;
                }
            }
        }
        default
    }

    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1; // pub(crate) etc.
                }
            }
        }
    }

    /// Skip a type expression up to a top-level `,` (or end), tracking
    /// angle-bracket depth. Parens/brackets/braces arrive as single
    /// groups, so only `<`/`>` need explicit tracking.
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Item parser
// ---------------------------------------------------------------------

fn parse_input(stream: TokenStream) -> Input {
    let mut c = Cursor::new(stream);
    c.eat_attributes();
    c.eat_visibility();

    let is_enum = if c.eat_ident("struct") {
        false
    } else if c.eat_ident("enum") {
        true
    } else {
        panic!(
            "serde shim derive: expected `struct` or `enum`, got {:?}",
            c.peek()
        );
    };
    let name = c.expect_ident();

    let mut generics: Vec<GenericParam> = Vec::new();
    if c.eat_punct('<') {
        let mut depth = 1usize;
        let mut expecting_param = true;
        // After a param's `:` we collect its bound tokens (replicated on
        // generated impls); after `=` we are in a default and drop tokens.
        let mut in_bounds = false;
        let mut in_default = false;
        let mut bound_tokens: Vec<String> = Vec::new();
        while depth > 0 {
            let collecting = in_bounds && !in_default;
            match c.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    if collecting {
                        bound_tokens.push("<".to_string());
                    }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth >= 1 && collecting {
                        bound_tokens.push(">".to_string());
                    }
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    if let Some(last) = generics.last_mut() {
                        last.bounds = bound_tokens.join(" ");
                    }
                    bound_tokens.clear();
                    expecting_param = true;
                    in_bounds = false;
                    in_default = false;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ':' && depth == 1 && !in_default => {
                    in_bounds = true;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '=' && depth == 1 => {
                    in_default = true;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                    panic!("serde shim derive: lifetimes are not supported ({name})");
                }
                Some(TokenTree::Ident(i)) if depth == 1 && expecting_param => {
                    let word = i.to_string();
                    if word == "const" {
                        panic!("serde shim derive: const generics are not supported ({name})");
                    }
                    generics.push(GenericParam {
                        name: word,
                        bounds: String::new(),
                    });
                    expecting_param = false;
                }
                Some(tok) => {
                    if collecting {
                        bound_tokens.push(tok.to_string());
                    }
                }
                None => panic!("serde shim derive: unterminated generics on {name}"),
            }
        }
        if let Some(last) = generics.last_mut() {
            if last.bounds.is_empty() {
                last.bounds = bound_tokens.join(" ");
            }
        }
    }

    if matches!(c.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "where") {
        panic!("serde shim derive: where clauses are not supported ({name})");
    }

    let kind = if is_enum {
        let body = expect_brace(&mut c, &name);
        Kind::Enum(parse_variants(body))
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde shim derive: malformed struct body for {name}: {other:?}"),
        }
    };

    Input {
        name,
        generics,
        kind,
    }
}

fn expect_brace(c: &mut Cursor, name: &str) -> TokenStream {
    match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde shim derive: expected `{{` body for {name}, got {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let default = c.eat_attributes();
        if c.at_end() {
            break;
        }
        c.eat_visibility();
        let name = c.expect_ident();
        if !c.eat_punct(':') {
            panic!("serde shim derive: expected `:` after field `{name}`");
        }
        c.skip_type();
        c.eat_punct(',');
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    if c.at_end() {
        return 0;
    }
    let mut count = 1;
    loop {
        c.eat_attributes();
        c.eat_visibility();
        c.skip_type();
        if c.eat_punct(',') {
            if c.at_end() {
                break; // trailing comma
            }
            count += 1;
        } else {
            break;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.eat_attributes();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident();
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.pos += 1;
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde shim derive: explicit discriminants are not supported ({name})");
        }
        c.eat_punct(',');
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn impl_header(input: &Input, trait_path: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let bounded: Vec<String> = input
            .generics
            .iter()
            .map(|g| {
                if g.bounds.is_empty() {
                    format!("{}: {trait_path}", g.name)
                } else {
                    format!("{}: {} + {trait_path}", g.name, g.bounds)
                }
            })
            .collect();
        let names: Vec<&str> = input.generics.iter().map(|g| g.name.as_str()).collect();
        (
            format!("<{}>", bounded.join(", ")),
            format!("<{}>", names.join(", ")),
        )
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let (impl_generics, ty_generics) = impl_header(input, "::serde::Serialize");
    let body = match &input.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let mut s = String::from("{ let mut __m: Vec<(String, ::serde::Value)> = Vec::new();");
            for f in fields {
                s.push_str(&format!(
                    "__m.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Map(__m) }");
            s
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Seq(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "{ let mut __m: Vec<(String, ::serde::Value)> = Vec::new();",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.push((\"{0}\".to_string(), ::serde::Serialize::to_value({0})));",
                                f.name
                            ));
                        }
                        inner.push_str("::serde::Value::Map(__m) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {name}{ty_generics} {{\
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_named_field_reads(fields: &[Field], map_var: &str) -> String {
    let mut s = String::new();
    for f in fields {
        let missing = match &f.default {
            DefaultAttr::None => format!("::serde::Deserialize::from_missing(\"{}\")?", f.name),
            DefaultAttr::Trait => "::std::default::Default::default()".to_string(),
            DefaultAttr::Path(path) => format!("{path}()"),
        };
        s.push_str(&format!(
            "{0}: match ::serde::find_field({map_var}, \"{0}\") {{\
               ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\
               ::std::option::Option::None => {missing},\
             }},",
            f.name
        ));
    }
    s
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let (impl_generics, ty_generics) = impl_header(input, "::serde::Deserialize");
    let body = match &input.kind {
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "{{ let __s = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\
                   \"{name}: expected array\"))?;\
                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                   ::serde::Error::custom(format!(\"{name}: expected {n} elements, got {{}}\", __s.len()))); }}\
                 ::std::result::Result::Ok({name}({items})) }}",
                items = items.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let reads = gen_named_field_reads(fields, "__m");
            format!(
                "{{ let __m = __v.as_map().ok_or_else(|| ::serde::Error::custom(\
                   \"{name}: expected object\"))?;\
                 ::std::result::Result::Ok({name} {{ {reads} }}) }}"
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ));
                    }
                    VariantShape::Tuple(1) => {
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                               ::serde::Deserialize::from_value(__inner)?)),"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __s = __inner.as_seq().ok_or_else(|| \
                               ::serde::Error::custom(\"{name}::{vn}: expected array\"))?;\
                             if __s.len() != {n} {{ return ::std::result::Result::Err(\
                               ::serde::Error::custom(\"{name}::{vn}: wrong arity\")); }}\
                             ::std::result::Result::Ok({name}::{vn}({items})) }},",
                            items = items.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let reads = gen_named_field_reads(fields, "__mm");
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __mm = __inner.as_map().ok_or_else(|| \
                               ::serde::Error::custom(\"{name}::{vn}: expected object\"))?;\
                             ::std::result::Result::Ok({name}::{vn} {{ {reads} }}) }},"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\
                   ::serde::Value::Str(__s) => match __s.as_str() {{\
                     {unit_arms}\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                       format!(\"unknown variant `{{}}` of {name}\", __other))),\
                   }},\
                   ::serde::Value::Map(__m) if __m.len() == 1 => {{\
                     let (__k, __inner) = &__m[0];\
                     match __k.as_str() {{\
                       {payload_arms}\
                       __other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"unknown variant `{{}}` of {name}\", __other))),\
                     }}\
                   }},\
                   __other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"{name}: expected externally tagged variant, got {{:?}}\", __other))),\
                 }}"
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {name}{ty_generics} {{\
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}
