//! Offline shim for `criterion`: a minimal wall-clock benchmark
//! harness with the API surface this workspace's benches use.
//!
//! Each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a short measurement window (scaled down by
//! `sample_size` requests). Reported output is the mean wall-clock
//! time per iteration — no statistics, outlier analysis, or HTML
//! reports. `CRITERION_QUICK=1` in the environment shortens the
//! measurement window further (used by CI smoke runs).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    measured: Duration,
    iterations: u64,
    window: Duration,
}

impl Bencher {
    /// Time `routine`, calling it repeatedly to fill the measurement
    /// window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        black_box(routine());
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.window {
                break;
            }
        }
        self.measured = start.elapsed();
        self.iterations = iters;
    }
}

fn default_window() -> Duration {
    if std::env::var_os("CRITERION_QUICK").is_some() {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(400)
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iterations == 0 {
        println!("{id:<50} (no iterations)");
        return;
    }
    let per_iter = b.measured.as_secs_f64() / b.iterations as f64;
    let time = if per_iter >= 1.0 {
        format!("{per_iter:.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} µs", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3e} elem/s)", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.3e} B/s)", n as f64 / per_iter)
        }
        None => String::new(),
    };
    println!(
        "{id:<50} time: {time}/iter over {} iters{extra}",
        b.iterations
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) {}

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.criterion.bencher();
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into_benchmark_id().id),
            &b,
            self.throughput,
        );
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.criterion.bencher();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Finish the group (no-op; reports print eagerly).
    pub fn finish(self) {}
}

/// Conversions accepted as benchmark ids.
pub trait IntoBenchmarkId {
    /// Convert to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            window: default_window(),
        }
    }
}

impl Criterion {
    fn bencher(&self) -> Bencher {
        Bencher {
            measured: Duration::ZERO,
            iterations: 0,
            window: self.window,
        }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = self.bencher();
        f(&mut b);
        report(id, &b, None);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_measures() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box("s".len())));
    }
}
