//! Offline shim for `proptest`: sampling-based property testing
//! without shrinking.
//!
//! Each `proptest!` test function runs `ProptestConfig::cases`
//! iterations. Inputs are drawn from [`Strategy`] values with a
//! deterministic RNG seeded from the test function's name, so failures
//! reproduce across runs. On failure the case index and message are
//! reported; unlike real proptest, the failing input is not shrunk.
//!
//! Supported strategy surface (what this workspace uses):
//! numeric ranges, [`Just`], tuples up to arity 6,
//! [`collection::vec`], [`bool::ANY`], and the
//! [`Strategy::prop_map`] / [`Strategy::prop_flat_map`] combinators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configure an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline CI fast while
        // still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draw one input.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated inputs.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a follow-up strategy from each input (dependent data).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

pub mod bool {
    //! Boolean strategies.
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// Fair-coin boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Draws `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Accepted size arguments for [`vec`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministically derive a case RNG from a test name.
#[doc(hidden)]
pub fn rng_for_test(name: &str) -> SmallRng {
    // FNV-1a over the test path keeps seeds stable across runs/machines.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

/// Assert a property inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "property failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "property failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if __a != __b {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($a),
                stringify!($b),
                __a,
                __b,
                file!(),
                line!()
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?} at {}:{}",
                stringify!($a),
                stringify!($b),
                __a,
                file!(),
                line!()
            ));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1, __config.cases, __msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude::*`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_flat_map(v in crate::collection::vec(0usize..5, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_just(pair in (Just(7u32), 0u32..3), flag in crate::bool::ANY) {
            prop_assert_eq!(pair.0, 7u32);
            prop_assert!(pair.1 < 3);
            let _ = flag;
        }
    }

    #[test]
    fn flat_map_composes() {
        let strat = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u64..10, n))
            .prop_map(|v| v.len());
        let mut rng = crate::rng_for_test("flat_map_composes");
        for _ in 0..50 {
            let len = Strategy::sample(&strat, &mut rng);
            assert!((1..4).contains(&len));
        }
    }
}
