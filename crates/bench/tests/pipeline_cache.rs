//! The pipeline's on-disk caching is load-bearing for every experiment
//! binary (binaries share datasets and trained models through it), so it
//! gets its own black-box test with isolated cache directories.
//!
//! This file contains a single test because it mutates process-wide
//! environment variables.

use chainnet_bench::{Pipeline, Scale};
use std::time::Instant;

#[test]
fn datasets_and_models_round_trip_through_the_cache() {
    let root = std::env::temp_dir().join(format!("chainnet_cache_test_{}", std::process::id()));
    let data_dir = root.join("data");
    let results_dir = root.join("results");
    std::env::set_var("CHAINNET_DATA_DIR", &data_dir);
    std::env::set_var("CHAINNET_RESULTS_DIR", &results_dir);

    let mut scale = Scale::smoke();
    // Shrink further: this test is about caching, not learning.
    scale.train_samples = 6;
    scale.test_i_samples = 3;
    scale.test_ii_samples = 2;
    scale.sim_horizon = 120.0;
    scale.epochs = 1;
    scale.hidden = 8;
    scale.iterations = 2;
    scale.gin_iterations = 2;
    let pipeline = Pipeline::new(scale);

    // First build simulates and trains...
    let datasets1 = pipeline.datasets();
    let model1 = pipeline.chainnet(&datasets1);
    assert!(data_dir.join("smoke_datasets.json").exists());
    assert!(results_dir.join("model_smoke_chainnet.json").exists());

    // ...the second build must load identical artifacts, fast.
    let t0 = Instant::now();
    let datasets2 = pipeline.datasets();
    let model2 = pipeline.chainnet(&datasets2);
    assert!(
        t0.elapsed().as_secs_f64() < 5.0,
        "cache load should be fast"
    );
    assert_eq!(datasets1, datasets2);
    assert_eq!(model1.model, model2.model);
    assert_eq!(model1.report, model2.report);

    // Corrupt the dataset cache: the pipeline must rebuild, not crash.
    std::fs::write(data_dir.join("smoke_datasets.json"), "{not json").unwrap();
    let datasets3 = pipeline.datasets();
    assert_eq!(datasets1, datasets3, "rebuild is seed-deterministic");

    std::env::remove_var("CHAINNET_DATA_DIR");
    std::env::remove_var("CHAINNET_RESULTS_DIR");
    let _ = std::fs::remove_dir_all(&root);
}
