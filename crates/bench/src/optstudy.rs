//! The surrogate-optimization study shared by Figs. 14 and 15 and the
//! case study: fixed-time and fixed-steps comparisons of GNN-based vs
//! simulation-based annealing search, with simulator post-processing of
//! GNN decisions (Section VIII-C5).

use chainnet_placement::evaluator::{loss_probability, relative_loss_reduction, Evaluator};
use chainnet_placement::problem::PlacementProblem;
use chainnet_placement::sa::{SaConfig, SaResult, SimulatedAnnealing};
use chainnet_qsim::model::Placement;
use chainnet_qsim::sim::{SimConfig, Simulator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Simulated ground-truth total throughput of a placement (used both by
/// the simulation-based search and to post-process GNN decisions).
pub fn ground_truth_throughput(
    problem: &PlacementProblem,
    placement: &Placement,
    horizon: f64,
    seed: u64,
) -> f64 {
    let model = problem
        .bind(placement.clone())
        .expect("placement is structurally valid");
    Simulator::new()
        .run(&model, &SimConfig::new(horizon, seed))
        .expect("simulation succeeds")
        .total_throughput
}

/// A best-so-far decision event on a global (cross-trial) axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalImprovement {
    /// Wall-clock seconds since the whole search started.
    pub time_secs: f64,
    /// Global step index across sequential trials.
    pub step: usize,
    /// Search-evaluator objective.
    pub estimated_objective: f64,
    /// The placement.
    pub placement: Placement,
}

/// Flatten a multi-trial result into global best-so-far improvements:
/// trials execute sequentially, and only strict global improvements are
/// kept.
pub fn global_improvements(result: &SaResult) -> Vec<GlobalImprovement> {
    let mut out = Vec::new();
    let mut best = result.initial_objective;
    let mut time_offset = 0.0;
    let mut step_offset = 0usize;
    for trial in &result.trials {
        for imp in &trial.improvements {
            if imp.objective > best {
                best = imp.objective;
                out.push(GlobalImprovement {
                    time_secs: time_offset + imp.elapsed_secs,
                    step: step_offset + imp.step,
                    estimated_objective: imp.objective,
                    placement: imp.placement.clone(),
                });
            }
        }
        time_offset += trial.elapsed_secs;
        step_offset += trial.steps.len();
    }
    out
}

/// A curve of loss probability / relative reduction against a grid
/// (time in seconds, or steps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// Grid coordinates (seconds or steps).
    pub grid: Vec<f64>,
    /// Simulated (post-processed) loss probability of the best decision
    /// available at each grid point.
    pub loss_prob: Vec<f64>,
    /// Simulated relative loss reduction at each grid point (Eq. 19).
    pub relative_reduction: Vec<f64>,
    /// Loss probability as *estimated by the search evaluator* (the
    /// dashed ChainNet curves of Fig. 14c-d).
    pub estimated_loss_prob: Vec<f64>,
}

/// Evaluate the best-so-far decision on a grid, re-simulating each
/// improvement exactly once.
pub fn curve_on_grid(
    problem: &PlacementProblem,
    initial: &Placement,
    improvements: &[GlobalImprovement],
    grid: &[f64],
    by_time: bool,
    eval_horizon: f64,
) -> Curve {
    let lam = problem.total_arrival_rate();
    // Simulate each distinct decision once.
    let mut cache: HashMap<Placement, f64> = HashMap::new();
    let initial_x = ground_truth_throughput(problem, initial, eval_horizon, 9_999);
    cache.insert(initial.clone(), initial_x);
    for imp in improvements {
        cache.entry(imp.placement.clone()).or_insert_with(|| {
            ground_truth_throughput(problem, &imp.placement, eval_horizon, 9_999)
        });
    }
    let mut loss_prob = Vec::with_capacity(grid.len());
    let mut rel = Vec::with_capacity(grid.len());
    let mut est = Vec::with_capacity(grid.len());
    for &g in grid {
        // Last improvement at or before this grid point.
        let at = improvements
            .iter()
            .take_while(|imp| {
                let coord = if by_time {
                    imp.time_secs
                } else {
                    imp.step as f64
                };
                coord <= g
            })
            .last();
        let (x_sim, x_est) = match at {
            Some(imp) => (cache[&imp.placement], imp.estimated_objective),
            None => (initial_x, initial_x),
        };
        loss_prob.push(loss_probability(lam, x_sim));
        rel.push(relative_loss_reduction(lam, initial_x, x_sim));
        est.push(loss_probability(lam, x_est.min(lam)));
    }
    Curve {
        grid: grid.to_vec(),
        loss_prob,
        relative_reduction: rel,
        estimated_loss_prob: est,
    }
}

/// Outcome of one method on one problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodOutcome {
    /// Evaluator/method label.
    pub method: String,
    /// Simulated total throughput of the final decision.
    pub final_throughput: f64,
    /// Simulated loss probability of the final decision.
    pub final_loss_prob: f64,
    /// Simulated relative loss reduction (Eq. 19).
    pub relative_reduction: f64,
    /// Wall-clock seconds spent searching.
    pub search_secs: f64,
    /// Objective evaluations consumed.
    pub evaluations: u64,
    /// Trials completed.
    pub trials: usize,
    /// The improvement trail (for curves).
    pub improvements: Vec<GlobalImprovement>,
    /// The full multi-trial result.
    pub sa_result: SaResult,
}

/// Run a fixed-trials search with `evaluator` and post-process the final
/// decision with the ground-truth simulator.
pub fn run_search(
    problem: &PlacementProblem,
    initial: &Placement,
    evaluator: &mut dyn Evaluator,
    sa_config: SaConfig,
    trials: usize,
    eval_horizon: f64,
) -> MethodOutcome {
    let method = evaluator.name().to_string();
    let sa = SimulatedAnnealing::new(sa_config);
    let result = sa.optimize(problem, initial, evaluator, trials);
    outcome_from_result(problem, initial, method, result, eval_horizon)
}

/// Run a fixed-wall-clock search (Section VIII-C4a) and post-process.
pub fn run_search_for(
    problem: &PlacementProblem,
    initial: &Placement,
    evaluator: &mut dyn Evaluator,
    sa_config: SaConfig,
    budget_secs: f64,
    eval_horizon: f64,
) -> MethodOutcome {
    let method = evaluator.name().to_string();
    let sa = SimulatedAnnealing::new(sa_config);
    let result = sa.optimize_for(problem, initial, evaluator, budget_secs);
    outcome_from_result(problem, initial, method, result, eval_horizon)
}

fn outcome_from_result(
    problem: &PlacementProblem,
    initial: &Placement,
    method: String,
    result: SaResult,
    eval_horizon: f64,
) -> MethodOutcome {
    let lam = problem.total_arrival_rate();
    let improvements = global_improvements(&result);
    // Post-process: simulate the final decision (paper Section VIII-C5
    // reports simulated values, not the GNN's own estimates).
    let final_x = ground_truth_throughput(problem, &result.best_placement, eval_horizon, 31_337);
    let initial_x = ground_truth_throughput(problem, initial, eval_horizon, 31_337);
    MethodOutcome {
        method,
        final_throughput: final_x,
        final_loss_prob: loss_probability(lam, final_x),
        relative_reduction: relative_loss_reduction(lam, initial_x, final_x),
        search_secs: result.elapsed_secs,
        evaluations: result.evaluations,
        trials: result.trials.len(),
        improvements,
        sa_result: result,
    }
}

/// Build an evenly spaced grid of `points` values over `(0, max]`.
pub fn linear_grid(max: f64, points: usize) -> Vec<f64> {
    (1..=points.max(1))
        .map(|i| max * i as f64 / points.max(1) as f64)
        .collect()
}

/// Average multiple curves sharing the same number of grid points
/// (grids may differ; the mean grid is reported).
///
/// # Panics
///
/// Panics if curves have differing lengths or the slice is empty.
pub fn mean_curve(curves: &[Curve]) -> Curve {
    assert!(!curves.is_empty(), "no curves to average");
    let n = curves[0].grid.len();
    assert!(
        curves.iter().all(|c| c.grid.len() == n),
        "curves must share grid length"
    );
    let m = curves.len() as f64;
    let mean_of = |f: &dyn Fn(&Curve) -> &Vec<f64>| -> Vec<f64> {
        (0..n)
            .map(|i| curves.iter().map(|c| f(c)[i]).sum::<f64>() / m)
            .collect()
    };
    Curve {
        grid: mean_of(&|c| &c.grid),
        loss_prob: mean_of(&|c| &c.loss_prob),
        relative_reduction: mean_of(&|c| &c.relative_reduction),
        estimated_loss_prob: mean_of(&|c| &c.estimated_loss_prob),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainnet_placement::evaluator::SimEvaluator;
    use chainnet_qsim::model::{Device, Fragment, ServiceChain};

    fn tiny_problem() -> PlacementProblem {
        let devices = vec![
            Device::new(4.0, 0.3).unwrap(),
            Device::new(40.0, 2.0).unwrap(),
            Device::new(40.0, 2.0).unwrap(),
        ];
        let chains = vec![ServiceChain::new(
            1.0,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
            ],
        )
        .unwrap()];
        PlacementProblem::new(devices, chains).unwrap()
    }

    #[test]
    fn run_search_post_processes_with_simulator() {
        let p = tiny_problem();
        let init = Placement::new(vec![vec![0, 1]]);
        let mut ev = SimEvaluator::new(SimConfig::new(400.0, 1));
        let cfg = SaConfig::paper_default().with_max_steps(15);
        let out = run_search(&p, &init, &mut ev, cfg, 2, 400.0);
        assert_eq!(out.trials, 2);
        assert!(out.final_loss_prob >= 0.0 && out.final_loss_prob <= 1.0);
        assert!(out.relative_reduction >= -0.1);
    }

    #[test]
    fn global_improvements_are_strictly_increasing() {
        let p = tiny_problem();
        let init = Placement::new(vec![vec![0, 1]]);
        let mut ev = SimEvaluator::new(SimConfig::new(300.0, 2));
        let cfg = SaConfig::paper_default().with_max_steps(20);
        let out = run_search(&p, &init, &mut ev, cfg, 3, 300.0);
        for w in out.improvements.windows(2) {
            assert!(w[1].estimated_objective > w[0].estimated_objective);
            assert!(w[1].step >= w[0].step);
        }
    }

    #[test]
    fn curve_is_monotone_in_estimates() {
        let p = tiny_problem();
        let init = Placement::new(vec![vec![0, 1]]);
        let mut ev = SimEvaluator::new(SimConfig::new(300.0, 3));
        let cfg = SaConfig::paper_default().with_max_steps(20);
        let out = run_search(&p, &init, &mut ev, cfg, 2, 300.0);
        let grid = linear_grid(40.0, 8);
        let curve = curve_on_grid(&p, &init, &out.improvements, &grid, false, 300.0);
        assert_eq!(curve.grid.len(), 8);
        for w in curve.estimated_loss_prob.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "estimated loss must not increase");
        }
    }

    #[test]
    fn mean_curve_averages() {
        let c1 = Curve {
            grid: vec![1.0, 2.0],
            loss_prob: vec![0.4, 0.2],
            relative_reduction: vec![0.1, 0.5],
            estimated_loss_prob: vec![0.4, 0.2],
        };
        let c2 = Curve {
            grid: vec![1.0, 2.0],
            loss_prob: vec![0.2, 0.0],
            relative_reduction: vec![0.3, 0.7],
            estimated_loss_prob: vec![0.2, 0.0],
        };
        let m = mean_curve(&[c1, c2]);
        for (a, b) in m.loss_prob.iter().zip([0.3, 0.1]) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in m.relative_reduction.iter().zip([0.2, 0.6]) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_grid_spans_range() {
        let g = linear_grid(10.0, 5);
        assert_eq!(g, vec![2.0, 4.0, 6.0, 8.0, 10.0]);
    }
}
