//! Shared experiment pipeline: dataset caching, model training with
//! on-disk caching, and evaluation helpers reused by every table/figure
//! binary.

use crate::scale::Scale;
use chainnet::ablation::AblationVariant;
use chainnet::baselines::{BaselineGnn, BaselineKind};
use chainnet::config::FeatureMode;
use chainnet::data::LabeledGraph;
use chainnet::metrics::ApeCollector;
use chainnet::model::{ChainNet, Surrogate};
use chainnet::train::{TrainReport, Trainer};
use chainnet_datagen::dataset::{generate_raw_dataset, to_labeled, DatasetConfig, RawSample};
use chainnet_datagen::typesets::NetworkParams;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// The three datasets of Section VIII-A: Type I train, Type I test,
/// Type II test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Datasets {
    /// Type I training samples.
    pub train_i: Vec<RawSample>,
    /// Type I held-out test samples.
    pub test_i: Vec<RawSample>,
    /// Type II (larger, out-of-distribution) test samples.
    pub test_ii: Vec<RawSample>,
}

impl Datasets {
    /// Labeled views under one feature mode.
    pub fn labeled(
        &self,
        mode: FeatureMode,
    ) -> (Vec<LabeledGraph>, Vec<LabeledGraph>, Vec<LabeledGraph>) {
        (
            to_labeled(&self.train_i, mode),
            to_labeled(&self.test_i, mode),
            to_labeled(&self.test_ii, mode),
        )
    }
}

/// A trained model together with its training history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trained<M> {
    /// The trained model.
    pub model: M,
    /// Per-epoch loss history.
    pub report: TrainReport,
    /// Wall-clock training seconds.
    pub train_secs: f64,
}

/// Directory helpers and cached artifacts for one experiment scale.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The active scale.
    pub scale: Scale,
}

impl Pipeline {
    /// Create a pipeline from the environment scale.
    pub fn from_env() -> Self {
        Self {
            scale: Scale::from_env(),
        }
    }

    /// Create a pipeline at an explicit scale.
    pub fn new(scale: Scale) -> Self {
        Self { scale }
    }

    /// Directory for cached datasets (`CHAINNET_DATA_DIR`, default
    /// `./data`).
    pub fn data_dir(&self) -> PathBuf {
        let dir = std::env::var("CHAINNET_DATA_DIR").unwrap_or_else(|_| "data".into());
        let p = PathBuf::from(dir);
        std::fs::create_dir_all(&p).expect("create data dir");
        p
    }

    /// Directory for experiment outputs (`CHAINNET_RESULTS_DIR`, default
    /// `./results`).
    pub fn results_dir(&self) -> PathBuf {
        let dir = std::env::var("CHAINNET_RESULTS_DIR").unwrap_or_else(|_| "results".into());
        let p = PathBuf::from(dir);
        std::fs::create_dir_all(&p).expect("create results dir");
        p
    }

    fn cached<T: Serialize + DeserializeOwned>(
        &self,
        path: &PathBuf,
        build: impl FnOnce() -> T,
    ) -> T {
        if let Ok(json) = std::fs::read_to_string(path) {
            if let Ok(v) = serde_json::from_str(&json) {
                eprintln!("[pipeline] loaded cache {}", path.display());
                return v;
            }
            eprintln!("[pipeline] stale cache {}, rebuilding", path.display());
        }
        let v = build();
        let json = serde_json::to_string(&v).expect("serialize cache");
        // Atomic, so a crash mid-write never leaves a torn cache that a
        // later run would half-parse.
        chainnet_ckpt::atomic_write(path, json.as_bytes()).expect("write cache");
        v
    }

    /// Generate (or load cached) datasets for this scale.
    pub fn datasets(&self) -> Datasets {
        let path = self
            .data_dir()
            .join(format!("{}_datasets.json", self.scale.name));
        self.cached(&path, || {
            let s = &self.scale;
            eprintln!(
                "[pipeline] simulating {} + {} Type I and {} Type II samples (horizon {})",
                s.train_samples, s.test_i_samples, s.test_ii_samples, s.sim_horizon
            );
            let t0 = Instant::now();
            let train_i = generate_raw_dataset(
                NetworkParams::type_i(),
                &DatasetConfig::new(s.train_samples, 1_000).with_horizon(s.sim_horizon),
            )
            .expect("generate train I");
            let test_i = generate_raw_dataset(
                NetworkParams::type_i(),
                &DatasetConfig::new(s.test_i_samples, 2_000_000).with_horizon(s.sim_horizon),
            )
            .expect("generate test I");
            let test_ii = generate_raw_dataset(
                NetworkParams::type_ii(),
                &DatasetConfig::new(s.test_ii_samples, 3_000_000).with_horizon(s.sim_horizon),
            )
            .expect("generate test II");
            eprintln!(
                "[pipeline] dataset generation took {:.1}s",
                t0.elapsed().as_secs_f64()
            );
            Datasets {
                train_i,
                test_i,
                test_ii,
            }
        })
    }

    fn train_generic<M: Surrogate + Serialize + DeserializeOwned>(
        &self,
        cache_name: &str,
        datasets: &Datasets,
        build: impl FnOnce() -> M,
        with_validation: bool,
    ) -> Trained<M> {
        let path = self
            .results_dir()
            .join(format!("model_{}_{}.json", self.scale.name, cache_name));
        self.cached(&path, || {
            let mut model = build();
            let mode = model.config().feature_mode;
            let train = to_labeled(&datasets.train_i, mode);
            let val = if with_validation {
                Some(to_labeled(&datasets.test_ii, mode))
            } else {
                None
            };
            eprintln!(
                "[pipeline] training {} on {} samples x {} epochs",
                model.name(),
                train.len(),
                self.scale.epochs
            );
            let t0 = Instant::now();
            let trainer = Trainer::new(self.scale.train_config());
            let report = trainer.train(&mut model, &train, val.as_deref());
            let train_secs = t0.elapsed().as_secs_f64();
            eprintln!(
                "[pipeline] {} trained in {:.1}s (final loss {:.5})",
                model.name(),
                train_secs,
                report.final_train_loss().unwrap_or(f64::NAN)
            );
            Trained {
                model,
                report,
                train_secs,
            }
        })
    }

    /// Train (or load) the full ChainNet.
    pub fn chainnet(&self, datasets: &Datasets) -> Trained<ChainNet> {
        self.train_generic(
            "chainnet",
            datasets,
            || ChainNet::new(self.scale.model_config(), 42),
            false,
        )
    }

    /// Train (or load) a baseline. `starred` uses original (raw) features
    /// — the `GIN*` / `GAT*` rows of Table V.
    pub fn baseline(
        &self,
        kind: BaselineKind,
        starred: bool,
        datasets: &Datasets,
    ) -> Trained<BaselineGnn> {
        let base = match kind {
            BaselineKind::Gin => self.scale.gin_config(),
            BaselineKind::Gat => self.scale.model_config(),
        };
        let cfg = if starred {
            base.with_feature_mode(FeatureMode::Original)
        } else {
            base
        };
        let name = match (kind, starred) {
            (BaselineKind::Gin, false) => "gin",
            (BaselineKind::Gin, true) => "gin_star",
            (BaselineKind::Gat, false) => "gat",
            (BaselineKind::Gat, true) => "gat_star",
        };
        self.train_generic(
            name,
            datasets,
            || {
                let label = match (kind, starred) {
                    (BaselineKind::Gin, false) => "GIN",
                    (BaselineKind::Gin, true) => "GIN*",
                    (BaselineKind::Gat, false) => "GAT",
                    (BaselineKind::Gat, true) => "GAT*",
                };
                BaselineGnn::new(kind, cfg, 42).with_name(label)
            },
            false,
        )
    }

    /// Train (or load) an ablation variant, tracking the Type II
    /// validation loss per epoch (Fig. 13 curves).
    pub fn ablation(&self, variant: AblationVariant, datasets: &Datasets) -> Trained<ChainNet> {
        let cache = match variant {
            AblationVariant::Full => "abl_full",
            AblationVariant::Alpha => "abl_alpha",
            AblationVariant::Beta => "abl_beta",
            AblationVariant::Delta => "abl_delta",
        };
        self.train_generic(
            cache,
            datasets,
            || variant.build(self.scale.model_config(), 42),
            true,
        )
    }

    /// Evaluate a model's APEs on raw samples.
    pub fn evaluate<M: Surrogate + ?Sized>(
        &self,
        model: &M,
        samples: &[RawSample],
    ) -> ApeCollector {
        let mode = model.config().feature_mode;
        let labeled = to_labeled(samples, mode);
        Trainer::new(self.scale.train_config()).evaluate_ape(model, &labeled)
    }

    /// Trait-object form of [`Pipeline::evaluate`].
    pub fn evaluate_dyn(&self, model: &dyn Surrogate, samples: &[RawSample]) -> ApeCollector {
        self.evaluate(model, samples)
    }

    /// Write a JSON result artifact under the results directory.
    pub fn write_result<T: Serialize>(&self, name: &str, value: &T) {
        let path = self
            .results_dir()
            .join(format!("{}_{}.json", self.scale.name, name));
        let json = serde_json::to_string_pretty(value).expect("serialize result");
        chainnet_ckpt::atomic_write(&path, json.as_bytes()).expect("write result");
        eprintln!("[pipeline] wrote {}", path.display());
    }
}

/// Render an ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "demo",
            &["model", "mape"],
            &[vec!["ChainNet".into(), "0.037".into()]],
        );
    }
}
