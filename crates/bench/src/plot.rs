//! Minimal ASCII line charts so the figure binaries can show curve
//! *shapes* directly in the terminal (the JSON artifacts carry the exact
//! numbers for external plotting).

/// Render one or more series as an ASCII chart.
///
/// All series share the x grid implicitly (indices); y is auto-scaled to
/// the joint min/max. Each series draws with its own glyph, assigned from
/// `#*o+x%@` in order.
///
/// # Examples
///
/// ```
/// use chainnet_bench::plot::ascii_chart;
///
/// let chart = ascii_chart(
///     "loss over steps",
///     &[("sim", &[0.5, 0.4, 0.35][..]), ("gnn", &[0.5, 0.3, 0.2][..])],
///     40,
///     8,
/// );
/// assert!(chart.contains("loss over steps"));
/// ```
pub fn ascii_chart(title: &str, series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    const GLYPHS: [char; 7] = ['#', '*', 'o', '+', 'x', '%', '@'];
    let width = width.max(8);
    let height = height.max(3);

    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .filter(|y| y.is_finite())
        .collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let y_min = all.iter().copied().fold(f64::INFINITY, f64::min);
    let y_max = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (y_max - y_min).max(1e-12);

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        if ys.is_empty() {
            continue;
        }
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (i, &y) in ys.iter().enumerate() {
            if !y.is_finite() {
                continue;
            }
            let x = if ys.len() <= 1 {
                0
            } else {
                i * (width - 1) / (ys.len() - 1)
            };
            let fy = (y - y_min) / span;
            let row = height - 1 - ((fy * (height - 1) as f64).round() as usize).min(height - 1);
            grid[row][x] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{y_max:>9.3} |")
        } else if r == height - 1 {
            format!("{y_min:>9.3} |")
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(width)));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, (name, _))| format!("{} {}", GLYPHS[si % GLYPHS.len()], name))
        .collect();
    out.push_str(&format!("{:>11}{}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_extremes_and_legend() {
        let chart = ascii_chart("t", &[("a", &[0.0, 1.0][..])], 20, 5);
        assert!(chart.contains("1.000"));
        assert!(chart.contains("0.000"));
        assert!(chart.contains("# a"));
    }

    #[test]
    fn handles_empty_series() {
        let chart = ascii_chart("t", &[("a", &[][..])], 20, 5);
        assert!(chart.contains("no data"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let chart = ascii_chart("t", &[("a", &[0.5, 0.5, 0.5][..])], 20, 5);
        assert!(chart.contains('#'));
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let chart = ascii_chart(
            "t",
            &[("a", &[0.0, 1.0][..]), ("b", &[1.0, 0.0][..])],
            20,
            6,
        );
        assert!(chart.contains('#'));
        assert!(chart.contains('*'));
    }

    #[test]
    fn nan_points_are_skipped() {
        let chart = ascii_chart("t", &[("a", &[0.1, f64::NAN, 0.3][..])], 20, 5);
        assert!(chart.contains('#'));
    }
}
