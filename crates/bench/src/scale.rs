//! Experiment scales: the paper's full protocol is a week of simulation
//! plus GPU training; every harness binary therefore supports three
//! scales selected by the `CHAINNET_SCALE` environment variable
//! (`smoke`, `default`, `paper`).

use chainnet::config::{ModelConfig, TrainConfig};
use serde::{Deserialize, Serialize};

/// All scale-dependent experiment knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Scale name (used in cache file names).
    pub name: String,
    /// Type I training samples.
    pub train_samples: usize,
    /// Type I test samples.
    pub test_i_samples: usize,
    /// Type II test samples.
    pub test_ii_samples: usize,
    /// Simulation horizon for dataset labeling.
    pub sim_horizon: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Hidden width of all models.
    pub hidden: usize,
    /// Message-passing iterations for ChainNet / GAT.
    pub iterations: usize,
    /// Layers for GIN.
    pub gin_iterations: usize,
    /// Placement problems per device count (Fig. 14/15).
    pub sa_problems: usize,
    /// Device counts swept in the optimization study.
    pub device_counts: Vec<usize>,
    /// SA trials in the fixed-steps study.
    pub sa_trials: usize,
    /// SA steps per trial.
    pub sa_steps: usize,
    /// Simulation horizon used inside the simulation-based search and for
    /// post-processing GNN decisions.
    pub eval_sim_horizon: f64,
}

impl Scale {
    /// Minutes-long scale used by integration tests and CI.
    pub fn smoke() -> Self {
        Self {
            name: "smoke".into(),
            train_samples: 24,
            test_i_samples: 12,
            test_ii_samples: 8,
            sim_horizon: 300.0,
            epochs: 4,
            batch_size: 8,
            hidden: 16,
            iterations: 3,
            gin_iterations: 4,
            sa_problems: 2,
            device_counts: vec![8],
            sa_trials: 2,
            sa_steps: 10,
            eval_sim_horizon: 200.0,
        }
    }

    /// The default laptop-scale protocol (tens of minutes end to end):
    /// smaller dataset and hidden width, same structure as the paper.
    pub fn default_scale() -> Self {
        Self {
            name: "default".into(),
            train_samples: 400,
            test_i_samples: 150,
            test_ii_samples: 80,
            sim_horizon: 1_500.0,
            epochs: 40,
            batch_size: 32,
            hidden: 32,
            iterations: 4,
            gin_iterations: 6,
            sa_problems: 6,
            device_counts: vec![20, 40],
            sa_trials: 5,
            sa_steps: 60,
            eval_sim_horizon: 4_000.0,
        }
    }

    /// The paper's full protocol (Table III/IV/VII parameters verbatim).
    /// Requires cluster-scale compute.
    pub fn paper() -> Self {
        Self {
            name: "paper".into(),
            train_samples: 50_000,
            test_i_samples: 10_000,
            test_ii_samples: 10_000,
            sim_horizon: 20_000.0,
            epochs: 200,
            batch_size: 128,
            hidden: 64,
            iterations: 8,
            gin_iterations: 12,
            sa_problems: 25, // per device count: 25 x 4 = 100 problems
            device_counts: vec![20, 40, 80, 120],
            sa_trials: 30,
            sa_steps: 100,
            eval_sim_horizon: 5_000.0,
        }
    }

    /// Read the scale from `CHAINNET_SCALE` (default `default`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown scale name, listing the valid ones.
    pub fn from_env() -> Self {
        match std::env::var("CHAINNET_SCALE").as_deref() {
            Ok("smoke") => Self::smoke(),
            Ok("paper") => Self::paper(),
            Ok("default") | Err(_) => Self::default_scale(),
            Ok(other) => panic!("unknown CHAINNET_SCALE `{other}` (smoke|default|paper)"),
        }
    }

    /// The model configuration for ChainNet / GAT at this scale.
    pub fn model_config(&self) -> ModelConfig {
        let mut cfg = ModelConfig::paper_chainnet();
        cfg.hidden = self.hidden;
        cfg.iterations = self.iterations;
        cfg
    }

    /// The model configuration for GIN at this scale.
    pub fn gin_config(&self) -> ModelConfig {
        let mut cfg = self.model_config();
        cfg.iterations = self.gin_iterations;
        cfg
    }

    /// The training configuration at this scale.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            learning_rate: 1e-3,
            lr_decay: 0.9,
            lr_decay_period: 10,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_tables() {
        let s = Scale::paper();
        assert_eq!(s.train_samples, 50_000);
        assert_eq!(s.test_i_samples, 10_000);
        assert_eq!(s.test_ii_samples, 10_000);
        assert_eq!(s.hidden, 64);
        assert_eq!(s.iterations, 8);
        assert_eq!(s.gin_iterations, 12);
        assert_eq!(s.epochs, 200);
        assert_eq!(s.batch_size, 128);
        assert_eq!(s.sa_steps, 100);
        assert_eq!(s.sa_trials, 30);
        assert_eq!(s.sa_problems * s.device_counts.len(), 100);
    }

    #[test]
    fn smoke_is_smaller_than_default() {
        let s = Scale::smoke();
        let d = Scale::default_scale();
        assert!(s.train_samples < d.train_samples);
        assert!(s.epochs < d.epochs);
    }

    #[test]
    fn model_configs_differ_only_in_layers() {
        let s = Scale::default_scale();
        let c = s.model_config();
        let g = s.gin_config();
        assert_eq!(c.hidden, g.hidden);
        assert!(g.iterations > c.iterations);
    }
}
