#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

//! Experiment harness for the ChainNet reproduction: one binary per table
//! and figure of the paper's evaluation section, plus Criterion
//! performance benches.
//!
//! Every binary honours the `CHAINNET_SCALE` environment variable
//! (`smoke` | `default` | `paper`) — see [`scale::Scale`] — and caches
//! datasets under `./data` and trained models / results under
//! `./results`.
//!
//! | binary       | reproduces            |
//! |--------------|-----------------------|
//! | `table5`     | Table V (throughput APE percentiles)          |
//! | `fig11`      | Fig. 11 (MAPE + APE distributions)            |
//! | `fig12`      | Fig. 12 (APE by #nodes / #chains)             |
//! | `table6`     | Table VI (ablation MAPE)                      |
//! | `fig13`      | Fig. 13 (train/validation loss curves)        |
//! | `fig14`      | Fig. 14 (SA trajectories, fixed-time search)  |
//! | `fig15`      | Fig. 15 (fixed-steps search)                  |
//! | `case_study` | Section VIII-D                                |

#![warn(missing_docs)]

pub mod optstudy;
pub mod pipeline;
pub mod plot;
pub mod scale;

pub use pipeline::{print_table, Datasets, Pipeline, Trained};
pub use scale::Scale;
