//! Reproduces **Fig. 11**: MAPE bars for throughput and latency on the
//! Type I and Type II test sets (a–b) and the APE distributions (c–d),
//! printed as percentile tables / CDF points for ChainNet, GIN and GAT.

use chainnet::baselines::BaselineKind;
use chainnet::metrics::ApeSummary;
use chainnet::model::Surrogate;
use chainnet_bench::{print_table, Pipeline};
use chainnet_qsim::stats::percentile;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ModelResult {
    model: String,
    tput_i: ApeSummary,
    lat_i: ApeSummary,
    tput_ii: ApeSummary,
    lat_ii: ApeSummary,
    /// APE CDF sample points (q, value) on Type II throughput.
    cdf_tput_ii: Vec<(f64, f64)>,
}

fn main() {
    let pipeline = Pipeline::from_env();
    eprintln!("[fig11] scale = {}", pipeline.scale.name);
    let datasets = pipeline.datasets();

    let chainnet = pipeline.chainnet(&datasets);
    let gin = pipeline.baseline(BaselineKind::Gin, false, &datasets);
    let gat = pipeline.baseline(BaselineKind::Gat, false, &datasets);
    let models: Vec<&dyn Surrogate> = vec![&chainnet.model, &gin.model, &gat.model];

    let qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99];
    let mut results = Vec::new();
    for model in models {
        let apes_i = pipeline.evaluate_dyn(model, &datasets.test_i);
        let apes_ii = pipeline.evaluate_dyn(model, &datasets.test_ii);
        let (ti, li) = apes_i.summaries();
        let (tii, lii) = apes_ii.summaries();
        let cdf = qs
            .iter()
            .map(|&q| (q, percentile(&apes_ii.throughput, q).unwrap_or(f64::NAN)))
            .collect();
        results.push(ModelResult {
            model: model.name().to_string(),
            tput_i: ti.unwrap(),
            lat_i: li.unwrap(),
            tput_ii: tii.unwrap(),
            lat_ii: lii.unwrap(),
            cdf_tput_ii: cdf,
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{:.3}", r.tput_i.mape),
                format!("{:.3}", r.lat_i.mape),
                format!("{:.3}", r.tput_ii.mape),
                format!("{:.3}", r.lat_ii.mape),
            ]
        })
        .collect();
    print_table(
        "Fig 11a-b: MAPE (fractions) on Type I and Type II test sets",
        &["model", "I:tput", "I:lat", "II:tput", "II:lat"],
        &rows,
    );

    let cdf_rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let mut row = vec![r.model.clone()];
            row.extend(r.cdf_tput_ii.iter().map(|(_, v)| format!("{v:.3}")));
            row
        })
        .collect();
    let headers: Vec<String> = std::iter::once("model".to_string())
        .chain(qs.iter().map(|q| format!("q{:.0}", q * 100.0)))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Fig 11d: Type II throughput APE distribution (percentile points)",
        &headers_ref,
        &cdf_rows,
    );

    // Paper's headline: ChainNet cuts error by ~48% (tput) / ~64% (lat)
    // vs the best baseline.
    let cn = &results[0];
    let best_tput = results[1..]
        .iter()
        .map(|r| r.tput_ii.mape)
        .fold(f64::INFINITY, f64::min);
    let best_lat = results[1..]
        .iter()
        .map(|r| r.lat_ii.mape)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nType II error reduction vs best baseline: throughput {:.1}%, latency {:.1}%",
        100.0 * (1.0 - cn.tput_ii.mape / best_tput),
        100.0 * (1.0 - cn.lat_ii.mape / best_lat)
    );
    pipeline.write_result("fig11", &results);
}
