//! Reproduces **Table VI**: MAPE of ChainNet and its ablated variants
//! (α: no Table II modifications, β: no output modification, δ: no input
//! modification) on the Type I and Type II test sets.

use chainnet::ablation::AblationVariant;
use chainnet::metrics::ApeSummary;
use chainnet_bench::{print_table, Pipeline};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    variant: String,
    tput_i: ApeSummary,
    lat_i: ApeSummary,
    tput_ii: ApeSummary,
    lat_ii: ApeSummary,
}

fn main() {
    let pipeline = Pipeline::from_env();
    eprintln!("[table6] scale = {}", pipeline.scale.name);
    let datasets = pipeline.datasets();

    let mut rows = Vec::new();
    for variant in AblationVariant::ALL {
        let trained = pipeline.ablation(variant, &datasets);
        let apes_i = pipeline.evaluate(&trained.model, &datasets.test_i);
        let apes_ii = pipeline.evaluate(&trained.model, &datasets.test_ii);
        let (ti, li) = apes_i.summaries();
        let (tii, lii) = apes_ii.summaries();
        rows.push(Row {
            variant: variant.label().to_string(),
            tput_i: ti.unwrap(),
            lat_i: li.unwrap(),
            tput_ii: tii.unwrap(),
            lat_ii: lii.unwrap(),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.3}", r.tput_i.mape),
                format!("{:.3}", r.lat_i.mape),
                format!("{:.3}", r.tput_ii.mape),
                format!("{:.3}", r.lat_ii.mape),
            ]
        })
        .collect();
    print_table(
        "Table VI: MAPE of ChainNet and ablated variants",
        &["model", "I:tput", "I:lat", "II:tput", "II:lat"],
        &table,
    );

    // Shape check: the full design generalizes best to Type II.
    let full = &rows[0];
    for r in &rows[1..] {
        println!(
            "{}: II:tput {:.3} (full {:.3}) -> {}",
            r.variant,
            r.tput_ii.mape,
            full.tput_ii.mape,
            if full.tput_ii.mape <= r.tput_ii.mape + 1e-9 {
                "full better/equal"
            } else {
                "ABLATION BETTER"
            }
        );
    }
    pipeline.write_result("table6", &rows);
}
