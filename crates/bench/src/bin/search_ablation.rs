//! Design-choice ablation for the optimizer (not a paper figure):
//! (i) the search strategy — simulated annealing vs greedy hill climbing
//! vs random walk over the same move neighborhood — justifying the
//! paper's SA choice, and (ii) the evaluator class — trained ChainNet vs
//! the zero-training analytic decomposition approximation vs ground-truth
//! simulation.

use chainnet_bench::optstudy::ground_truth_throughput;
use chainnet_bench::{print_table, Pipeline};
use chainnet_datagen::problems::{ProblemGenerator, ProblemParams};
use chainnet_placement::evaluator::{
    loss_probability, ApproxEvaluator, GnnEvaluator, SimEvaluator,
};
use chainnet_placement::sa::{SaConfig, SimulatedAnnealing};
use chainnet_placement::strategies::{HillClimb, RandomSearch};
use chainnet_qsim::sim::SimConfig;
use serde::Serialize;

#[derive(Debug, Serialize, Clone)]
struct AblationRow {
    variant: String,
    mean_loss_prob: f64,
    mean_secs: f64,
}

fn main() {
    let pipeline = Pipeline::from_env();
    let scale = pipeline.scale.clone();
    eprintln!("[search_ablation] scale = {}", scale.name);
    let datasets = pipeline.datasets();
    let chainnet = pipeline.chainnet(&datasets);

    let sa_cfg = SaConfig::paper_default().with_max_steps(scale.sa_steps);
    let eval_h = scale.eval_sim_horizon;
    let gen = ProblemGenerator::new(ProblemParams::paper_default(scale.device_counts[0]));

    let mut acc: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    let record = |acc: &mut Vec<(String, Vec<f64>, Vec<f64>)>, name: &str, loss: f64, secs: f64| {
        if let Some(e) = acc.iter_mut().find(|e| e.0 == name) {
            e.1.push(loss);
            e.2.push(secs);
        } else {
            acc.push((name.to_string(), vec![loss], vec![secs]));
        }
    };

    for s in 0..scale.sa_problems {
        let problem = gen.generate(4_000 + s as u64).expect("problem");
        let initial = problem.initial_placement().expect("initial");
        let lam = problem.total_arrival_rate();
        let x0 = ground_truth_throughput(&problem, &initial, eval_h, 555);
        if loss_probability(lam, x0) < 0.02 {
            continue;
        }

        // --- Strategy ablation with the ChainNet evaluator.
        let sa = SimulatedAnnealing::new(sa_cfg.with_seed(s as u64));
        let t0 = std::time::Instant::now();
        let mut ev = GnnEvaluator::new(chainnet.model.clone());
        let res = sa.optimize(&problem, &initial, &mut ev, 1);
        let x = ground_truth_throughput(&problem, &res.best_placement, eval_h, 777);
        record(
            &mut acc,
            "SA + ChainNet",
            loss_probability(lam, x),
            t0.elapsed().as_secs_f64(),
        );

        // Batched neighborhood driver: same surrogate, but each step
        // scores a whole candidate set in one batched forward.
        let t0 = std::time::Instant::now();
        let mut ev = GnnEvaluator::new(chainnet.model.clone());
        let res = sa.optimize_neighborhood(&problem, &initial, &mut ev, 1, 8);
        let x = ground_truth_throughput(&problem, &res.best_placement, eval_h, 777);
        record(
            &mut acc,
            "SA(nbhd k=8) + ChainNet",
            loss_probability(lam, x),
            t0.elapsed().as_secs_f64(),
        );

        let t0 = std::time::Instant::now();
        let mut ev = GnnEvaluator::new(chainnet.model.clone());
        let hc = HillClimb::new(sa_cfg.with_seed(s as u64));
        let res = hc.optimize(&problem, &initial, &mut ev);
        let x = ground_truth_throughput(&problem, &res.best_placement, eval_h, 777);
        record(
            &mut acc,
            "HillClimb + ChainNet",
            loss_probability(lam, x),
            t0.elapsed().as_secs_f64(),
        );

        let t0 = std::time::Instant::now();
        let mut ev = GnnEvaluator::new(chainnet.model.clone());
        let rs = RandomSearch::new(sa_cfg.with_seed(s as u64));
        let res = rs.optimize(&problem, &initial, &mut ev);
        let x = ground_truth_throughput(&problem, &res.best_placement, eval_h, 777);
        record(
            &mut acc,
            "RandomWalk + ChainNet",
            loss_probability(lam, x),
            t0.elapsed().as_secs_f64(),
        );

        // --- Evaluator ablation with SA.
        let t0 = std::time::Instant::now();
        let mut ev = ApproxEvaluator::default();
        let res = sa.optimize(&problem, &initial, &mut ev, 1);
        let x = ground_truth_throughput(&problem, &res.best_placement, eval_h, 777);
        record(
            &mut acc,
            "SA + decomposition",
            loss_probability(lam, x),
            t0.elapsed().as_secs_f64(),
        );

        let t0 = std::time::Instant::now();
        let mut ev = SimEvaluator::new(SimConfig::new(eval_h, 99));
        let res = sa.optimize(&problem, &initial, &mut ev, 1);
        let x = ground_truth_throughput(&problem, &res.best_placement, eval_h, 777);
        record(
            &mut acc,
            "SA + simulation",
            loss_probability(lam, x),
            t0.elapsed().as_secs_f64(),
        );

        record(
            &mut acc,
            "initial placement",
            loss_probability(lam, x0),
            0.0,
        );
    }

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let rows: Vec<AblationRow> = acc
        .iter()
        .map(|(name, losses, secs)| AblationRow {
            variant: name.clone(),
            mean_loss_prob: mean(losses),
            mean_secs: mean(secs),
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.3}", r.mean_loss_prob),
                format!("{:.2}", r.mean_secs),
            ]
        })
        .collect();
    print_table(
        "Search design ablation: mean simulated loss probability of the final decision",
        &["variant", "mean loss", "mean secs"],
        &table,
    );
    pipeline.write_result("search_ablation", &rows);
}
