//! PR-10 training-throughput report: measures the per-graph f64
//! training loop against the padded batched-tape path (f64 and f32),
//! plus the f32-vs-f64 blocked matmul kernel, and emits a
//! machine-readable `BENCH_PR10.json` continuing the PR-5 trajectory
//! (events/sec, GFLOP/s, evals/sec, and the new samples/sec and
//! epochs/sec rows).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p chainnet-bench --bin train_report -- \
//!     [--quick] [--out <path>] [--pr5 <path>]
//! ```
//!
//! `--quick` shrinks the workload (CI smoke mode). `--pr5` points at a
//! prior `BENCH_PR5.json`; its event-loop, matmul, and SA numbers are
//! embedded as the `trajectory` section so one file tells the whole
//! perf story. Like `hotpath_report`, CI runs this record-only — the
//! committed `BENCH_PR10.json` is the reference measurement.

use chainnet::config::{ModelConfig, TrainConfig};
use chainnet::data::{ChainTargets, LabeledGraph};
use chainnet::graph::PlacementGraph;
use chainnet::model::ChainNet;
use chainnet::train::Trainer;
use chainnet_neural::scalar::Scalar;
use chainnet_neural::tensor::Tensor;
use chainnet_obs::Obs;
use chainnet_qsim::model::{Device, Fragment, Placement, ServiceChain, SystemModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Heterogeneous synthetic dataset: mixed chain counts, chain lengths,
/// and device sharing, so batches pack graphs of different shapes (the
/// realistic case for the padded path).
fn dataset(n: usize) -> Vec<LabeledGraph> {
    let placements = [
        vec![vec![0, 1], vec![1, 2, 0]],
        vec![vec![1, 0, 2]],
        vec![vec![0, 1], vec![2, 1], vec![1, 1, 0]],
        vec![vec![2, 2]],
    ];
    (0..n)
        .map(|s| {
            let placement = placements[s % placements.len()].clone();
            let devices = vec![
                Device::new(20.0, 1.0).unwrap(),
                Device::new(20.0, 2.0).unwrap(),
                Device::new(20.0, 1.5).unwrap(),
            ];
            let chains = placement
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let frags = (0..p.len())
                        .map(|j| Fragment::new(1.0, 1.0 + 0.3 * j as f64).unwrap())
                        .collect();
                    ServiceChain::new(0.3 + 0.05 * ((s + i) % 7) as f64, frags).unwrap()
                })
                .collect();
            let model = SystemModel::new(devices, chains, Placement::new(placement)).unwrap();
            let graph = PlacementGraph::from_model(&model, ModelConfig::small().feature_mode);
            let targets = graph
                .chains
                .iter()
                .map(|c| ChainTargets {
                    throughput: c.arrival_rate * 0.8,
                    latency: c.total_processing * 1.6,
                })
                .collect();
            LabeledGraph { graph, targets }
        })
        .collect()
}

/// (samples/sec, epochs/sec, final loss) of a full training run.
fn measure_train(
    data: &[LabeledGraph],
    epochs: usize,
    run: impl FnOnce(&Trainer, &mut ChainNet, &[LabeledGraph]) -> f64,
) -> (f64, f64, f64) {
    let trainer = Trainer::new(TrainConfig {
        epochs,
        batch_size: 32,
        learning_rate: 1e-3,
        lr_decay: 0.9,
        lr_decay_period: 10,
        seed: 5,
    });
    // The CLI's default training shape (hidden 32, 4 iterations) — the
    // workload the throughput claim is about.
    let mut cfg = ModelConfig::paper_chainnet();
    cfg.hidden = 32;
    cfg.iterations = 4;
    let mut model = ChainNet::new(cfg, 3);
    let start = Instant::now();
    let final_loss = run(&trainer, &mut model, data);
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    assert!(final_loss.is_finite());
    (
        (data.len() * epochs) as f64 / secs,
        epochs as f64 / secs,
        final_loss,
    )
}

/// GFLOP/s of the blocked kernel in a given dtype, plus the single-call
/// wall time in nanoseconds (the `neural.matmul_ns` /
/// `neural.matmul_f32_ns` gauges).
fn measure_matmul<S: Scalar>(n: usize, reps: usize) -> (f64, f64) {
    let mut rng = SmallRng::seed_from_u64(1);
    let mk = |rng: &mut SmallRng| -> Tensor<S> {
        Tensor::matrix(
            n,
            n,
            (0..n * n)
                .map(|_| S::from_f64(rng.gen_range(-1.0..1.0)))
                .collect(),
        )
    };
    let a = mk(&mut rng);
    let b = mk(&mut rng);
    let _ = a.matmul(&b); // warm-up
    let single = Instant::now();
    let c = a.matmul(&b);
    let single_ns = single.elapsed().as_nanos() as f64;
    assert!(c.data()[0].to_f64().is_finite());
    let start = Instant::now();
    let mut sink = 0.0;
    for _ in 0..reps {
        sink += a.matmul(&b).data()[0].to_f64();
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    assert!(sink.is_finite());
    ((2.0 * (n * n * n * reps) as f64) / secs / 1e9, single_ns)
}

/// Pull `"key": <number>` out of a JSON string without a parser dep.
fn extract_number(s: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = s.find(&pat)? + pat.len();
    let rest = &s[at..];
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse::<f64>().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let pr5_path = flag_value("--pr5").unwrap_or_else(|| "BENCH_PR5.json".to_string());
    let obs = Obs::enabled();

    let (samples, epochs) = if quick { (16, 2) } else { (64, 5) };
    let data = dataset(samples);
    eprintln!("measuring training throughput ({samples} graphs x {epochs} epochs) ...");
    let (seq_sps, seq_eps, seq_loss) = measure_train(&data, epochs, |tr, m, d| {
        tr.train(m, d, None).final_train_loss().unwrap_or(f64::NAN)
    });
    eprintln!("  sequential f64: {seq_sps:.1} samples/sec ({seq_eps:.2} epochs/sec)");
    let (b64_sps, b64_eps, b64_loss) = measure_train(&data, epochs, |tr, m, d| {
        tr.train_batched::<f64>(m, d, None, &Obs::disabled())
            .final_train_loss()
            .unwrap_or(f64::NAN)
    });
    eprintln!("  batched f64:    {b64_sps:.1} samples/sec ({b64_eps:.2} epochs/sec)");
    let (b32_sps, b32_eps, b32_loss) = measure_train(&data, epochs, |tr, m, d| {
        tr.train_batched::<f32>(m, d, None, &Obs::disabled())
            .final_train_loss()
            .unwrap_or(f64::NAN)
    });
    eprintln!("  batched f32:    {b32_sps:.1} samples/sec ({b32_eps:.2} epochs/sec)");
    let loss_drift = ((b64_loss - seq_loss) / seq_loss.abs().max(1e-30)).abs();
    assert!(
        loss_drift < 1e-2,
        "batched f64 final loss drifted from sequential: {seq_loss} vs {b64_loss}"
    );
    obs.registry.gauge("train.samples_per_sec").set(b32_sps);

    let (n, reps) = if quick { (96, 3) } else { (256, 8) };
    eprintln!("measuring blocked matmul f64 vs f32 ({reps} x {n}x{n}) ...");
    let (gflops64, matmul_ns) = measure_matmul::<f64>(n, reps);
    let (gflops32, matmul_f32_ns) = measure_matmul::<f32>(n, reps);
    eprintln!("  f64 {gflops64:.3} GFLOP/s, f32 {gflops32:.3} GFLOP/s");
    obs.registry.gauge("neural.matmul_ns").set(matmul_ns);
    obs.registry
        .gauge("neural.matmul_f32_ns")
        .set(matmul_f32_ns);

    // Continue the PR-5 trajectory when its report is present.
    let pr5 = std::fs::read_to_string(&pr5_path).ok();
    let traj = |key: &str| {
        pr5.as_deref()
            .and_then(|s| {
                // Keys repeat across groups ("after"), so scope to the
                // group block first.
                let at = s.find(&format!("\"{key}\""))?;
                extract_number(&s[at..], "after")
            })
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "null".to_string())
    };
    let sim_eps = traj("sim_event_loop");
    let sa_evals = traj("sa_evaluation");
    let pr5_gflops = traj("matmul");

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"chainnet-bench-pr10/v1\",\n",
            "  \"quick\": {quick},\n",
            "  \"groups\": {{\n",
            "    \"train_throughput\": {{\n",
            "      \"unit\": \"samples/sec\",\n",
            "      \"graphs\": {samples},\n",
            "      \"epochs\": {epochs},\n",
            "      \"before\": {seq_sps:.2},\n",
            "      \"batched_f64\": {b64_sps:.2},\n",
            "      \"after\": {b32_sps:.2},\n",
            "      \"speedup\": {speedup:.3},\n",
            "      \"epochs_per_sec_before\": {seq_eps:.3},\n",
            "      \"epochs_per_sec_after\": {b32_eps:.3},\n",
            "      \"final_loss_sequential\": {seq_loss:.6},\n",
            "      \"final_loss_batched_f64\": {b64_loss:.6},\n",
            "      \"final_loss_batched_f32\": {b32_loss:.6}\n",
            "    }},\n",
            "    \"matmul_dtype\": {{\n",
            "      \"unit\": \"GFLOP/s\",\n",
            "      \"size\": {n},\n",
            "      \"f64\": {gflops64:.4},\n",
            "      \"f32\": {gflops32:.4},\n",
            "      \"speedup\": {mm_speedup:.3}\n",
            "    }}\n",
            "  }},\n",
            "  \"trajectory\": {{\n",
            "    \"sim_events_per_sec\": {sim_eps},\n",
            "    \"matmul_gflops_f64_pr5\": {pr5_gflops},\n",
            "    \"sa_evals_per_sec\": {sa_evals}\n",
            "  }}\n",
            "}}\n",
        ),
        quick = quick,
        samples = samples,
        epochs = epochs,
        seq_sps = seq_sps,
        b64_sps = b64_sps,
        b32_sps = b32_sps,
        speedup = b32_sps / seq_sps,
        seq_eps = seq_eps,
        b32_eps = b32_eps,
        seq_loss = seq_loss,
        b64_loss = b64_loss,
        b32_loss = b32_loss,
        n = n,
        gflops64 = gflops64,
        gflops32 = gflops32,
        mm_speedup = gflops32 / gflops64,
        sim_eps = sim_eps,
        pr5_gflops = pr5_gflops,
        sa_evals = sa_evals,
    );
    std::fs::write(&out, &json).expect("write report");
    eprintln!("report written to {out}");
    println!("{json}");
}
