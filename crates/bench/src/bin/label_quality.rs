//! Label-quality study (beyond the paper): can the surrogate be trained
//! on *cheap analytic labels* instead of expensive simulations?
//!
//! Trains two identical ChainNets — one on simulator-labeled Type I data,
//! one on decomposition-labeled data of the same systems — and evaluates
//! both against *simulated* ground truth on the held-out Type I and
//! Type II test sets. The gap quantifies how much of ChainNet's accuracy
//! budget is spent compensating for label bias vs learning queueing
//! structure, and whether analytic labels are a viable bootstrap when
//! simulation time is scarce.

use chainnet::model::ChainNet;
use chainnet::train::Trainer;
use chainnet_bench::{print_table, Pipeline};
use chainnet_datagen::dataset::{generate_raw_dataset, to_labeled, DatasetConfig, LabelSource};
use chainnet_datagen::typesets::NetworkParams;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Row {
    labels: String,
    label_secs: f64,
    mape_i: f64,
    mape_ii: f64,
}

fn main() {
    let pipeline = Pipeline::from_env();
    let scale = pipeline.scale.clone();
    eprintln!("[label_quality] scale = {}", scale.name);
    let datasets = pipeline.datasets(); // simulated train + test sets

    // Re-label the same training systems with the decomposition solver.
    let t0 = Instant::now();
    let approx_train = generate_raw_dataset(
        NetworkParams::type_i(),
        &DatasetConfig::new(scale.train_samples, 1_000)
            .with_horizon(scale.sim_horizon)
            .with_labels(LabelSource::Decomposition),
    )
    .expect("approx labels");
    let approx_secs = t0.elapsed().as_secs_f64();

    let trainer = Trainer::new(scale.train_config());
    let mut rows = Vec::new();
    for (name, train_raw, label_secs) in [
        ("simulation", &datasets.train_i, f64::NAN),
        ("decomposition", &approx_train, approx_secs),
    ] {
        let cfg = scale.model_config();
        let mut model = ChainNet::new(cfg, 42);
        let train = to_labeled(train_raw, cfg.feature_mode);
        eprintln!("[label_quality] training on {name} labels...");
        trainer.train(&mut model, &train, None);
        // Both models are judged against *simulated* ground truth.
        let (ti, _) = pipeline.evaluate(&model, &datasets.test_i).summaries();
        let (tii, _) = pipeline.evaluate(&model, &datasets.test_ii).summaries();
        rows.push(Row {
            labels: name.to_string(),
            label_secs,
            mape_i: ti.map(|s| s.mape).unwrap_or(f64::NAN),
            mape_ii: tii.map(|s| s.mape).unwrap_or(f64::NAN),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.labels.clone(),
                if r.label_secs.is_nan() {
                    "(cached)".into()
                } else {
                    format!("{:.2}", r.label_secs)
                },
                format!("{:.3}", r.mape_i),
                format!("{:.3}", r.mape_ii),
            ]
        })
        .collect();
    print_table(
        "Label-quality study: throughput MAPE vs simulated ground truth",
        &["label source", "labeling s", "I:MAPE", "II:MAPE"],
        &table,
    );
    println!(
        "\nlabel-bias penalty: Type I {:+.3}, Type II {:+.3} MAPE",
        rows[1].mape_i - rows[0].mape_i,
        rows[1].mape_ii - rows[0].mape_ii
    );
    pipeline.write_result("label_quality", &rows);
}
