//! Hot-path benchmark report: measures the three PR-5 hot paths — the
//! qsim event loop, the dense matmul kernel, and SA candidate
//! evaluation — and emits a machine-readable `BENCH_PR5.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p chainnet-bench --bin hotpath_report -- \
//!     [--quick] [--baseline <path>] [--out <path>]
//! ```
//!
//! `--quick` shrinks every measurement window (CI smoke mode).
//! `--baseline` points at a JSON file of pre-optimization numbers (the
//! committed `results/bench_pr5_baseline.json`, captured on the seed
//! event loop before the zero-alloc refactor); its `sim` section is
//! merged in as the "before" column. `--capture-baseline` writes the
//! sim section only, for re-baselining on a new reference machine.

use chainnet_qsim::model::{Device, Fragment, Placement, ServiceChain, SystemModel};
use chainnet_qsim::sim::{SimConfig, Simulator};
use std::time::Instant;

/// A multi-chain, shared-device scenario exercising queueing, drops and
/// multi-fragment routing — the simulator's steady-state hot path.
fn sim_scenario() -> SystemModel {
    let devices = vec![
        Device::new(6.0, 1.0).unwrap(),
        Device::new(4.0, 2.0).unwrap(),
        Device::new(5.0, 1.5).unwrap(),
    ];
    let chains = vec![
        ServiceChain::new(
            0.6,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(2.0, 2.0).unwrap(),
            ],
        )
        .unwrap(),
        ServiceChain::new(
            0.4,
            vec![
                Fragment::new(1.0, 1.5).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(2.0, 0.5).unwrap(),
            ],
        )
        .unwrap(),
    ];
    SystemModel::new(
        devices,
        chains,
        Placement::new(vec![vec![0, 1], vec![1, 2, 0]]),
    )
    .unwrap()
}

/// Events per second of wall clock over `reps` simulator runs.
fn measure_sim_events_per_sec(horizon: f64, reps: usize) -> f64 {
    let model = sim_scenario();
    let cfg = SimConfig::new(horizon, 42);
    // Warm-up run excluded from timing.
    let _ = Simulator::new().run(&model, &cfg).expect("sim");
    let start = Instant::now();
    let mut events = 0u64;
    for _ in 0..reps {
        events += Simulator::new().run(&model, &cfg).expect("sim").events;
    }
    events as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_PR5.json".to_string());
    let capture_baseline = args.iter().any(|a| a == "--capture-baseline");

    let (horizon, reps) = if quick { (5_000.0, 2) } else { (50_000.0, 6) };
    eprintln!("measuring qsim event loop ({reps} x horizon {horizon}) ...");
    let sim_eps = measure_sim_events_per_sec(horizon, reps);
    eprintln!("  sim.events_per_sec = {sim_eps:.0}");

    if capture_baseline {
        let json = format!(
            "{{\n  \"sim\": {{ \"events_per_sec\": {sim_eps:.1}, \"horizon\": {horizon}, \"reps\": {reps} }}\n}}\n"
        );
        std::fs::write(&out, json).expect("write baseline");
        eprintln!("baseline written to {out}");
        return;
    }

    report::run(quick, sim_eps, flag_value("--baseline"), &out);
}

/// Full-report half: matmul and SA measurements plus JSON assembly.
/// Split out so `--capture-baseline` depends only on the simulator.
mod report {
    use super::{sim_scenario, Instant};
    use chainnet::config::ModelConfig;
    use chainnet::model::ChainNet;
    use chainnet_neural::tensor::Tensor;
    use chainnet_obs::Obs;
    use chainnet_placement::evaluator::{GnnEvaluator, SimEvaluator};
    use chainnet_placement::problem::PlacementProblem;
    use chainnet_placement::sa::{SaConfig, SimulatedAnnealing};
    use chainnet_qsim::sim::SimConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, rng: &mut SmallRng) -> Tensor {
        Tensor::matrix(
            rows,
            cols,
            (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        )
    }

    /// GFLOP/s of one kernel at a square size.
    fn measure_matmul_gflops(
        n: usize,
        reps: usize,
        kernel: impl Fn(&Tensor, &Tensor) -> Tensor,
    ) -> f64 {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = random_matrix(n, n, &mut rng);
        let b = random_matrix(n, n, &mut rng);
        let _ = kernel(&a, &b); // warm-up
        let start = Instant::now();
        let mut sink = 0.0;
        for _ in 0..reps {
            sink += kernel(&a, &b).data()[0];
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        assert!(sink.is_finite());
        (2.0 * (n * n * n * reps) as f64) / secs / 1e9
    }

    fn sa_problem() -> PlacementProblem {
        let model = sim_scenario();
        PlacementProblem::new(model.devices().to_vec(), model.chains().to_vec()).unwrap()
    }

    /// Evaluations per second of a full SA run with the given driver.
    fn measure_sa<E: chainnet_placement::evaluator::BatchEvaluator>(
        steps: usize,
        mut evaluator: E,
        batched: Option<usize>,
    ) -> f64 {
        let problem = sa_problem();
        let initial = problem.initial_placement().expect("feasible");
        let cfg = SaConfig::paper_default().with_max_steps(steps).with_seed(9);
        let sa = SimulatedAnnealing::new(cfg);
        let start = Instant::now();
        let result = match batched {
            None => sa.optimize(&problem, &initial, &mut evaluator, 1),
            Some(k) => sa.optimize_neighborhood_observed(
                &problem,
                &initial,
                &mut evaluator,
                1,
                k,
                &Obs::disabled(),
            ),
        };
        assert!(result.best_objective.is_finite());
        evaluator.evaluations() as f64 / start.elapsed().as_secs_f64().max(1e-9)
    }

    pub fn run(quick: bool, sim_eps_after: f64, baseline: Option<String>, out: &str) {
        let obs = Obs::enabled();

        // Matmul: retained naive reference ("before") vs blocked kernel.
        let (n, mm_reps) = if quick { (96, 3) } else { (256, 8) };
        eprintln!("measuring matmul kernels ({mm_reps} x {n}x{n}) ...");
        let naive = measure_matmul_gflops(n, mm_reps, |a, b| a.matmul_naive(b));
        let blocked = measure_matmul_gflops(n, mm_reps, |a, b| a.matmul(b));
        eprintln!("  naive {naive:.3} GFLOP/s, blocked {blocked:.3} GFLOP/s");
        let matmul_ns = {
            let mut rng = SmallRng::seed_from_u64(2);
            let a = random_matrix(n, n, &mut rng);
            let b = random_matrix(n, n, &mut rng);
            let start = Instant::now();
            let c = a.matmul(&b);
            let ns = start.elapsed().as_nanos() as f64;
            assert!(c.data()[0].is_finite());
            ns
        };
        obs.registry.gauge("neural.matmul_ns").set(matmul_ns);
        obs.registry.gauge("sim.events_per_sec").set(sim_eps_after);

        // SA evaluation throughput: simulator backend vs surrogate,
        // sequential vs neighborhood-batched surrogate forward.
        let sa_steps = if quick { 12 } else { 60 };
        eprintln!("measuring SA evaluation throughput ({sa_steps} steps) ...");
        let net = ChainNet::new(ModelConfig::small(), 3);
        let sim_backend = measure_sa(
            sa_steps,
            SimEvaluator::new(SimConfig::new(2_000.0, 4)),
            None,
        );
        let surrogate_seq = measure_sa(sa_steps, GnnEvaluator::new(net.clone()), None);
        let surrogate_batched = measure_sa(sa_steps, GnnEvaluator::new(net), Some(8));
        eprintln!(
            "  sim {sim_backend:.1}, surrogate {surrogate_seq:.1}, batched {surrogate_batched:.1} evals/sec"
        );

        let sim_eps_before = baseline
            .and_then(|p| std::fs::read_to_string(p).ok())
            .and_then(|s| {
                // Minimal extraction: the baseline file is
                // {"sim": {"events_per_sec": <f64>, ...}}.
                let key = "\"events_per_sec\":";
                let at = s.find(key)? + key.len();
                let rest = &s[at..];
                let end = rest.find([',', '}'])?;
                rest[..end].trim().parse::<f64>().ok()
            });

        let before = sim_eps_before
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "null".to_string());
        let speedup_sim = sim_eps_before
            .map(|v| format!("{:.3}", sim_eps_after / v))
            .unwrap_or_else(|| "null".to_string());
        let json = format!(
            concat!(
                "{{\n",
                "  \"schema\": \"chainnet-bench-pr5/v1\",\n",
                "  \"quick\": {quick},\n",
                "  \"groups\": {{\n",
                "    \"sim_event_loop\": {{\n",
                "      \"unit\": \"events/sec\",\n",
                "      \"before\": {sim_before},\n",
                "      \"after\": {sim_after:.1},\n",
                "      \"speedup\": {sim_speedup}\n",
                "    }},\n",
                "    \"matmul\": {{\n",
                "      \"unit\": \"GFLOP/s\",\n",
                "      \"size\": {n},\n",
                "      \"before\": {naive:.4},\n",
                "      \"after\": {blocked:.4},\n",
                "      \"speedup\": {mm_speedup:.3}\n",
                "    }},\n",
                "    \"sa_evaluation\": {{\n",
                "      \"unit\": \"evals/sec\",\n",
                "      \"simulator_backend\": {sa_sim:.2},\n",
                "      \"before\": {sa_seq:.2},\n",
                "      \"after\": {sa_batched:.2},\n",
                "      \"speedup\": {sa_speedup:.3}\n",
                "    }}\n",
                "  }}\n",
                "}}\n",
            ),
            quick = quick,
            sim_before = before,
            sim_after = sim_eps_after,
            sim_speedup = speedup_sim,
            n = n,
            naive = naive,
            blocked = blocked,
            mm_speedup = blocked / naive,
            sa_sim = sim_backend,
            sa_seq = surrogate_seq,
            sa_batched = surrogate_batched,
            sa_speedup = surrogate_batched / surrogate_seq,
        );
        std::fs::write(out, &json).expect("write report");
        eprintln!("report written to {out}");
        println!("{json}");
    }
}
