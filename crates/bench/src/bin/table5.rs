//! Reproduces **Table V**: throughput APE percentiles (75th/95th/99th) of
//! ChainNet, GIN, GAT (Table II features) and GIN*, GAT* (raw features)
//! on the Type I and Type II test sets.

use chainnet::baselines::BaselineKind;
use chainnet::metrics::ApeSummary;
use chainnet::model::Surrogate;
use chainnet_bench::{print_table, Pipeline};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    model: String,
    type_i: ApeSummary,
    type_ii: ApeSummary,
}

fn main() {
    let pipeline = Pipeline::from_env();
    eprintln!("[table5] scale = {}", pipeline.scale.name);
    let datasets = pipeline.datasets();

    let chainnet = pipeline.chainnet(&datasets);
    let gin = pipeline.baseline(BaselineKind::Gin, false, &datasets);
    let gat = pipeline.baseline(BaselineKind::Gat, false, &datasets);
    let gin_star = pipeline.baseline(BaselineKind::Gin, true, &datasets);
    let gat_star = pipeline.baseline(BaselineKind::Gat, true, &datasets);

    let mut rows = Vec::new();
    let mut eval = |name: &str, model: &dyn Surrogate| {
        let apes_i = pipeline.evaluate_dyn(model, &datasets.test_i);
        let apes_ii = pipeline.evaluate_dyn(model, &datasets.test_ii);
        let (ti, _) = apes_i.summaries();
        let (tii, _) = apes_ii.summaries();
        rows.push(Row {
            model: name.to_string(),
            type_i: ti.expect("nonempty test I"),
            type_ii: tii.expect("nonempty test II"),
        });
    };
    eval("ChainNet", &chainnet.model);
    eval("GIN", &gin.model);
    eval("GAT", &gat.model);
    eval("GIN*", &gin_star.model);
    eval("GAT*", &gat_star.model);

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{:.3}", r.type_i.p75),
                format!("{:.3}", r.type_i.p95),
                format!("{:.3}", r.type_i.p99),
                format!("{:.3}", r.type_ii.p75),
                format!("{:.3}", r.type_ii.p95),
                format!("{:.3}", r.type_ii.p99),
            ]
        })
        .collect();
    print_table(
        "Table V: throughput APE percentiles (fractions; paper reports e.g. ChainNet Type II 95th = 0.038)",
        &["model", "I:75th", "I:95th", "I:99th", "II:75th", "II:95th", "II:99th"],
        &table_rows,
    );
    pipeline.write_result("table5", &rows);

    // Shape check mirrored from the paper: ChainNet beats every baseline.
    let cn = &rows[0];
    for r in &rows[1..] {
        let better = cn.type_ii.p95 <= r.type_ii.p95 + 1e-9;
        println!(
            "ChainNet II:95th {:.3} vs {} {:.3} -> {}",
            cn.type_ii.p95,
            r.model,
            r.type_ii.p95,
            if better { "better/equal" } else { "WORSE" }
        );
    }
}
