//! Hyperparameter sweep (supports Table IV's "basic hyperparameter
//! tuning" claim): ChainNet's Type I / Type II accuracy as a function of
//! hidden width and message-passing iterations, trained on the shared
//! default dataset.

use chainnet::config::ModelConfig;
use chainnet::model::ChainNet;
use chainnet::train::Trainer;
use chainnet_bench::{print_table, Pipeline};
use chainnet_datagen::dataset::to_labeled;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct SweepRow {
    hidden: usize,
    iterations: usize,
    params: usize,
    mape_i: f64,
    mape_ii: f64,
    train_secs: f64,
}

fn main() {
    let pipeline = Pipeline::from_env();
    let scale = pipeline.scale.clone();
    eprintln!("[sweep] scale = {}", scale.name);
    let datasets = pipeline.datasets();

    // Sweep around the scale's defaults.
    let hiddens = [scale.hidden / 2, scale.hidden, scale.hidden * 2];
    let iteration_counts = [
        (scale.iterations / 2).max(1),
        scale.iterations,
        scale.iterations * 2,
    ];

    let trainer = Trainer::new(scale.train_config());
    let mut rows = Vec::new();
    for &hidden in &hiddens {
        for &iterations in &iteration_counts {
            let mut cfg = ModelConfig::paper_chainnet();
            cfg.hidden = hidden.max(4);
            cfg.iterations = iterations;
            let mut model = ChainNet::new(cfg, 42);
            let train = to_labeled(&datasets.train_i, cfg.feature_mode);
            let test_i = to_labeled(&datasets.test_i, cfg.feature_mode);
            let test_ii = to_labeled(&datasets.test_ii, cfg.feature_mode);
            let t0 = Instant::now();
            trainer.train(&mut model, &train, None);
            let train_secs = t0.elapsed().as_secs_f64();
            let (ti, _) = trainer.evaluate_ape(&model, &test_i).summaries();
            let (tii, _) = trainer.evaluate_ape(&model, &test_ii).summaries();
            let row = SweepRow {
                hidden: cfg.hidden,
                iterations,
                params: {
                    use chainnet::model::Surrogate;
                    model.params().num_scalars()
                },
                mape_i: ti.map(|s| s.mape).unwrap_or(f64::NAN),
                mape_ii: tii.map(|s| s.mape).unwrap_or(f64::NAN),
                train_secs,
            };
            eprintln!(
                "[sweep] hidden={} iters={} -> MAPE I {:.3}, II {:.3} ({:.1}s)",
                row.hidden, row.iterations, row.mape_i, row.mape_ii, row.train_secs
            );
            rows.push(row);
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.hidden),
                format!("{}", r.iterations),
                format!("{}", r.params),
                format!("{:.3}", r.mape_i),
                format!("{:.3}", r.mape_ii),
                format!("{:.1}", r.train_secs),
            ]
        })
        .collect();
    print_table(
        "Hyperparameter sweep: ChainNet throughput MAPE vs width/depth",
        &["hidden", "iters", "params", "I:MAPE", "II:MAPE", "train s"],
        &table,
    );
    pipeline.write_result("sweep", &rows);
}
