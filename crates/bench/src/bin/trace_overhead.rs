//! Tracing-overhead gate: proves the disabled-tracer span calls wired
//! through the hot paths cost less than 1% of hot-path wall time.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p chainnet-bench --bin trace_overhead -- \
//!     [--quick] [--max-overhead <pct>] [--out <path>]
//! ```
//!
//! Three measurements feed the gate:
//!
//! 1. **workload** — wall time of a multi-chain simulator run with a
//!    disabled [`Obs`] (best of several repetitions, so transient
//!    scheduler noise cannot fail the gate spuriously);
//! 2. **span count** — the same workload under an enabled tracer, to
//!    count how many span call sites it actually crosses;
//! 3. **per-call cost** — a tight loop of disabled `tracer.span()`
//!    calls (one branch on a `None` arc, no allocation).
//!
//! The projected overhead is `span_count * per_call_ns / workload_ns`;
//! the process exits non-zero if it exceeds `--max-overhead`
//! (default 1.0, the acceptance bound from the observability PR). A
//! machine-readable JSON summary lands at `--out` for the CI artifact.

use chainnet_obs::{Obs, Tracer};
use chainnet_qsim::faults::FaultSchedule;
use chainnet_qsim::model::{Device, Fragment, Placement, ServiceChain, SystemModel};
use chainnet_qsim::sim::{SimConfig, Simulator};
use std::time::Instant;

/// Same steady-state scenario as `hotpath_report`: shared devices,
/// multi-fragment chains, enough contention to keep the event loop hot.
fn scenario() -> SystemModel {
    let devices = vec![
        Device::new(6.0, 1.0).unwrap(),
        Device::new(4.0, 2.0).unwrap(),
        Device::new(5.0, 1.5).unwrap(),
    ];
    let chains = vec![
        ServiceChain::new(
            0.6,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(2.0, 2.0).unwrap(),
            ],
        )
        .unwrap(),
        ServiceChain::new(
            0.4,
            vec![
                Fragment::new(1.0, 1.5).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(2.0, 0.5).unwrap(),
            ],
        )
        .unwrap(),
    ];
    SystemModel::new(
        devices,
        chains,
        Placement::new(vec![vec![0, 1], vec![1, 2, 0]]),
    )
    .unwrap()
}

/// Best-of-`reps` wall time (ns) of one simulator run with `obs`.
fn measure_run_ns(model: &SystemModel, cfg: &SimConfig, obs: &Obs, reps: usize) -> f64 {
    let faults = FaultSchedule::new();
    let sim = Simulator::new();
    let _ = sim.run_faulted_observed(model, cfg, &faults, obs).unwrap();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let r = sim.run_faulted_observed(model, cfg, &faults, obs).unwrap();
        let ns = start.elapsed().as_nanos() as f64;
        assert!(r.events > 0);
        best = best.min(ns);
    }
    best
}

/// Per-call cost (ns) of a span on a disabled tracer.
fn measure_disabled_span_ns(calls: usize) -> f64 {
    let tracer = Tracer::disabled();
    // Warm-up to fault in the code path.
    for _ in 0..1_000 {
        let _g = tracer.span("qsim.run");
    }
    let start = Instant::now();
    for _ in 0..calls {
        let _g = tracer.span("qsim.run");
    }
    start.elapsed().as_nanos() as f64 / calls as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let max_overhead: f64 = flag_value("--max-overhead")
        .map(|v| v.parse().expect("--max-overhead takes a percentage"))
        .unwrap_or(1.0);
    let out = flag_value("--out").unwrap_or_else(|| "trace_overhead.json".to_string());

    let (horizon, reps, loop_calls) = if quick {
        (5_000.0, 3, 2_000_000)
    } else {
        (50_000.0, 5, 10_000_000)
    };
    let model = scenario();
    let cfg = SimConfig::new(horizon, 42);

    eprintln!("measuring workload ({reps} x horizon {horizon}, obs disabled) ...");
    let workload_ns = measure_run_ns(&model, &cfg, &Obs::disabled(), reps);
    eprintln!("  best run = {:.3} ms", workload_ns / 1e6);

    let traced = Obs::enabled().with_tracer(Tracer::enabled());
    let _ = measure_run_ns(&model, &cfg, &traced, 1);
    // Warm-up + one timed rep crossed the span sites twice; halve.
    let spans_per_run = traced.tracer.take().spans.len() as f64 / 2.0;
    eprintln!("  span call sites crossed per run = {spans_per_run:.0}");

    eprintln!("measuring disabled span cost ({loop_calls} calls) ...");
    let per_call_ns = measure_disabled_span_ns(loop_calls);
    eprintln!("  disabled span = {per_call_ns:.2} ns/call");

    let overhead_pct = 100.0 * spans_per_run * per_call_ns / workload_ns;
    let pass = overhead_pct < max_overhead;
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"chainnet-trace-overhead/v1\",\n",
            "  \"quick\": {quick},\n",
            "  \"workload_ns\": {workload_ns:.0},\n",
            "  \"spans_per_run\": {spans_per_run:.0},\n",
            "  \"disabled_span_ns_per_call\": {per_call_ns:.3},\n",
            "  \"projected_overhead_pct\": {overhead_pct:.5},\n",
            "  \"max_overhead_pct\": {max_overhead},\n",
            "  \"pass\": {pass}\n",
            "}}\n",
        ),
        quick = quick,
        workload_ns = workload_ns,
        spans_per_run = spans_per_run,
        per_call_ns = per_call_ns,
        overhead_pct = overhead_pct,
        max_overhead = max_overhead,
        pass = pass,
    );
    std::fs::write(&out, &json).expect("write report");
    println!("{json}");
    if !pass {
        eprintln!(
            "FAIL: projected disabled-tracing overhead {overhead_pct:.4}% \
             exceeds the {max_overhead}% gate"
        );
        std::process::exit(1);
    }
    eprintln!("PASS: projected disabled-tracing overhead {overhead_pct:.4}% < {max_overhead}%");
}
