//! Reproduces **Fig. 12**: box plots of throughput and latency APE on the
//! Type II test set, grouped by the number of graph nodes and by the
//! number of service chains, for ChainNet and GAT (and GIN, whose medians
//! the paper notes are off the chart).

use chainnet::baselines::BaselineKind;
use chainnet::graph::PlacementGraph;
use chainnet::metrics::{ape, bucket_label, BoxStats};
use chainnet::model::Surrogate;
use chainnet_bench::{print_table, Pipeline};
use chainnet_datagen::dataset::RawSample;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Debug, Serialize)]
struct GroupedBox {
    model: String,
    group_by: String,
    group: String,
    tput: BoxStats,
    lat: BoxStats,
}

fn grouped(
    pipeline: &Pipeline,
    model: &dyn Surrogate,
    samples: &[RawSample],
    by_chains: bool,
) -> Vec<GroupedBox> {
    let node_edges = [40usize, 80, 120, 160];
    let chain_edges = [3usize, 6, 9];
    let mut tput: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut lat: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for sample in samples {
        let graph = PlacementGraph::from_model(&sample.model, model.config().feature_mode);
        let key = if by_chains {
            bucket_label(graph.num_chains(), &chain_edges)
        } else {
            bucket_label(graph.num_nodes(), &node_edges)
        };
        let preds = model.predict(&graph);
        for (p, t) in preds.iter().zip(&sample.targets) {
            tput.entry(key.clone())
                .or_default()
                .push(ape(p.throughput, t.throughput));
            lat.entry(key.clone())
                .or_default()
                .push(ape(p.latency, t.latency));
        }
    }
    let _ = pipeline;
    tput.iter()
        .map(|(k, v)| GroupedBox {
            model: model.name().to_string(),
            group_by: if by_chains { "chains" } else { "nodes" }.into(),
            group: k.clone(),
            tput: BoxStats::from_samples(v).expect("nonempty group"),
            lat: BoxStats::from_samples(&lat[k]).expect("nonempty group"),
        })
        .collect()
}

fn main() {
    let pipeline = Pipeline::from_env();
    eprintln!("[fig12] scale = {}", pipeline.scale.name);
    let datasets = pipeline.datasets();

    let chainnet = pipeline.chainnet(&datasets);
    let gat = pipeline.baseline(BaselineKind::Gat, false, &datasets);
    let gin = pipeline.baseline(BaselineKind::Gin, false, &datasets);
    let models: Vec<&dyn Surrogate> = vec![&chainnet.model, &gat.model, &gin.model];

    let mut all = Vec::new();
    for by_chains in [false, true] {
        for model in &models {
            all.extend(grouped(&pipeline, *model, &datasets.test_ii, by_chains));
        }
    }

    for group_by in ["nodes", "chains"] {
        let rows: Vec<Vec<String>> = all
            .iter()
            .filter(|g| g.group_by == group_by)
            .map(|g| {
                vec![
                    g.model.clone(),
                    g.group.clone(),
                    format!("{}", g.tput.count),
                    format!("{:.3}", g.tput.q1),
                    format!("{:.3}", g.tput.median),
                    format!("{:.3}", g.tput.q3),
                    format!("{:.3}", g.lat.median),
                ]
            })
            .collect();
        print_table(
            &format!("Fig 12 ({group_by}): Type II APE box statistics"),
            &[
                "model", group_by, "n", "tput:q1", "tput:med", "tput:q3", "lat:med",
            ],
            &rows,
        );
    }
    pipeline.write_result("fig12", &all);
}
