//! Reproduces **Fig. 14**: (a) example SA trajectories over 5 trials,
//! (b) mean relative loss reduction of ChainNet-based vs simulation-based
//! search under fixed-time and fixed-steps budgets, (c)–(d) mean loss
//! probability and relative loss reduction over the fixed time frame
//! (simulated and ChainNet-estimated curves).

use chainnet_bench::optstudy::{
    curve_on_grid, linear_grid, mean_curve, run_search, run_search_for, Curve,
};
use chainnet_bench::{print_table, Pipeline};
use chainnet_datagen::problems::{ProblemGenerator, ProblemParams};
use chainnet_placement::evaluator::{GnnEvaluator, SimEvaluator};
use chainnet_placement::sa::SaConfig;
use chainnet_qsim::sim::SimConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Fig14Results {
    trajectories: Vec<Vec<f64>>,
    fixed_time: SummaryPair,
    fixed_steps: SummaryPair,
    curves_time: CurvePair,
}

#[derive(Debug, Serialize)]
struct SummaryPair {
    chainnet_mean_reduction: f64,
    baseline_mean_reduction: f64,
    chainnet_mean_secs: f64,
    baseline_mean_secs: f64,
}

#[derive(Debug, Serialize)]
struct CurvePair {
    chainnet: Curve,
    baseline: Curve,
}

fn main() {
    let pipeline = Pipeline::from_env();
    let scale = pipeline.scale.clone();
    eprintln!("[fig14] scale = {}", scale.name);
    let datasets = pipeline.datasets();
    let chainnet = pipeline.chainnet(&datasets);

    let sa_cfg = SaConfig::paper_default().with_max_steps(scale.sa_steps);
    let eval_h = scale.eval_sim_horizon;

    // ---- Fig 14a: five trials on the first problem, ChainNet surrogate.
    let gen = ProblemGenerator::new(ProblemParams::paper_default(scale.device_counts[0]));
    let p0 = gen.generate(0).expect("problem generation");
    let init0 = p0.initial_placement().expect("initial placement");
    let mut gnn_ev = GnnEvaluator::new(chainnet.model.clone());
    let demo = run_search(&p0, &init0, &mut gnn_ev, sa_cfg, 5, eval_h);
    let lam0 = p0.total_arrival_rate();
    let trajectories: Vec<Vec<f64>> = demo
        .sa_result
        .trials
        .iter()
        .map(|t| {
            t.steps
                .iter()
                .map(|s| ((lam0 - s.best_objective) / lam0).clamp(0.0, 1.0))
                .collect()
        })
        .collect();
    println!("\n== Fig 14a: estimated loss probability per step, 5 trials ==");
    for (i, traj) in trajectories.iter().enumerate() {
        let pts: Vec<String> = traj
            .iter()
            .step_by((traj.len() / 10).max(1))
            .map(|v| format!("{v:.3}"))
            .collect();
        println!("trial {}: {}", i + 1, pts.join(" "));
    }

    // ---- Fig 14b-d: sweep problems x device counts.
    let mut ft_cn = Vec::new();
    let mut ft_base = Vec::new();
    let mut fs_cn = Vec::new();
    let mut fs_base = Vec::new();
    let mut curves_cn = Vec::new();
    let mut curves_base = Vec::new();

    for &d in &scale.device_counts {
        let gen = ProblemGenerator::new(ProblemParams::paper_default(d));
        for s in 0..scale.sa_problems {
            let problem = gen.generate(1000 + s as u64).expect("problem");
            let initial = problem.initial_placement().expect("initial placement");
            // Only lossy instances are meaningful for loss-aware search
            // (the paper's instances are overloaded by construction).
            let x0 =
                chainnet_bench::optstudy::ground_truth_throughput(&problem, &initial, eval_h, 555);
            let init_loss =
                chainnet_placement::evaluator::loss_probability(problem.total_arrival_rate(), x0);
            if init_loss < 0.02 {
                eprintln!("[skip] D={d} s={s}: initial loss {init_loss:.4} < 2%");
                continue;
            }

            // Fixed-steps: both methods run the full trial budget.
            let mut sim_ev = SimEvaluator::new(SimConfig::new(eval_h, 7));
            let base_fs = run_search(
                &problem,
                &initial,
                &mut sim_ev,
                sa_cfg.with_seed(5 + s as u64),
                scale.sa_trials,
                eval_h,
            );
            let mut gnn_ev = GnnEvaluator::new(chainnet.model.clone());
            let cn_fs = run_search(
                &problem,
                &initial,
                &mut gnn_ev,
                sa_cfg.with_seed(5 + s as u64),
                scale.sa_trials,
                eval_h,
            );

            // Fixed-time: budget = one simulation-based trial's duration.
            let one_trial_secs = base_fs.search_secs / scale.sa_trials as f64;
            let mut sim_ev2 = SimEvaluator::new(SimConfig::new(eval_h, 7));
            let base_ft = run_search(
                &problem,
                &initial,
                &mut sim_ev2,
                sa_cfg.with_seed(17 + s as u64),
                1,
                eval_h,
            );
            let mut gnn_ev2 = GnnEvaluator::new(chainnet.model.clone());
            let cn_ft = run_search_for(
                &problem,
                &initial,
                &mut gnn_ev2,
                sa_cfg.with_seed(17 + s as u64),
                one_trial_secs,
                eval_h,
            );

            // Curves over the shared time budget.
            let grid = linear_grid(one_trial_secs.max(1e-3), 10);
            curves_cn.push(curve_on_grid(
                &problem,
                &initial,
                &cn_ft.improvements,
                &grid,
                true,
                eval_h,
            ));
            curves_base.push(curve_on_grid(
                &problem,
                &initial,
                &base_ft.improvements,
                &grid,
                true,
                eval_h,
            ));

            eprintln!(
                "[fig14] D={d} s={s}: fixed-time CN {:.3} vs sim {:.3}; fixed-steps CN {:.3} vs sim {:.3}",
                cn_ft.relative_reduction,
                base_ft.relative_reduction,
                cn_fs.relative_reduction,
                base_fs.relative_reduction
            );
            ft_cn.push(cn_ft);
            ft_base.push(base_ft);
            fs_cn.push(cn_fs);
            fs_base.push(base_fs);
        }
    }

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let fixed_time = SummaryPair {
        chainnet_mean_reduction: mean(
            &ft_cn
                .iter()
                .map(|o| o.relative_reduction)
                .collect::<Vec<_>>(),
        ),
        baseline_mean_reduction: mean(
            &ft_base
                .iter()
                .map(|o| o.relative_reduction)
                .collect::<Vec<_>>(),
        ),
        chainnet_mean_secs: mean(&ft_cn.iter().map(|o| o.search_secs).collect::<Vec<_>>()),
        baseline_mean_secs: mean(&ft_base.iter().map(|o| o.search_secs).collect::<Vec<_>>()),
    };
    let fixed_steps = SummaryPair {
        chainnet_mean_reduction: mean(
            &fs_cn
                .iter()
                .map(|o| o.relative_reduction)
                .collect::<Vec<_>>(),
        ),
        baseline_mean_reduction: mean(
            &fs_base
                .iter()
                .map(|o| o.relative_reduction)
                .collect::<Vec<_>>(),
        ),
        chainnet_mean_secs: mean(&fs_cn.iter().map(|o| o.search_secs).collect::<Vec<_>>()),
        baseline_mean_secs: mean(&fs_base.iter().map(|o| o.search_secs).collect::<Vec<_>>()),
    };

    print_table(
        "Fig 14b: mean relative loss reduction (paper: fixed-time 37.6% CN vs 20.5% sim)",
        &["budget", "ChainNet", "simulation", "CN secs", "sim secs"],
        &[
            vec![
                "fixed-time".into(),
                format!("{:.3}", fixed_time.chainnet_mean_reduction),
                format!("{:.3}", fixed_time.baseline_mean_reduction),
                format!("{:.2}", fixed_time.chainnet_mean_secs),
                format!("{:.2}", fixed_time.baseline_mean_secs),
            ],
            vec![
                "fixed-steps".into(),
                format!("{:.3}", fixed_steps.chainnet_mean_reduction),
                format!("{:.3}", fixed_steps.baseline_mean_reduction),
                format!("{:.2}", fixed_steps.chainnet_mean_secs),
                format!("{:.2}", fixed_steps.baseline_mean_secs),
            ],
        ],
    );

    let curve_cn = mean_curve(&curves_cn);
    let curve_base = mean_curve(&curves_base);
    let rows: Vec<Vec<String>> = (0..curve_cn.grid.len())
        .map(|i| {
            vec![
                format!("{:.3}", curve_cn.grid[i]),
                format!("{:.3}", curve_cn.loss_prob[i]),
                format!("{:.3}", curve_cn.estimated_loss_prob[i]),
                format!("{:.3}", curve_base.loss_prob[i]),
                format!("{:.3}", curve_cn.relative_reduction[i]),
                format!("{:.3}", curve_base.relative_reduction[i]),
            ]
        })
        .collect();
    print_table(
        "Fig 14c-d: mean loss probability / relative reduction over the fixed time frame",
        &[
            "t(s)",
            "CN:loss(sim)",
            "CN:loss(est)",
            "sim:loss",
            "CN:red",
            "sim:red",
        ],
        &rows,
    );

    pipeline.write_result(
        "fig14",
        &Fig14Results {
            trajectories,
            fixed_time,
            fixed_steps,
            curves_time: CurvePair {
                chainnet: curve_cn,
                baseline: curve_base,
            },
        },
    );
}
