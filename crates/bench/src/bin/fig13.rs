//! Reproduces **Fig. 13**: training loss (Type I) and validation loss
//! (Type II) curves over epochs for ChainNet and its three ablated
//! variants, printed as a per-epoch series and saved as JSON.

use chainnet::ablation::AblationVariant;
use chainnet_bench::{print_table, Pipeline};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct CurveSet {
    variant: String,
    epochs: Vec<usize>,
    train_loss: Vec<f64>,
    val_loss: Vec<f64>,
}

fn main() {
    let pipeline = Pipeline::from_env();
    eprintln!("[fig13] scale = {}", pipeline.scale.name);
    let datasets = pipeline.datasets();

    let mut curves = Vec::new();
    for variant in AblationVariant::ALL {
        let trained = pipeline.ablation(variant, &datasets);
        let epochs: Vec<usize> = trained.report.history.iter().map(|e| e.epoch).collect();
        let train_loss: Vec<f64> = trained
            .report
            .history
            .iter()
            .map(|e| e.train_loss)
            .collect();
        let val_loss: Vec<f64> = trained
            .report
            .history
            .iter()
            .map(|e| e.val_loss.unwrap_or(f64::NAN))
            .collect();
        curves.push(CurveSet {
            variant: variant.label().to_string(),
            epochs,
            train_loss,
            val_loss,
        });
    }

    // Print a subsampled table: every max(1, E/10) epochs.
    let e = curves[0].epochs.len();
    let stride = (e / 10).max(1);
    let mut rows = Vec::new();
    for idx in (0..e).step_by(stride) {
        let mut row = vec![format!("{}", curves[0].epochs[idx])];
        for c in &curves {
            row.push(format!("{:.4}", c.train_loss[idx]));
            row.push(format!("{:.4}", c.val_loss[idx]));
        }
        rows.push(row);
    }
    let mut headers = vec!["epoch".to_string()];
    for c in &curves {
        headers.push(format!("{}:train", c.variant));
        headers.push(format!("{}:val", c.variant));
    }
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Fig 13: train (Type I) and validation (Type II) loss curves",
        &headers_ref,
        &rows,
    );

    // ASCII view of the validation curves (log of the exact data is in
    // the JSON artifact).
    let series: Vec<(&str, &[f64])> = curves
        .iter()
        .map(|c| (c.variant.as_str(), c.val_loss.as_slice()))
        .collect();
    println!(
        "
{}",
        chainnet_bench::plot::ascii_chart("validation loss (Type II) over epochs", &series, 60, 12,)
    );

    // Shape check: ablated variants end with higher validation loss.
    let full_val = *curves[0].val_loss.last().unwrap();
    for c in &curves[1..] {
        let v = *c.val_loss.last().unwrap();
        println!(
            "final val loss {}: {:.4} (full {:.4}) -> {}",
            c.variant,
            v,
            full_val,
            if full_val <= v + 1e-9 {
                "full better/equal"
            } else {
                "ABLATION BETTER"
            }
        );
    }
    pipeline.write_result("fig13", &curves);
}
