//! Reproduces the **Section VIII-D case study**: deploying 8 partitioned
//! DNNs (28 fragments) on five single-board computers. The paper reports
//! an initial loss probability of 96.2%, reduced to 14.6% by a 100-step
//! ChainNet search (~3 s), vs 23.5% (GAT), 94.7% (GIN) and 86.8%
//! (simulation search in 10 minutes).

use chainnet::baselines::BaselineKind;
use chainnet_bench::optstudy::{ground_truth_throughput, run_search};
use chainnet_bench::{print_table, Pipeline};
use chainnet_datagen::case_study::case_study_problem;
use chainnet_placement::evaluator::{loss_probability, GnnEvaluator, SimEvaluator};
use chainnet_placement::sa::SaConfig;
use chainnet_qsim::sim::SimConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct CaseStudyRow {
    method: String,
    final_loss_prob: f64,
    search_secs: f64,
    evaluations: u64,
}

fn main() {
    let pipeline = Pipeline::from_env();
    let scale = pipeline.scale.clone();
    eprintln!("[case_study] scale = {}", scale.name);
    let datasets = pipeline.datasets();

    let problem = case_study_problem().expect("case study problem");
    let initial = problem.initial_placement().expect("initial placement");
    let eval_h = scale.eval_sim_horizon;
    let lam = problem.total_arrival_rate();
    let initial_x = ground_truth_throughput(&problem, &initial, eval_h, 1);
    let initial_loss = loss_probability(lam, initial_x);
    println!(
        "initial deployment loss probability: {:.3} (paper: 0.962)",
        initial_loss
    );

    let sa_cfg = SaConfig::paper_default().with_max_steps(scale.sa_steps.max(20));
    let mut rows = Vec::new();

    // ChainNet, GAT, GIN surrogates (trained on the standard datasets).
    let chainnet = pipeline.chainnet(&datasets);
    let gat = pipeline.baseline(BaselineKind::Gat, false, &datasets);
    let gin = pipeline.baseline(BaselineKind::Gin, false, &datasets);

    let mut ev = GnnEvaluator::new(chainnet.model.clone());
    let out = run_search(&problem, &initial, &mut ev, sa_cfg, 1, eval_h);
    rows.push(CaseStudyRow {
        method: "ChainNet".into(),
        final_loss_prob: out.final_loss_prob,
        search_secs: out.search_secs,
        evaluations: out.evaluations,
    });
    let mut ev = GnnEvaluator::new(gat.model.clone());
    let out = run_search(&problem, &initial, &mut ev, sa_cfg, 1, eval_h);
    rows.push(CaseStudyRow {
        method: "GAT".into(),
        final_loss_prob: out.final_loss_prob,
        search_secs: out.search_secs,
        evaluations: out.evaluations,
    });
    let mut ev = GnnEvaluator::new(gin.model.clone());
    let out = run_search(&problem, &initial, &mut ev, sa_cfg, 1, eval_h);
    rows.push(CaseStudyRow {
        method: "GIN".into(),
        final_loss_prob: out.final_loss_prob,
        search_secs: out.search_secs,
        evaluations: out.evaluations,
    });
    let mut ev = SimEvaluator::new(SimConfig::new(eval_h, 13));
    let out = run_search(&problem, &initial, &mut ev, sa_cfg, 1, eval_h);
    rows.push(CaseStudyRow {
        method: "simulation".into(),
        final_loss_prob: out.final_loss_prob,
        search_secs: out.search_secs,
        evaluations: out.evaluations,
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.method.clone(),
                format!("{:.3}", r.final_loss_prob),
                format!("{:.2}", r.search_secs),
                format!("{}", r.evaluations),
            ]
        })
        .collect();
    print_table(
        "Case study (paper: ChainNet 0.146, GAT 0.235, GIN 0.947, sim 0.868)",
        &["method", "final loss", "secs", "evals"],
        &table,
    );
    pipeline.write_result(
        "case_study",
        &serde_json::json!({
            "initial_loss_prob": initial_loss,
            "rows": rows,
        }),
    );
}
