//! Reproduces **Fig. 15**: mean loss probability and mean relative loss
//! reduction against the number of search steps when both the
//! ChainNet-based and the simulation-based programs run the same
//! multi-trial step budget, plus the wall-clock comparison the paper
//! reports (90 s vs ~30 h at full scale).

use chainnet_bench::optstudy::{curve_on_grid, linear_grid, mean_curve, run_search, Curve};
use chainnet_bench::{print_table, Pipeline};
use chainnet_datagen::problems::{ProblemGenerator, ProblemParams};
use chainnet_placement::evaluator::{GnnEvaluator, SimEvaluator};
use chainnet_placement::sa::SaConfig;
use chainnet_qsim::sim::SimConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Fig15Results {
    chainnet: Curve,
    baseline: Curve,
    chainnet_mean_secs: f64,
    baseline_mean_secs: f64,
    speedup: f64,
}

fn main() {
    let pipeline = Pipeline::from_env();
    let scale = pipeline.scale.clone();
    eprintln!("[fig15] scale = {}", scale.name);
    let datasets = pipeline.datasets();
    let chainnet = pipeline.chainnet(&datasets);

    let sa_cfg = SaConfig::paper_default().with_max_steps(scale.sa_steps);
    let eval_h = scale.eval_sim_horizon;
    let total_steps = (scale.sa_steps * scale.sa_trials) as f64;
    let grid = linear_grid(total_steps, 12);

    let mut curves_cn = Vec::new();
    let mut curves_base = Vec::new();
    let mut secs_cn = Vec::new();
    let mut secs_base = Vec::new();

    for &d in &scale.device_counts {
        let gen = ProblemGenerator::new(ProblemParams::paper_default(d));
        for s in 0..scale.sa_problems {
            let problem = gen.generate(2000 + s as u64).expect("problem");
            let initial = problem.initial_placement().expect("initial placement");
            let x0 =
                chainnet_bench::optstudy::ground_truth_throughput(&problem, &initial, eval_h, 555);
            let init_loss =
                chainnet_placement::evaluator::loss_probability(problem.total_arrival_rate(), x0);
            if init_loss < 0.02 {
                eprintln!("[skip] D={d} s={s}: initial loss {init_loss:.4} < 2%");
                continue;
            }

            let mut sim_ev = SimEvaluator::new(SimConfig::new(eval_h, 11));
            let base = run_search(
                &problem,
                &initial,
                &mut sim_ev,
                sa_cfg.with_seed(3 + s as u64),
                scale.sa_trials,
                eval_h,
            );
            let mut gnn_ev = GnnEvaluator::new(chainnet.model.clone());
            let cn = run_search(
                &problem,
                &initial,
                &mut gnn_ev,
                sa_cfg.with_seed(3 + s as u64),
                scale.sa_trials,
                eval_h,
            );
            curves_base.push(curve_on_grid(
                &problem,
                &initial,
                &base.improvements,
                &grid,
                false,
                eval_h,
            ));
            curves_cn.push(curve_on_grid(
                &problem,
                &initial,
                &cn.improvements,
                &grid,
                false,
                eval_h,
            ));
            secs_base.push(base.search_secs);
            secs_cn.push(cn.search_secs);
            eprintln!(
                "[fig15] D={d} s={s}: CN red {:.3} in {:.2}s; sim red {:.3} in {:.2}s",
                cn.relative_reduction, cn.search_secs, base.relative_reduction, base.search_secs
            );
        }
    }

    let cn = mean_curve(&curves_cn);
    let base = mean_curve(&curves_base);
    let rows: Vec<Vec<String>> = (0..grid.len())
        .map(|i| {
            vec![
                format!("{:.0}", cn.grid[i]),
                format!("{:.3}", cn.loss_prob[i]),
                format!("{:.3}", base.loss_prob[i]),
                format!("{:.3}", cn.relative_reduction[i]),
                format!("{:.3}", base.relative_reduction[i]),
            ]
        })
        .collect();
    print_table(
        "Fig 15a-b: mean loss probability / relative reduction vs search steps",
        &["steps", "CN:loss", "sim:loss", "CN:red", "sim:red"],
        &rows,
    );

    println!(
        "\n{}",
        chainnet_bench::plot::ascii_chart(
            "mean loss probability vs search steps",
            &[
                ("ChainNet", cn.loss_prob.as_slice()),
                ("simulation", base.loss_prob.as_slice())
            ],
            60,
            12,
        )
    );

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let (mc, mb) = (mean(&secs_cn), mean(&secs_base));
    println!(
        "\nmean optimization time: ChainNet {:.2}s vs simulation {:.2}s (speedup {:.1}x; paper: 90s vs ~30h)",
        mc,
        mb,
        mb / mc.max(1e-9)
    );
    let final_cn = *cn.relative_reduction.last().unwrap();
    let final_base = *base.relative_reduction.last().unwrap();
    println!(
        "final relative reduction: ChainNet {:.3} = {:.1}% of simulation's {:.3} (paper: 86.7%)",
        final_cn,
        100.0 * final_cn / final_base.max(1e-9),
        final_base
    );

    pipeline.write_result(
        "fig15",
        &Fig15Results {
            chainnet: cn,
            baseline: base,
            chainnet_mean_secs: mc,
            baseline_mean_secs: mb,
            speedup: mb / mc.max(1e-9),
        },
    );
}
