//! Criterion bench: simulated-annealing search step rate with GNN vs
//! simulation evaluators — the mechanism behind the Fig. 14 fixed-time
//! advantage.

use chainnet::config::ModelConfig;
use chainnet::model::ChainNet;
use chainnet_datagen::problems::{ProblemGenerator, ProblemParams};
use chainnet_placement::evaluator::{ApproxEvaluator, Evaluator, GnnEvaluator, SimEvaluator};
use chainnet_placement::sa::{SaConfig, SimulatedAnnealing};
use chainnet_qsim::sim::SimConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_sa_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("sa_trial_20_steps");
    group.sample_size(10);
    let gen = ProblemGenerator::new(ProblemParams::paper_default(20));
    let problem = gen.generate(0).expect("problem");
    let initial = problem.initial_placement().expect("initial");
    let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(20));

    group.bench_function("chainnet_evaluator", |b| {
        let net = ChainNet::new(ModelConfig::paper_chainnet(), 3);
        let mut ev = GnnEvaluator::new(net);
        let x0 = ev.total_throughput(&problem, &initial).expect("initial");
        b.iter(|| sa.run_trial(&problem, &initial, x0, &mut ev, 1))
    });
    group.bench_function("simulation_evaluator_h2000", |b| {
        let mut ev = SimEvaluator::new(SimConfig::new(2_000.0, 5));
        let x0 = ev.total_throughput(&problem, &initial).expect("initial");
        b.iter(|| sa.run_trial(&problem, &initial, x0, &mut ev, 1))
    });
    group.bench_function("decomposition_evaluator", |b| {
        let mut ev = ApproxEvaluator::default();
        let x0 = ev.total_throughput(&problem, &initial).expect("initial");
        b.iter(|| sa.run_trial(&problem, &initial, x0, &mut ev, 1))
    });
    group.finish();
}

fn bench_move_generation(c: &mut Criterion) {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let gen = ProblemGenerator::new(ProblemParams::paper_default(40));
    let problem = gen.generate(1).expect("problem");
    let initial = problem.initial_placement().expect("initial");
    let sa = SimulatedAnnealing::new(SaConfig::paper_default());
    c.bench_function("sa_propose_move_d40", |b| {
        let mut rng = SmallRng::seed_from_u64(0);
        b.iter(|| sa.propose(&problem, &initial, &mut rng))
    });
}

criterion_group!(benches, bench_sa_trial, bench_move_generation);
criterion_main!(benches);
