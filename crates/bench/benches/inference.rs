//! Criterion bench: per-graph prediction time of ChainNet, GIN and GAT
//! against ground-truth simulation time, across graph sizes.
//!
//! This substantiates the paper's speed claims: "the average prediction
//! time per graph is approximately 0.01 seconds" (Section VIII-B3) and
//! the GNN-vs-simulation gap that powers the Fig. 14 fixed-time results.

use chainnet::baselines::{BaselineGnn, BaselineKind};
use chainnet::config::ModelConfig;
use chainnet::graph::PlacementGraph;
use chainnet::model::{ChainNet, Surrogate};
use chainnet_datagen::typesets::{NetworkGenerator, NetworkParams};
use chainnet_qsim::sim::{SimConfig, Simulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn paper_cfg() -> ModelConfig {
    let mut cfg = ModelConfig::paper_chainnet();
    cfg.hidden = 64;
    cfg
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    group.sample_size(20);

    for (label, params, seed) in [
        ("type_i", NetworkParams::type_i(), 7u64),
        ("type_ii", NetworkParams::type_ii(), 9u64),
    ] {
        let gen = NetworkGenerator::new(params);
        let model = gen.generate(seed).expect("generate");
        let chainnet = ChainNet::new(paper_cfg(), 0);
        let gat = BaselineGnn::new(BaselineKind::Gat, paper_cfg(), 0);
        let gin = BaselineGnn::new(BaselineKind::Gin, ModelConfig::paper_gin(), 0);

        let graph = PlacementGraph::from_model(&model, paper_cfg().feature_mode);
        group.bench_with_input(
            BenchmarkId::new("chainnet_predict", label),
            &graph,
            |b, g| b.iter(|| chainnet.predict(g)),
        );
        group.bench_with_input(BenchmarkId::new("gat_predict", label), &graph, |b, g| {
            b.iter(|| gat.predict(g))
        });
        group.bench_with_input(BenchmarkId::new("gin_predict", label), &graph, |b, g| {
            b.iter(|| gin.predict(g))
        });
        // Ground-truth simulation at the dataset-labeling horizon.
        group.bench_with_input(BenchmarkId::new("simulate_h2000", label), &model, |b, m| {
            let cfg = SimConfig::new(2_000.0, 1);
            b.iter(|| Simulator::new().run(m, &cfg).expect("sim"))
        });
    }
    group.finish();
}

fn bench_graph_construction(c: &mut Criterion) {
    let gen = NetworkGenerator::new(NetworkParams::type_ii());
    let model = gen.generate(3).expect("generate");
    c.bench_function("graph_construction_type_ii", |b| {
        b.iter(|| PlacementGraph::from_model(&model, ModelConfig::paper_chainnet().feature_mode))
    });
}

criterion_group!(benches, bench_inference, bench_graph_construction);
criterion_main!(benches);
