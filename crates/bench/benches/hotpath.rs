//! Criterion benches for the hot paths: the zero-alloc qsim event loop,
//! the blocked matmul kernel (naive vs blocked, f64 vs f32), SA
//! candidate evaluation (sequential vs the batched neighborhood driver),
//! and the PR-10 batched training step (per-graph f64 tape passes vs one
//! padded multi-graph tape pass in f32/f64). `CRITERION_QUICK=1`
//! shortens every run for CI smoke mode; the machine-readable numbers
//! live in `BENCH_PR5.json` / `BENCH_PR10.json` (see `hotpath_report`
//! and `train_report`).

use chainnet::config::ModelConfig;
use chainnet::graph::PlacementGraph;
use chainnet::graph_batch::GraphBatch;
use chainnet::model::{ChainNet, Surrogate};
use chainnet_neural::params::ParamStore;
use chainnet_neural::scalar::Scalar;
use chainnet_neural::tape::Tape;
use chainnet_neural::tensor::Tensor;
use chainnet_obs::Obs;
use chainnet_placement::evaluator::GnnEvaluator;
use chainnet_placement::problem::PlacementProblem;
use chainnet_placement::sa::{SaConfig, SimulatedAnnealing};
use chainnet_qsim::model::{Device, Fragment, Placement, ServiceChain, SystemModel};
use chainnet_qsim::sim::{SimConfig, Simulator};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The shared-device multi-chain scenario from `hotpath_report`.
fn scenario() -> SystemModel {
    let devices = vec![
        Device::new(6.0, 1.0).unwrap(),
        Device::new(4.0, 2.0).unwrap(),
        Device::new(5.0, 1.5).unwrap(),
    ];
    let chains = vec![
        ServiceChain::new(
            0.6,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(2.0, 2.0).unwrap(),
            ],
        )
        .unwrap(),
        ServiceChain::new(
            0.4,
            vec![
                Fragment::new(1.0, 1.5).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(2.0, 0.5).unwrap(),
            ],
        )
        .unwrap(),
    ];
    SystemModel::new(
        devices,
        chains,
        Placement::new(vec![vec![0, 1], vec![1, 2, 0]]),
    )
    .unwrap()
}

fn bench_sim_step_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_sim_events");
    group.sample_size(10);
    let model = scenario();
    let horizon = 10_000.0;
    let cfg = SimConfig::new(horizon, 42);
    let events = Simulator::new().run(&model, &cfg).expect("sim").events;
    group.throughput(Throughput::Elements(events));
    group.bench_function("multi_chain_10k_units", |b| {
        b.iter(|| Simulator::new().run(&model, &cfg).expect("sim"))
    });
    group.finish();
}

fn random_matrix<S: Scalar>(rows: usize, cols: usize, rng: &mut SmallRng) -> Tensor<S> {
    Tensor::matrix(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| S::from_f64(rng.gen_range(-1.0..1.0)))
            .collect(),
    )
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_matmul");
    group.sample_size(10);
    let n = 256;
    let mut rng = SmallRng::seed_from_u64(1);
    let a: Tensor = random_matrix(n, n, &mut rng);
    let b: Tensor = random_matrix(n, n, &mut rng);
    let a32: Tensor<f32> = random_matrix(n, n, &mut rng);
    let b32: Tensor<f32> = random_matrix(n, n, &mut rng);
    // Elements = FLOPs so criterion's element rate reads as FLOP/s.
    group.throughput(Throughput::Elements((2 * n * n * n) as u64));
    group.bench_function("naive_256", |bch| bch.iter(|| a.matmul_naive(&b)));
    group.bench_function("blocked_256", |bch| bch.iter(|| a.matmul(&b)));
    group.bench_function("blocked_256_f32", |bch| bch.iter(|| a32.matmul(&b32)));
    group.finish();
}

/// Heterogeneous mini-batch of placement graphs with synthetic targets,
/// the training-step workload for `train_batched_forward`.
fn train_workload(
    batch: usize,
) -> (
    ChainNet,
    Vec<(PlacementGraph, Vec<chainnet::data::ChainTargets>)>,
) {
    let net = ChainNet::new(ModelConfig::small(), 3);
    let placements = [
        vec![vec![0, 1], vec![1, 2, 0]],
        vec![vec![1, 0, 2]],
        vec![vec![0, 1], vec![2, 1], vec![1, 1, 0]],
        vec![vec![2, 2]],
    ];
    let data = (0..batch)
        .map(|s| {
            let placement = placements[s % placements.len()].clone();
            let devices = vec![
                Device::new(20.0, 1.0).unwrap(),
                Device::new(20.0, 2.0).unwrap(),
                Device::new(20.0, 1.5).unwrap(),
            ];
            let chains = placement
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let frags = (0..p.len())
                        .map(|j| Fragment::new(1.0, 1.0 + 0.3 * j as f64).unwrap())
                        .collect();
                    ServiceChain::new(0.3 + 0.05 * ((s + i) % 7) as f64, frags).unwrap()
                })
                .collect();
            let model = SystemModel::new(devices, chains, Placement::new(placement)).unwrap();
            let graph = PlacementGraph::from_model(&model, ModelConfig::small().feature_mode);
            let targets = graph
                .chains
                .iter()
                .map(|c| chainnet::data::ChainTargets {
                    throughput: c.arrival_rate * 0.8,
                    latency: c.total_processing * 1.6,
                })
                .collect();
            (graph, targets)
        })
        .collect();
    (net, data)
}

/// One batched-training step (forward + backward + grad accumulation) in
/// a given dtype, against the sequential per-graph f64 tape loop it
/// replaces. Throughput is in graphs (samples) per second.
fn bench_train_batched_forward(c: &mut Criterion) {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let batch = if quick { 8 } else { 32 };
    let mut group = c.benchmark_group("hotpath_train_step");
    group.sample_size(10);
    let (mut net, data) = train_workload(batch);
    let graphs: Vec<&PlacementGraph> = data.iter().map(|(g, _)| g).collect();
    let targets: Vec<&[chainnet::data::ChainTargets]> =
        data.iter().map(|(_, t)| t.as_slice()).collect();
    let packed = GraphBatch::pack(&graphs, &targets, net.config().target_mode);
    group.throughput(Throughput::Elements(batch as u64));

    group.bench_function("sequential_f64", |b| {
        let mut tape = Tape::new();
        b.iter(|| {
            for (g, t) in &data {
                tape.reset();
                let loss = net.loss_on_graph(&mut tape, g, t);
                tape.backward(loss);
            }
            tape.accumulate_param_grads(net.params_mut());
            net.params_mut().zero_grads();
        })
    });
    group.bench_function("batched_f64", |b| {
        let mut tape = Tape::new();
        let mut store: ParamStore = net.params().cast();
        b.iter(|| {
            tape.reset();
            let loss = net.batched_loss(&mut tape, &store, &packed);
            tape.backward(loss);
            tape.accumulate_param_grads(&mut store);
            store.zero_grads();
        })
    });
    group.bench_function("batched_f32", |b| {
        let mut tape: Tape<f32> = Tape::new();
        let mut store: ParamStore<f32> = net.params().cast();
        b.iter(|| {
            tape.reset();
            let loss = net.batched_loss(&mut tape, &store, &packed);
            tape.backward(loss);
            tape.accumulate_param_grads(&mut store);
            store.zero_grads();
        })
    });
    group.finish();
}

fn bench_sa_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_sa_evals");
    group.sample_size(10);
    let model = scenario();
    let problem = PlacementProblem::new(model.devices().to_vec(), model.chains().to_vec()).unwrap();
    let initial = problem.initial_placement().expect("feasible");
    let net = ChainNet::new(ModelConfig::small(), 3);
    let steps = 20;
    let cfg = SaConfig::paper_default().with_max_steps(steps).with_seed(9);
    group.throughput(Throughput::Elements(steps as u64));
    group.bench_function("surrogate_sequential", |b| {
        b.iter(|| {
            let mut evaluator = GnnEvaluator::new(net.clone());
            SimulatedAnnealing::new(cfg).optimize(&problem, &initial, &mut evaluator, 1)
        })
    });
    group.bench_function("surrogate_batched_k8", |b| {
        b.iter(|| {
            let mut evaluator = GnnEvaluator::new(net.clone());
            SimulatedAnnealing::new(cfg).optimize_neighborhood_observed(
                &problem,
                &initial,
                &mut evaluator,
                1,
                8,
                &Obs::disabled(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_step_throughput,
    bench_matmul,
    bench_sa_evaluation,
    bench_train_batched_forward
);
criterion_main!(benches);
