//! Criterion benches for the three PR-5 hot paths: the zero-alloc qsim
//! event loop, the blocked matmul kernel (against the retained naive
//! reference), and SA candidate evaluation (sequential vs the batched
//! neighborhood driver). `CRITERION_QUICK=1` shortens every run for CI
//! smoke mode; the machine-readable numbers live in `BENCH_PR5.json`
//! (see `hotpath_report`).

use chainnet::config::ModelConfig;
use chainnet::model::ChainNet;
use chainnet_neural::tensor::Tensor;
use chainnet_obs::Obs;
use chainnet_placement::evaluator::GnnEvaluator;
use chainnet_placement::problem::PlacementProblem;
use chainnet_placement::sa::{SaConfig, SimulatedAnnealing};
use chainnet_qsim::model::{Device, Fragment, Placement, ServiceChain, SystemModel};
use chainnet_qsim::sim::{SimConfig, Simulator};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The shared-device multi-chain scenario from `hotpath_report`.
fn scenario() -> SystemModel {
    let devices = vec![
        Device::new(6.0, 1.0).unwrap(),
        Device::new(4.0, 2.0).unwrap(),
        Device::new(5.0, 1.5).unwrap(),
    ];
    let chains = vec![
        ServiceChain::new(
            0.6,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(2.0, 2.0).unwrap(),
            ],
        )
        .unwrap(),
        ServiceChain::new(
            0.4,
            vec![
                Fragment::new(1.0, 1.5).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(2.0, 0.5).unwrap(),
            ],
        )
        .unwrap(),
    ];
    SystemModel::new(
        devices,
        chains,
        Placement::new(vec![vec![0, 1], vec![1, 2, 0]]),
    )
    .unwrap()
}

fn bench_sim_step_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_sim_events");
    group.sample_size(10);
    let model = scenario();
    let horizon = 10_000.0;
    let cfg = SimConfig::new(horizon, 42);
    let events = Simulator::new().run(&model, &cfg).expect("sim").events;
    group.throughput(Throughput::Elements(events));
    group.bench_function("multi_chain_10k_units", |b| {
        b.iter(|| Simulator::new().run(&model, &cfg).expect("sim"))
    });
    group.finish();
}

fn random_matrix(rows: usize, cols: usize, rng: &mut SmallRng) -> Tensor {
    Tensor::matrix(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_matmul");
    group.sample_size(10);
    let n = 256;
    let mut rng = SmallRng::seed_from_u64(1);
    let a = random_matrix(n, n, &mut rng);
    let b = random_matrix(n, n, &mut rng);
    // Elements = FLOPs so criterion's element rate reads as FLOP/s.
    group.throughput(Throughput::Elements((2 * n * n * n) as u64));
    group.bench_function("naive_256", |bch| bch.iter(|| a.matmul_naive(&b)));
    group.bench_function("blocked_256", |bch| bch.iter(|| a.matmul(&b)));
    group.finish();
}

fn bench_sa_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_sa_evals");
    group.sample_size(10);
    let model = scenario();
    let problem = PlacementProblem::new(model.devices().to_vec(), model.chains().to_vec()).unwrap();
    let initial = problem.initial_placement().expect("feasible");
    let net = ChainNet::new(ModelConfig::small(), 3);
    let steps = 20;
    let cfg = SaConfig::paper_default().with_max_steps(steps).with_seed(9);
    group.throughput(Throughput::Elements(steps as u64));
    group.bench_function("surrogate_sequential", |b| {
        b.iter(|| {
            let mut evaluator = GnnEvaluator::new(net.clone());
            SimulatedAnnealing::new(cfg).optimize(&problem, &initial, &mut evaluator, 1)
        })
    });
    group.bench_function("surrogate_batched_k8", |b| {
        b.iter(|| {
            let mut evaluator = GnnEvaluator::new(net.clone());
            SimulatedAnnealing::new(cfg).optimize_neighborhood_observed(
                &problem,
                &initial,
                &mut evaluator,
                1,
                8,
                &Obs::disabled(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_step_throughput,
    bench_matmul,
    bench_sa_evaluation
);
criterion_main!(benches);
