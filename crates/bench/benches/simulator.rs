//! Criterion bench: raw event rate of the discrete-event simulator and
//! simulation cost as a function of horizon — the denominator of every
//! "GNN is faster than simulation" claim in the paper.

use chainnet_datagen::typesets::{NetworkGenerator, NetworkParams};
use chainnet_qsim::model::{Device, Fragment, Placement, ServiceChain, SystemModel};
use chainnet_qsim::sim::{SimConfig, Simulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn mm1k_model(lambda: f64) -> SystemModel {
    let devices = vec![Device::new(20.0, 1.0).unwrap()];
    let chains = vec![ServiceChain::new(lambda, vec![Fragment::new(1.0, 1.0).unwrap()]).unwrap()];
    SystemModel::new(devices, chains, Placement::new(vec![vec![0]])).unwrap()
}

fn bench_event_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsim_event_rate");
    let model = mm1k_model(0.9);
    let cfg = SimConfig::new(50_000.0, 1);
    // ~2 events per arrival at lambda = 0.9 over the horizon.
    group.throughput(Throughput::Elements(2 * 45_000));
    group.sample_size(10);
    group.bench_function("mm1k_50k_units", |b| {
        b.iter(|| Simulator::new().run(&model, &cfg).expect("sim"))
    });
    group.finish();
}

fn bench_horizon_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsim_horizon");
    group.sample_size(10);
    let gen = NetworkGenerator::new(NetworkParams::type_i());
    let model = gen.generate(11).expect("generate");
    for horizon in [500.0, 2_000.0, 8_000.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(horizon as u64),
            &horizon,
            |b, &h| {
                let cfg = SimConfig::new(h, 2);
                b.iter(|| Simulator::new().run(&model, &cfg).expect("sim"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_rate, bench_horizon_scaling);
criterion_main!(benches);
