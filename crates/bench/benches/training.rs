//! Criterion bench: one training step (forward + backward + Adam) per
//! model family, and the autodiff tape's raw op throughput.

use chainnet::baselines::{BaselineGnn, BaselineKind};
use chainnet::config::ModelConfig;
use chainnet::data::ChainTargets;
use chainnet::graph::PlacementGraph;
use chainnet::model::{ChainNet, Surrogate};
use chainnet_datagen::typesets::{NetworkGenerator, NetworkParams};
use chainnet_neural::optim::Adam;
use chainnet_neural::tape::Tape;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_step");
    group.sample_size(20);
    let gen = NetworkGenerator::new(NetworkParams::type_i());
    let model = gen.generate(5).expect("generate");
    let cfg = ModelConfig::paper_chainnet();
    let graph = PlacementGraph::from_model(&model, cfg.feature_mode);
    let targets: Vec<ChainTargets> = model
        .chains()
        .iter()
        .map(|ch| ChainTargets {
            throughput: 0.8 * ch.arrival_rate,
            latency: 2.0,
        })
        .collect();

    let mut chainnet = ChainNet::new(cfg, 1);
    group.bench_function("chainnet", |b| {
        let mut adam = Adam::new(1e-3);
        b.iter(|| {
            let mut tape = Tape::new();
            let loss = chainnet.loss_on_graph(&mut tape, &graph, &targets);
            tape.backward(loss);
            tape.accumulate_param_grads(chainnet.params_mut());
            adam.step(chainnet.params_mut());
        })
    });

    let mut gat = BaselineGnn::new(BaselineKind::Gat, cfg, 1);
    group.bench_function("gat", |b| {
        let mut adam = Adam::new(1e-3);
        b.iter(|| {
            let mut tape = Tape::new();
            let loss = gat.loss_on_graph(&mut tape, &graph, &targets);
            tape.backward(loss);
            tape.accumulate_param_grads(gat.params_mut());
            adam.step(gat.params_mut());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training_step);
criterion_main!(benches);
