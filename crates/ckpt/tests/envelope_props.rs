//! Property tests for the checkpoint envelope (satellite of ISSUE 4):
//! encode → decode is the identity for arbitrary payloads, and any
//! single-byte corruption anywhere in the file — header or payload —
//! is detected before a single payload byte reaches a decoder.

use chainnet_ckpt::envelope::{decode, encode, HEADER_LEN};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round trip: decode(encode(v, p)) == (v, p) for arbitrary
    /// versions and payload bytes (including empty payloads).
    #[test]
    fn encode_decode_round_trip(
        version in 0u32..0xFFFF_FFFF,
        payload in proptest::collection::vec(0u16..256, 0..512)
    ) {
        let payload: Vec<u8> = payload.into_iter().map(|b| b as u8).collect();
        let enc = encode(version, &payload);
        prop_assert_eq!(enc.len(), HEADER_LEN + payload.len());
        match decode(&enc) {
            Ok((v, p)) => {
                prop_assert_eq!(v, version);
                prop_assert_eq!(p, &payload[..]);
            }
            Err(e) => prop_assert!(false, "fresh envelope rejected: {e}"),
        }
    }

    /// Corrupting any single byte (any nonzero xor mask, so all 255
    /// possible single-byte changes are reachable) makes decode fail:
    /// the payload is never handed back as if valid.
    #[test]
    fn any_single_byte_corruption_is_detected(
        version in 0u32..0xFFFF_FFFF,
        payload in proptest::collection::vec(0u16..256, 0..256),
        pos_seed in 0u64..u64::MAX,
        mask in 1u16..256
    ) {
        let payload: Vec<u8> = payload.into_iter().map(|b| b as u8).collect();
        let enc = encode(version, &payload);
        let pos = (pos_seed % enc.len() as u64) as usize;
        let mut bad = enc.clone();
        bad[pos] ^= mask as u8;
        prop_assert!(
            decode(&bad).is_err(),
            "xor {mask:#04x} at byte {pos} of {} went undetected",
            enc.len()
        );
    }

    /// Truncating the file at any point is detected.
    #[test]
    fn any_truncation_is_detected(
        version in 0u32..0xFFFF_FFFF,
        payload in proptest::collection::vec(0u16..256, 1..256),
        cut_seed in 0u64..u64::MAX
    ) {
        let payload: Vec<u8> = payload.into_iter().map(|b| b as u8).collect();
        let enc = encode(version, &payload);
        let cut = (cut_seed % enc.len() as u64) as usize;
        prop_assert!(decode(&enc[..cut]).is_err(), "truncation at {cut} went undetected");
    }
}
