//! Crash-safe file replacement: temp file + fsync + rename.
//!
//! The invariant: at every instant, `path` either holds its previous
//! complete contents or the new complete contents — never a torn
//! prefix. A crash mid-write leaves at worst a stale `.tmp` sibling,
//! which later writes overwrite.

use crate::error::CkptError;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Atomically replace `path` with `bytes`.
///
/// Writes to a hidden temp file in the same directory (same
/// filesystem, so the rename is atomic), fsyncs the file, renames it
/// over `path`, then fsyncs the parent directory so the rename itself
/// is durable. The parent-directory fsync is best-effort: some
/// platforms refuse to open directories, and the rename is already
/// atomic without it.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    let tmp = temp_sibling(path)?;
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| CkptError::io("create temp file", &tmp, &e))?;
    file.write_all(bytes)
        .map_err(|e| CkptError::io("write temp file", &tmp, &e))?;
    file.sync_all()
        .map_err(|e| CkptError::io("fsync temp file", &tmp, &e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| CkptError::io("rename temp file", path, &e))?;
    if let Some(parent) = nonempty_parent(path) {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// The temp-file path used for an atomic write of `path`:
/// `.<file_name>.tmp.<pid>` in the same directory. The pid suffix
/// keeps concurrent processes writing the same target from clobbering
/// each other's temp files.
fn temp_sibling(path: &Path) -> Result<PathBuf, CkptError> {
    let name = path.file_name().ok_or_else(|| CkptError::Io {
        op: "resolve temp file",
        path: path.to_path_buf(),
        kind: std::io::ErrorKind::InvalidInput,
        message: "target path has no file name".to_string(),
    })?;
    let tmp_name = format!(".{}.tmp.{}", name.to_string_lossy(), std::process::id());
    Ok(match nonempty_parent(path) {
        Some(parent) => parent.join(tmp_name),
        None => PathBuf::from(tmp_name),
    })
}

fn nonempty_parent(path: &Path) -> Option<&Path> {
    path.parent().filter(|p| !p.as_os_str().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chainnet-ckpt-atomic-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("replace");
        let path = dir.join("out.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        // No temp litter after a successful write.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_a_typed_error() {
        let dir = tmp_dir("missing");
        let path = dir.join("no-such-subdir").join("out.bin");
        let err = atomic_write(&path, b"x").unwrap_err();
        assert!(matches!(err, CkptError::Io { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rootless_path_errors_cleanly() {
        let err = atomic_write(Path::new("/"), b"x").unwrap_err();
        assert!(matches!(err, CkptError::Io { .. }));
    }
}
