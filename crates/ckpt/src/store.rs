//! A directory of sequenced, checksummed checkpoints for one job.
//!
//! Files are named `<prefix>-<seq>.ckpt`, where `seq` is a
//! monotonically increasing u64 chosen by the caller (epoch number,
//! global SA step, shard index). Recovery scans in descending
//! sequence order: a file that fails envelope verification or payload
//! decoding is **quarantined** (renamed to `<name>.corrupt`) and the
//! scan falls back to the next most recent checkpoint — it never
//! panics, never deletes data, and never decodes unverified bytes.

use crate::atomic::atomic_write;
use crate::envelope;
use crate::error::CkptError;
use chainnet_obs::Obs;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fs;
use std::path::{Path, PathBuf};

/// Suffix appended to quarantined files.
pub const CORRUPT_SUFFIX: &str = ".corrupt";

/// File extension of live checkpoints.
pub const CKPT_EXTENSION: &str = "ckpt";

/// A checkpoint store bound to one directory, file prefix and schema
/// version.
///
/// Different jobs sharing a directory use different prefixes
/// (`train`, `sa`, `shard`); each job bumps its own schema version
/// when its state layout changes.
#[derive(Debug, Clone)]
pub struct CkptStore {
    dir: PathBuf,
    prefix: String,
    schema_version: u32,
    obs: Obs,
}

impl CkptStore {
    /// Open (creating if needed) a store without instrumentation.
    pub fn open(
        dir: impl Into<PathBuf>,
        prefix: &str,
        schema_version: u32,
    ) -> Result<Self, CkptError> {
        Self::open_observed(dir, prefix, schema_version, &Obs::disabled())
    }

    /// Open (creating if needed) a store that reports `ckpt.*`
    /// metrics through `obs`.
    pub fn open_observed(
        dir: impl Into<PathBuf>,
        prefix: &str,
        schema_version: u32,
        obs: &Obs,
    ) -> Result<Self, CkptError> {
        let dir = dir.into();
        if dir.exists() {
            if !dir.is_dir() {
                return Err(CkptError::NotADirectory { path: dir });
            }
        } else {
            fs::create_dir_all(&dir).map_err(|e| CkptError::io("create dir", &dir, &e))?;
        }
        Ok(CkptStore {
            dir,
            prefix: prefix.to_string(),
            schema_version,
            obs: obs.clone(),
        })
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The schema version this store writes and accepts.
    pub fn schema_version(&self) -> u32 {
        self.schema_version
    }

    /// Path of the checkpoint with sequence number `seq`.
    pub fn path_of(&self, seq: u64) -> PathBuf {
        self.dir
            .join(format!("{}-{seq:08}.{CKPT_EXTENSION}", self.prefix))
    }

    /// Record that a run successfully resumed from this store
    /// (`ckpt.resumes`). Called internally by [`Self::load_latest_state`];
    /// shard-style consumers that use per-sequence loads call it once
    /// per resumed run instead.
    pub fn note_resume(&self) {
        if self.obs.is_enabled() {
            self.obs.registry.counter("ckpt.resumes").inc();
        }
    }

    /// Durably write checkpoint `seq` with a raw payload.
    pub fn save(&self, seq: u64, payload: &[u8]) -> Result<PathBuf, CkptError> {
        let bytes = envelope::encode(self.schema_version, payload);
        let path = self.path_of(seq);
        atomic_write(&path, &bytes)?;
        if self.obs.is_enabled() {
            self.obs.registry.counter("ckpt.writes").inc();
            self.obs
                .registry
                .counter("ckpt.bytes_written")
                .add(bytes.len() as u64);
        }
        Ok(path)
    }

    /// Durably write checkpoint `seq` with a JSON-serialized state.
    pub fn save_state<T: Serialize>(&self, seq: u64, state: &T) -> Result<PathBuf, CkptError> {
        let payload = serde_json::to_string(state).map_err(|e| CkptError::Encode {
            message: e.to_string(),
        })?;
        self.save(seq, payload.as_bytes())
    }

    /// Sequence numbers of live checkpoints in ascending order.
    ///
    /// Files that do not match `<prefix>-<seq>.ckpt` (quarantined
    /// files, temp litter, other prefixes) are ignored. The listing
    /// is sorted numerically so recovery order is deterministic
    /// regardless of directory iteration order.
    pub fn list(&self) -> Result<Vec<u64>, CkptError> {
        let entries =
            fs::read_dir(&self.dir).map_err(|e| CkptError::io("read dir", &self.dir, &e))?;
        let mut seqs = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| CkptError::io("read dir entry", &self.dir, &e))?;
            let name = entry.file_name();
            if let Some(seq) = self.parse_seq(&name.to_string_lossy()) {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        seqs.dedup();
        Ok(seqs)
    }

    fn parse_seq(&self, name: &str) -> Option<u64> {
        let stem = name
            .strip_prefix(self.prefix.as_str())?
            .strip_prefix('-')?
            .strip_suffix(".ckpt")?;
        if stem.is_empty() || !stem.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        stem.parse::<u64>().ok()
    }

    /// Load and verify checkpoint `seq`, decoding its payload into `T`.
    ///
    /// Returns `Ok(None)` when the file is absent, or when it exists
    /// but is unusable — corrupt (quarantined to `*.corrupt`),
    /// undecodable (also quarantined), or written by a different
    /// schema version (left in place, skipped). Only environmental
    /// I/O failures surface as errors.
    pub fn load_state<T: DeserializeOwned>(&self, seq: u64) -> Result<Option<T>, CkptError> {
        let path = self.path_of(seq);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CkptError::io("read", &path, &e)),
        };
        match self.verify_and_decode::<T>(&bytes) {
            Verified::Good(state) => Ok(Some(state)),
            Verified::Corrupt => {
                self.quarantine(&path);
                Ok(None)
            }
            Verified::WrongVersion => Ok(None),
        }
    }

    /// Load the most recent verified checkpoint, decoding into `T`.
    ///
    /// Scans sequence numbers in descending order; corrupt or
    /// undecodable files are quarantined and the scan falls back to
    /// the next most recent candidate. Returns `Ok(None)` when no
    /// usable checkpoint remains. On success the `ckpt.resumes`
    /// counter is bumped.
    pub fn load_latest_state<T: DeserializeOwned>(&self) -> Result<Option<(u64, T)>, CkptError> {
        let mut seqs = self.list()?;
        while let Some(seq) = seqs.pop() {
            let path = self.path_of(seq);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                // Vanished between listing and reading: fall back.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(CkptError::io("read", &path, &e)),
            };
            match self.verify_and_decode::<T>(&bytes) {
                Verified::Good(state) => {
                    self.note_resume();
                    return Ok(Some((seq, state)));
                }
                Verified::Corrupt => self.quarantine(&path),
                Verified::WrongVersion => {}
            }
        }
        Ok(None)
    }

    /// Like [`Self::load_latest_state`] but an absent checkpoint is the
    /// typed [`CkptError::NoCheckpoint`] — the right shape for
    /// `--resume`, where "nothing to resume" is a user-facing error.
    pub fn resume_latest_state<T: DeserializeOwned>(&self) -> Result<(u64, T), CkptError> {
        self.load_latest_state()?.ok_or(CkptError::NoCheckpoint {
            dir: self.dir.clone(),
        })
    }

    fn verify_and_decode<T: DeserializeOwned>(&self, bytes: &[u8]) -> Verified<T> {
        let (version, payload) = match envelope::decode(bytes) {
            Ok(v) => v,
            Err(_reason) => return Verified::Corrupt,
        };
        if version != self.schema_version {
            return Verified::WrongVersion;
        }
        let text = match std::str::from_utf8(payload) {
            Ok(t) => t,
            Err(_e) => return Verified::Corrupt,
        };
        match serde_json::from_str::<T>(text) {
            Ok(state) => Verified::Good(state),
            Err(_e) => Verified::Corrupt,
        }
    }

    /// Rename a bad file to `<name>.corrupt` so it is preserved for
    /// inspection but never re-read. Best-effort: if the rename
    /// itself fails the file is simply skipped this run.
    fn quarantine(&self, path: &Path) {
        if self.obs.is_enabled() {
            self.obs.registry.counter("ckpt.corrupt_detected").inc();
        }
        let mut quarantined = path.as_os_str().to_os_string();
        quarantined.push(CORRUPT_SUFFIX);
        let _ = fs::rename(path, PathBuf::from(quarantined));
    }
}

enum Verified<T> {
    Good(T),
    Corrupt,
    WrongVersion,
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct DemoState {
        epoch: u64,
        loss: f64,
        tag: String,
    }

    fn demo(epoch: u64) -> DemoState {
        DemoState {
            epoch,
            loss: 0.5 / (epoch + 1) as f64,
            tag: "demo".to_string(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chainnet-ckpt-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trip_and_listing() {
        let dir = tmp_dir("roundtrip");
        let store = CkptStore::open(&dir, "train", 1).unwrap();
        assert_eq!(store.list().unwrap(), Vec::<u64>::new());
        for e in [1u64, 2, 3] {
            store.save_state(e, &demo(e)).unwrap();
        }
        assert_eq!(store.list().unwrap(), vec![1, 2, 3]);
        let (seq, state): (u64, DemoState) = store.load_latest_state().unwrap().unwrap();
        assert_eq!(seq, 3);
        assert_eq!(state, demo(3));
        let two: DemoState = store.load_state(2).unwrap().unwrap();
        assert_eq!(two, demo(2));
        assert!(store.load_state::<DemoState>(9).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn opening_a_file_path_is_not_a_directory() {
        let dir = tmp_dir("notadir");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("plain.txt");
        fs::write(&file, b"x").unwrap();
        let err = CkptStore::open(&file, "train", 1).unwrap_err();
        assert!(matches!(err, CkptError::NotADirectory { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_empty_dir_is_typed_no_checkpoint() {
        let dir = tmp_dir("empty");
        let store = CkptStore::open(&dir, "train", 1).unwrap();
        let err = store.resume_latest_state::<DemoState>().unwrap_err();
        assert!(matches!(err, CkptError::NoCheckpoint { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_quarantines_and_falls_back() {
        let dir = tmp_dir("bitflip");
        let obs = Obs::enabled();
        let store = CkptStore::open_observed(&dir, "train", 1, &obs).unwrap();
        store.save_state(1, &demo(1)).unwrap();
        store.save_state(2, &demo(2)).unwrap();

        // Flip one payload bit in the newest checkpoint.
        let latest = store.path_of(2);
        let mut bytes = fs::read(&latest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        fs::write(&latest, &bytes).unwrap();

        let (seq, state): (u64, DemoState) = store.load_latest_state().unwrap().unwrap();
        assert_eq!(seq, 1);
        assert_eq!(state, demo(1));
        // The bad file was preserved under quarantine, not deleted.
        assert!(!latest.exists());
        let mut q = latest.into_os_string();
        q.push(CORRUPT_SUFFIX);
        assert!(PathBuf::from(q).exists());
        let snap = obs.registry.snapshot();
        assert_eq!(snap.counters["ckpt.corrupt_detected"], 1);
        assert_eq!(snap.counters["ckpt.resumes"], 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_quarantines_and_falls_back() {
        let dir = tmp_dir("truncate");
        let store = CkptStore::open(&dir, "sa", 3).unwrap();
        store.save_state(10, &demo(10)).unwrap();
        store.save_state(20, &demo(20)).unwrap();
        let latest = store.path_of(20);
        let bytes = fs::read(&latest).unwrap();
        fs::write(&latest, &bytes[..bytes.len() / 2]).unwrap();

        let (seq, state): (u64, DemoState) = store.load_latest_state().unwrap().unwrap();
        assert_eq!(seq, 10);
        assert_eq!(state, demo(10));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn all_checkpoints_corrupt_returns_none_never_panics() {
        let dir = tmp_dir("allbad");
        let store = CkptStore::open(&dir, "train", 1).unwrap();
        for e in [1u64, 2] {
            store.save_state(e, &demo(e)).unwrap();
            let p = store.path_of(e);
            fs::write(&p, b"garbage").unwrap();
        }
        assert!(store.load_latest_state::<DemoState>().unwrap().is_none());
        assert!(matches!(
            store.resume_latest_state::<DemoState>(),
            Err(CkptError::NoCheckpoint { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_schema_version_is_skipped_not_quarantined() {
        let dir = tmp_dir("version");
        let v1 = CkptStore::open(&dir, "train", 1).unwrap();
        v1.save_state(5, &demo(5)).unwrap();
        let v2 = CkptStore::open(&dir, "train", 2).unwrap();
        v2.save_state(6, &demo(6)).unwrap();

        // A v1 reader skips the v2 file and lands on its own.
        let (seq, state): (u64, DemoState) = v1.load_latest_state().unwrap().unwrap();
        assert_eq!(seq, 5);
        assert_eq!(state, demo(5));
        // The skipped file is untouched.
        assert!(v2.path_of(6).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefixes_are_isolated() {
        let dir = tmp_dir("prefix");
        let train = CkptStore::open(&dir, "train", 1).unwrap();
        let sa = CkptStore::open(&dir, "sa", 1).unwrap();
        train.save_state(7, &demo(7)).unwrap();
        assert!(sa.load_latest_state::<DemoState>().unwrap().is_none());
        assert_eq!(train.list().unwrap(), vec![7]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_metrics_are_counted() {
        let dir = tmp_dir("metrics");
        let obs = Obs::enabled();
        let store = CkptStore::open_observed(&dir, "train", 1, &obs).unwrap();
        let p1 = store.save_state(1, &demo(1)).unwrap();
        let p2 = store.save_state(2, &demo(2)).unwrap();
        let expect = (fs::metadata(&p1).unwrap().len() + fs::metadata(&p2).unwrap().len()) as u64;
        let snap = obs.registry.snapshot();
        assert_eq!(snap.counters["ckpt.writes"], 2);
        assert_eq!(snap.counters["ckpt.bytes_written"], expect);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn weird_file_names_are_ignored() {
        let dir = tmp_dir("names");
        let store = CkptStore::open(&dir, "train", 1).unwrap();
        store.save_state(3, &demo(3)).unwrap();
        for name in [
            "train-0000000x.ckpt",
            "train-.ckpt",
            "train-00000003.ckpt.corrupt",
            "other-00000001.ckpt",
            ".train-00000009.ckpt.tmp.123",
            "train.ckpt",
        ] {
            fs::write(dir.join(name), b"junk").unwrap();
        }
        assert_eq!(store.list().unwrap(), vec![3]);
        let _ = fs::remove_dir_all(&dir);
    }
}
