//! The self-describing on-disk envelope wrapping every checkpoint.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic            b"CNCKPT01"
//! 8       4     schema_version   u32
//! 12      8     payload_len      u64
//! 20      4     crc32            u32, IEEE, over bytes 8..20 ++ payload
//! 24      n     payload
//! ```
//!
//! The CRC covers the version and length fields in addition to the
//! payload, so *any* single-bit corruption outside the magic itself is
//! caught by either the length check or the checksum — a flipped bit
//! in the magic is caught by the magic check. See
//! `docs/checkpointing.md` for the compatibility policy.

use crate::error::EnvelopeError;

/// Leading magic bytes of every checkpoint file.
pub const MAGIC: [u8; 8] = *b"CNCKPT01";

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 24;

/// IEEE CRC-32 lookup table (polynomial `0xEDB88320`), built at
/// compile time so the crate stays dependency-free.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `bytes` (as used by zip/png/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        let idx = ((state ^ b as u32) & 0xFF) as usize;
        state = (state >> 8) ^ CRC_TABLE[idx];
    }
    state
}

/// CRC over the checked region: header bytes 8..20 then the payload.
fn envelope_crc(version_and_len: &[u8; 12], payload: &[u8]) -> u32 {
    let state = crc32_update(0xFFFF_FFFF, version_and_len);
    crc32_update(state, payload) ^ 0xFFFF_FFFF
}

/// Wrap `payload` in a checksummed envelope.
pub fn encode(schema_version: u32, payload: &[u8]) -> Vec<u8> {
    let mut mid = [0u8; 12];
    mid[..4].copy_from_slice(&schema_version.to_le_bytes());
    mid[4..].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    let crc = envelope_crc(&mid, payload);

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&mid);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verify an envelope and return `(schema_version, payload)`.
///
/// Verification is strict: magic, exact length, and checksum must all
/// hold, otherwise the corresponding [`EnvelopeError`] is returned and
/// no payload byte is ever handed to a decoder.
pub fn decode(bytes: &[u8]) -> Result<(u32, &[u8]), EnvelopeError> {
    if bytes.len() < HEADER_LEN {
        return Err(EnvelopeError::TooShort { len: bytes.len() });
    }
    if bytes[..8] != MAGIC {
        return Err(EnvelopeError::BadMagic);
    }
    let mut mid = [0u8; 12];
    mid.copy_from_slice(&bytes[8..20]);
    let mut v4 = [0u8; 4];
    v4.copy_from_slice(&mid[..4]);
    let schema_version = u32::from_le_bytes(v4);
    let mut l8 = [0u8; 8];
    l8.copy_from_slice(&mid[4..]);
    let payload_len = u64::from_le_bytes(l8);

    let actual = (bytes.len() - HEADER_LEN) as u64;
    if payload_len != actual {
        return Err(EnvelopeError::LengthMismatch {
            header: payload_len,
            actual,
        });
    }
    let mut c4 = [0u8; 4];
    c4.copy_from_slice(&bytes[20..24]);
    let stored = u32::from_le_bytes(c4);
    let payload = &bytes[HEADER_LEN..];
    let computed = envelope_crc(&mid, payload);
    if stored != computed {
        return Err(EnvelopeError::CrcMismatch { stored, computed });
    }
    Ok((schema_version, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip_identity() {
        for payload in [&b""[..], b"x", b"{\"epoch\":3}", &[0u8; 1024][..]] {
            let enc = encode(7, payload);
            assert_eq!(enc.len(), HEADER_LEN + payload.len());
            let (v, p) = decode(&enc).unwrap();
            assert_eq!(v, 7);
            assert_eq!(p, payload);
        }
    }

    #[test]
    fn truncation_is_detected() {
        let enc = encode(1, b"hello world payload");
        for cut in 0..enc.len() {
            let err = decode(&enc[..cut]).unwrap_err();
            match err {
                EnvelopeError::TooShort { .. } | EnvelopeError::LengthMismatch { .. } => {}
                other => panic!("truncation at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let enc = encode(1, b"some payload bytes");
        for i in 0..enc.len() {
            for bit in 0..8 {
                let mut bad = enc.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    decode(&bad).is_err(),
                    "flip of bit {bit} at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut enc = encode(1, b"payload");
        enc.push(0);
        assert!(matches!(
            decode(&enc),
            Err(EnvelopeError::LengthMismatch { .. })
        ));
    }
}
