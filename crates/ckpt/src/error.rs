//! Typed errors for the checkpoint layer.
//!
//! `CkptError` is `Clone + PartialEq + Eq` on purpose: the error enums
//! of the crates that embed it (`TrainError`, `PlacementError`,
//! `DatagenError`) derive those traits, so the checkpoint layer must
//! not drag a non-comparable `std::io::Error` into them. I/O failures
//! are captured as the stable `(operation, path, ErrorKind, message)`
//! quadruple instead.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Why a checkpoint file's envelope could not be accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EnvelopeError {
    /// The file is shorter than the fixed-size header.
    TooShort {
        /// Observed file length in bytes.
        len: usize,
    },
    /// The leading magic bytes are not `CNCKPT01`.
    BadMagic,
    /// The header's payload length disagrees with the bytes on disk.
    LengthMismatch {
        /// Payload length claimed by the header.
        header: u64,
        /// Payload bytes actually present after the header.
        actual: u64,
    },
    /// The CRC32 over the header fields and payload does not match.
    CrcMismatch {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum recomputed from the bytes on disk.
        computed: u32,
    },
}

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvelopeError::TooShort { len } => {
                write!(f, "file too short for checkpoint header ({len} bytes)")
            }
            EnvelopeError::BadMagic => write!(f, "bad magic (not a ChainNet checkpoint)"),
            EnvelopeError::LengthMismatch { header, actual } => write!(
                f,
                "payload length mismatch (header says {header}, found {actual})"
            ),
            EnvelopeError::CrcMismatch { stored, computed } => write!(
                f,
                "CRC32 mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
        }
    }
}

/// Errors produced by the checkpoint layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CkptError {
    /// An I/O operation failed. The original `std::io::Error` is
    /// flattened to its kind and message so this enum stays `Eq`.
    Io {
        /// What the layer was doing (`"create dir"`, `"write"`, ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// Kind of the underlying I/O error.
        kind: io::ErrorKind,
        /// Display form of the underlying I/O error.
        message: String,
    },
    /// The configured checkpoint directory exists but is not a
    /// directory (e.g. `--checkpoint-dir` pointing at a file).
    NotADirectory {
        /// The offending path.
        path: PathBuf,
    },
    /// `--resume` was requested but the directory holds no usable
    /// checkpoint for the store's prefix.
    NoCheckpoint {
        /// The directory that was scanned.
        dir: PathBuf,
    },
    /// A checkpoint cadence or shard size of zero was requested
    /// (`--checkpoint-every 0`).
    InvalidCadence,
    /// A specific file failed envelope verification.
    Corrupt {
        /// The file that failed verification.
        path: PathBuf,
        /// What the envelope check found.
        reason: EnvelopeError,
    },
    /// The envelope verified but carries a schema version this build
    /// does not understand.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this store reads and writes.
        supported: u32,
    },
    /// The payload passed its CRC but could not be decoded into the
    /// expected state type.
    Decode {
        /// The file whose payload failed to decode.
        path: PathBuf,
        /// Decoder error message.
        message: String,
    },
    /// A state value could not be serialized for writing.
    Encode {
        /// Serializer error message.
        message: String,
    },
    /// The checkpoint decoded fine but describes a different run than
    /// the one being resumed (changed config, dataset size, ...).
    ResumeMismatch {
        /// Human-readable description of the disagreement.
        reason: String,
    },
}

impl CkptError {
    /// Flatten an `io::Error` into the comparable `Io` variant.
    pub fn io(op: &'static str, path: &Path, err: &io::Error) -> Self {
        CkptError::Io {
            op,
            path: path.to_path_buf(),
            kind: err.kind(),
            message: err.to_string(),
        }
    }
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io {
                op,
                path,
                kind,
                message,
            } => write!(f, "{op} {} failed ({kind:?}): {message}", path.display()),
            CkptError::NotADirectory { path } => {
                write!(f, "checkpoint path {} is not a directory", path.display())
            }
            CkptError::NoCheckpoint { dir } => {
                write!(f, "no checkpoint found in {}", dir.display())
            }
            CkptError::InvalidCadence => {
                write!(f, "checkpoint cadence must be at least 1 (got 0)")
            }
            CkptError::Corrupt { path, reason } => {
                write!(f, "corrupt checkpoint {}: {reason}", path.display())
            }
            CkptError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint schema version {found} (this build reads {supported})"
            ),
            CkptError::Decode { path, message } => {
                write!(f, "undecodable checkpoint {}: {message}", path.display())
            }
            CkptError::Encode { message } => {
                write!(f, "checkpoint state failed to serialize: {message}")
            }
            CkptError::ResumeMismatch { reason } => {
                write!(f, "checkpoint does not match this run: {reason}")
            }
        }
    }
}

impl std::error::Error for CkptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_flattening_is_comparable() {
        let a = CkptError::io(
            "write",
            Path::new("/tmp/x"),
            &io::Error::new(io::ErrorKind::PermissionDenied, "denied"),
        );
        let b = a.clone();
        assert_eq!(a, b);
        assert!(a.to_string().contains("/tmp/x"));
    }

    #[test]
    fn displays_are_informative() {
        let cases: Vec<CkptError> = vec![
            CkptError::NotADirectory {
                path: PathBuf::from("f"),
            },
            CkptError::NoCheckpoint {
                dir: PathBuf::from("d"),
            },
            CkptError::InvalidCadence,
            CkptError::Corrupt {
                path: PathBuf::from("c"),
                reason: EnvelopeError::BadMagic,
            },
            CkptError::UnsupportedVersion {
                found: 9,
                supported: 1,
            },
            CkptError::Decode {
                path: PathBuf::from("p"),
                message: "eof".into(),
            },
            CkptError::Encode {
                message: "nan".into(),
            },
            CkptError::ResumeMismatch {
                reason: "seed".into(),
            },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
        for e in [
            EnvelopeError::TooShort { len: 3 },
            EnvelopeError::LengthMismatch {
                header: 4,
                actual: 2,
            },
            EnvelopeError::CrcMismatch {
                stored: 1,
                computed: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
