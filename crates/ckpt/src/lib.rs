#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

//! Crash-safe checkpoint layer for the ChainNet workspace.
//!
//! Long-lived jobs (surrogate training, SA placement search, dataset
//! generation) persist their full resumable state through this crate
//! so a killed process continues exactly where it left off. Because
//! the workspace is fully deterministic (vendored RNG, lint rule R2),
//! the layer is held to a strong bar: a killed-and-resumed run must
//! produce **bit-identical** results to an uninterrupted one.
//!
//! Three guarantees, each with its own module:
//!
//! * [`atomic`] — every write is temp-file + fsync + rename, so a
//!   crash can never leave a torn artifact at the target path;
//! * [`envelope`] — every checkpoint is wrapped in a versioned,
//!   CRC32-checksummed envelope; no unverified byte ever reaches a
//!   decoder;
//! * [`store`] — recovery quarantines corrupt files to `*.corrupt`
//!   and falls back to the most recent verified checkpoint instead of
//!   panicking or silently starting over.
//!
//! Metrics (`ckpt.writes`, `ckpt.bytes_written`,
//! `ckpt.corrupt_detected`, `ckpt.resumes`) flow through
//! [`chainnet_obs`]; the on-disk format and compatibility policy are
//! documented in `docs/checkpointing.md`.
//!
//! # Quick start
//!
//! ```
//! use chainnet_ckpt::CkptStore;
//!
//! let dir = std::env::temp_dir().join(format!("ckpt-doc-{}", std::process::id()));
//! let store = CkptStore::open(&dir, "train", 1).unwrap();
//! store.save_state(1, &vec![0.25_f64, 0.5]).unwrap();
//! let (seq, weights): (u64, Vec<f64>) = store.load_latest_state().unwrap().unwrap();
//! assert_eq!((seq, weights), (1, vec![0.25, 0.5]));
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

pub mod atomic;
pub mod envelope;
pub mod error;
pub mod store;

pub use atomic::atomic_write;
pub use envelope::{crc32, decode, encode, HEADER_LEN, MAGIC};
pub use error::{CkptError, EnvelopeError};
pub use store::{CkptStore, CKPT_EXTENSION, CORRUPT_SUFFIX};
