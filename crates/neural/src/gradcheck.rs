//! Numerical gradient verification utilities.
//!
//! Reverse-mode autodiff bugs are silent — the model still trains, just
//! badly — so the crate ships a first-class gradient checker that
//! downstream models can run in their own tests (the ChainNet crate does).

use crate::params::{ParamId, ParamStore};
use crate::tape::Tape;

/// Central-difference gradient of `f` at `x`.
///
/// # Examples
///
/// ```
/// use chainnet_neural::gradcheck::finite_difference;
///
/// let g = finite_difference(&mut |x| x[0] * x[0] + 3.0 * x[1], &[2.0, 1.0], 1e-6);
/// assert!((g[0] - 4.0).abs() < 1e-5);
/// assert!((g[1] - 3.0).abs() < 1e-5);
/// ```
pub fn finite_difference(f: &mut dyn FnMut(&[f64]) -> f64, x: &[f64], eps: f64) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let orig = xp[i];
        xp[i] = orig + eps;
        let fp = f(&xp);
        xp[i] = orig - eps;
        let fm = f(&xp);
        xp[i] = orig;
        g[i] = (fp - fm) / (2.0 * eps);
    }
    g
}

/// Report from [`check_param_gradients`].
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute deviation between analytic and numeric gradients.
    pub max_abs_error: f64,
    /// Parameter (id, flat index) of the worst deviation.
    pub worst: Option<(ParamId, usize)>,
    /// Total scalar weights checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether every gradient matched within `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_error <= tol
    }
}

/// Verify the analytic gradients of a scalar loss against central finite
/// differences, for every parameter in `store` (or a capped number of
/// scalars per parameter via `max_per_param`, since full checks on large
/// models are O(weights × forward)).
///
/// `loss` must rebuild the forward pass from scratch on each call — the
/// standard define-by-run contract.
///
/// # Examples
///
/// ```
/// use chainnet_neural::gradcheck::check_param_gradients;
/// use chainnet_neural::layers::{Activation, Mlp};
/// use chainnet_neural::params::ParamStore;
/// use chainnet_neural::tape::Tape;
/// use chainnet_neural::tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let mut store = ParamStore::new();
/// let mlp = Mlp::new(&mut store, "m", &[2, 4, 1], Activation::Tanh, &mut rng);
/// let report = check_param_gradients(
///     &mut store,
///     &mut |tape, store| {
///         let x = tape.leaf(Tensor::from_vec(vec![0.3, -0.7]));
///         let y = mlp.forward(tape, store, x);
///         let t = tape.leaf(Tensor::scalar(0.5));
///         tape.squared_error(y, t)
///     },
///     4,
///     1e-6,
/// );
/// assert!(report.passes(1e-4), "max error {}", report.max_abs_error);
/// ```
pub fn check_param_gradients(
    store: &mut ParamStore,
    loss: &mut dyn FnMut(&mut Tape, &ParamStore) -> crate::tape::Var,
    max_per_param: usize,
    eps: f64,
) -> GradCheckReport {
    // Analytic gradients.
    store.zero_grads();
    let mut tape = Tape::new();
    let l = loss(&mut tape, store);
    tape.backward(l);
    tape.accumulate_param_grads(store);
    let analytic: Vec<Vec<f64>> = store
        .ids()
        .map(|id| store.grad(id).data().to_vec())
        .collect();

    let mut max_abs_error = 0.0f64;
    let mut worst = None;
    let mut checked = 0usize;
    let ids: Vec<ParamId> = store.ids().collect();
    for (pi, id) in ids.iter().enumerate() {
        let n = store.value(*id).len();
        #[allow(clippy::needless_range_loop)] // j indexes two parallel views
        for j in 0..n.min(max_per_param) {
            let orig = store.value(*id).data()[j];
            store.value_mut(*id).data_mut()[j] = orig + eps;
            let mut tp = Tape::new();
            let lp = loss(&mut tp, store);
            let fp = tp.value(lp).item();
            store.value_mut(*id).data_mut()[j] = orig - eps;
            let mut tm = Tape::new();
            let lm = loss(&mut tm, store);
            let fm = tm.value(lm).item();
            store.value_mut(*id).data_mut()[j] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            let err = (numeric - analytic[pi][j]).abs();
            checked += 1;
            if err > max_abs_error {
                max_abs_error = err;
                worst = Some((*id, j));
            }
        }
    }
    store.zero_grads();
    GradCheckReport {
        max_abs_error,
        worst,
        checked,
    }
}

/// Verify `f32` analytic gradients against the retained `f64` central
/// finite-difference oracle.
///
/// `store` holds the reference `f64` weights; it is cast to an `f32`
/// store (same [`ParamId`] layout) on which `loss_f32` runs one tape
/// forward/backward for the analytic gradients, while `loss_f64`
/// (the same model code instantiated at `f64`) is evaluated under
/// ±`eps` weight perturbations for the numeric oracle. Both closures
/// must build the same computation — only the dtype differs.
///
/// Expected tolerances: single precision carries ~1e-7 relative
/// rounding per operation; through a GRU/MLP stack with O(100)
/// accumulations the analytic-vs-numeric gap lands around 1e-4..1e-3
/// for O(1) gradients. The cross-dtype tests in
/// `crates/neural/tests/cross_dtype.rs` document the bound per layer.
pub fn check_cross_dtype(
    store: &mut ParamStore,
    loss_f32: &mut dyn FnMut(&mut Tape<f32>, &ParamStore<f32>) -> crate::tape::Var,
    loss_f64: &mut dyn FnMut(&mut Tape, &ParamStore) -> crate::tape::Var,
    max_per_param: usize,
    eps: f64,
) -> GradCheckReport {
    // Analytic f32 gradients on the cast store.
    let mut store32: ParamStore<f32> = store.cast();
    store32.zero_grads();
    let mut tape32 = Tape::<f32>::new();
    let l32 = loss_f32(&mut tape32, &store32);
    tape32.backward(l32);
    tape32.accumulate_param_grads(&mut store32);
    let analytic: Vec<Vec<f64>> = store32
        .ids()
        .map(|id| {
            store32
                .grad(id)
                .data()
                .iter()
                .map(|&g| f64::from(g))
                .collect()
        })
        .collect();

    // Numeric f64 oracle under weight perturbation.
    let mut max_abs_error = 0.0f64;
    let mut worst = None;
    let mut checked = 0usize;
    let ids: Vec<ParamId> = store.ids().collect();
    for (pi, id) in ids.iter().enumerate() {
        let n = store.value(*id).len();
        #[allow(clippy::needless_range_loop)] // j indexes two parallel views
        for j in 0..n.min(max_per_param) {
            let orig = store.value(*id).data()[j];
            store.value_mut(*id).data_mut()[j] = orig + eps;
            let mut tp = Tape::new();
            let lp = loss_f64(&mut tp, store);
            let fp = tp.value(lp).item();
            store.value_mut(*id).data_mut()[j] = orig - eps;
            let mut tm = Tape::new();
            let lm = loss_f64(&mut tm, store);
            let fm = tm.value(lm).item();
            store.value_mut(*id).data_mut()[j] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            let err = (numeric - analytic[pi][j]).abs();
            checked += 1;
            if err > max_abs_error {
                max_abs_error = err;
                worst = Some((*id, j));
            }
        }
    }
    store.zero_grads();
    GradCheckReport {
        max_abs_error,
        worst,
        checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, GruCell, Mlp};
    use crate::tensor::Tensor;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn finite_difference_on_quadratic() {
        let g = finite_difference(&mut |x| x.iter().map(|v| v * v).sum(), &[1.0, -2.0], 1e-6);
        assert!((g[0] - 2.0).abs() < 1e-5);
        assert!((g[1] + 4.0).abs() < 1e-5);
    }

    #[test]
    fn mlp_param_gradients_pass() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[3, 6, 1], Activation::Sigmoid, &mut rng);
        let report = check_param_gradients(
            &mut store,
            &mut |tape, store| {
                let x = tape.leaf(Tensor::from_vec(vec![0.2, -0.4, 0.9]));
                let y = mlp.forward(tape, store, x);
                let t = tape.leaf(Tensor::scalar(-0.3));
                tape.squared_error(y, t)
            },
            6,
            1e-6,
        );
        assert!(report.passes(1e-5), "max err {}", report.max_abs_error);
        assert!(report.checked > 0);
    }

    #[test]
    fn gru_param_gradients_pass() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 2, 3, &mut rng);
        let report = check_param_gradients(
            &mut store,
            &mut |tape, store| {
                let x = tape.leaf(Tensor::from_vec(vec![0.5, -0.2]));
                let h = tape.leaf(Tensor::from_vec(vec![0.1, 0.0, -0.3]));
                let h1 = gru.forward(tape, store, x, h);
                let h2 = gru.forward(tape, store, x, h1); // reuse across steps
                tape.sum(h2)
            },
            4,
            1e-6,
        );
        assert!(report.passes(1e-5), "max err {}", report.max_abs_error);
    }

    #[test]
    fn detects_no_gradient_when_loss_is_constant() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let _mlp = Mlp::new(&mut store, "m", &[2, 3, 1], Activation::Relu, &mut rng);
        let report = check_param_gradients(
            &mut store,
            &mut |tape, _store| {
                // Loss ignores the parameters entirely.
                let c = tape.leaf(Tensor::scalar(1.0));
                tape.sum(c)
            },
            3,
            1e-6,
        );
        assert_eq!(report.max_abs_error, 0.0);
    }
}
