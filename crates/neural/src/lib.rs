#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

//! A self-contained tensor / reverse-mode autodiff / neural layer stack,
//! built from scratch as the substrate for the ChainNet reproduction.
//!
//! The paper's models are small — 64-unit GRU cells and MLPs, at most a
//! dozen message-passing iterations over graphs with tens of nodes — so a
//! dense define-by-run tape is both simple and fast enough. The whole
//! stack is generic over a [`scalar::Scalar`] element type with `f64` as
//! the default (reference arithmetic, bit-identical to the original
//! concrete-`f64` code) and `f32` as the high-throughput training dtype.
//! The stack provides exactly what ChainNet, GIN and GAT need:
//!
//! * [`scalar::Scalar`] — the `f32`/`f64` element-type abstraction;
//! * [`tensor::Tensor`] — dense vectors/matrices with lane-blocked
//!   matmul kernels the autovectorizer can widen;
//! * [`tape::Tape`] — reverse-mode autodiff with graph-NN-oriented ops
//!   (concat, softmax, attention-style weighted sums) plus row-batched
//!   variants (`matmul_bt`, `add_rows`, `select_rows`, ...) for
//!   mini-batch training;
//! * [`params::ParamStore`] — persistent trainable weights shared across
//!   per-sample tapes, with Glorot initialization;
//! * [`layers`] — `Linear`, `Mlp`, `GruCell` (each with per-sample and
//!   row-batched forwards);
//! * [`optim`] — Adam plus the paper's step-decay schedule.
//!
//! # Example: fit y = 2x with one linear layer
//!
//! ```
//! use chainnet_neural::layers::{Activation, Mlp};
//! use chainnet_neural::optim::Adam;
//! use chainnet_neural::params::ParamStore;
//! use chainnet_neural::tape::Tape;
//! use chainnet_neural::tensor::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let net = Mlp::new(&mut store, "f", &[1, 8, 1], Activation::Tanh, &mut rng);
//! let mut adam = Adam::new(0.01);
//! for _ in 0..300 {
//!     for x in [-1.0f64, -0.5, 0.0, 0.5, 1.0] {
//!         let mut tape = Tape::new();
//!         let xin = tape.leaf(Tensor::scalar(x));
//!         let y = net.forward(&mut tape, &store, xin);
//!         let target = tape.leaf(Tensor::scalar(2.0 * x));
//!         let loss = tape.squared_error(y, target);
//!         tape.backward(loss);
//!         tape.accumulate_param_grads(&mut store);
//!     }
//!     adam.step(&mut store);
//! }
//! let mut tape = Tape::new();
//! let xin = tape.leaf(Tensor::scalar(0.25));
//! let y = net.forward(&mut tape, &store, xin);
//! assert!((tape.value(y).item() - 0.5).abs() < 0.1);
//! ```

#![warn(missing_docs)]

pub mod gradcheck;
pub mod layers;
pub mod optim;
pub mod params;
pub mod scalar;
pub mod tape;
pub mod tensor;

pub use layers::{Activation, GruCell, Linear, Mlp};
pub use optim::{Adam, StepDecay};
pub use params::{ParamId, ParamStore};
pub use scalar::Scalar;
pub use tape::{Tape, Var};
pub use tensor::Tensor;
