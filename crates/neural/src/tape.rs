//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Tape`] records the forward computation as a list of nodes; calling
//! [`Tape::backward`] propagates gradients from a scalar loss back to every
//! node, and [`Tape::accumulate_param_grads`] folds gradients of parameter
//! leaves into a [`ParamStore`]. Because ChainNet processes graphs of
//! varying topology, a fresh tape is built per sample (define-by-run) while
//! the parameters persist in the store.
//!
//! All operations panic on shape mismatch: shapes are structural
//! invariants of the model code, not runtime inputs.

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use std::collections::BTreeMap;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    /// `alpha * a + beta` elementwise.
    Affine(usize, f64, f64),
    /// `w (m,n) * x (n)`.
    MatVec(usize, usize),
    Concat(Vec<usize>),
    Sigmoid(usize),
    Tanh(usize),
    Relu(usize),
    LeakyRelu(usize, f64),
    Softmax(usize),
    /// Sum of all elements to a scalar.
    Sum(usize),
    Dot(usize, usize),
    /// Stack scalar nodes into one vector.
    StackScalars(Vec<usize>),
    /// `Σ_t weights[t] * items[t]` for equal-shaped vector items.
    WeightedSum(usize, Vec<usize>),
    /// Elementwise mean of equal-shaped vectors.
    MeanVecs(Vec<usize>),
}

#[derive(Debug, Clone)]
struct Node {
    value: Tensor,
    op: Op,
    param: Option<ParamId>,
}

/// A reverse-mode autodiff tape.
///
/// # Examples
///
/// ```
/// use chainnet_neural::tape::Tape;
/// use chainnet_neural::tensor::Tensor;
///
/// let mut tape = Tape::new();
/// let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0]));
/// let y = tape.mul(x, x);         // y = x^2 elementwise
/// let loss = tape.sum(y);         // loss = Σ x_i^2
/// tape.backward(loss);
/// assert_eq!(tape.grad(x).data(), &[2.0, 4.0]); // d/dx = 2x
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
    param_cache: BTreeMap<ParamId, Var>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            op,
            param: None,
        });
        Var(self.nodes.len() - 1)
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Insert a constant (non-parameter) leaf.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Insert (or reuse) a leaf for a trainable parameter. Repeated calls
    /// with the same id return the same node, so gradients accumulate.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        if let Some(&v) = self.param_cache.get(&id) {
            return v;
        }
        let v = self.push(store.value(id).clone(), Op::Leaf);
        self.nodes[v.0].param = Some(id);
        self.param_cache.insert(id, v);
        v
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Elementwise addition.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip_map(&self.nodes[b.0].value, |x, y| x + y);
        self.push(v, Op::Add(a.0, b.0))
    }

    /// Elementwise subtraction `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip_map(&self.nodes[b.0].value, |x, y| x - y);
        self.push(v, Op::Sub(a.0, b.0))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .zip_map(&self.nodes[b.0].value, |x, y| x * y);
        self.push(v, Op::Mul(a.0, b.0))
    }

    /// Elementwise affine map `alpha * a + beta`.
    pub fn affine(&mut self, a: Var, alpha: f64, beta: f64) -> Var {
        let v = self.nodes[a.0].value.map(|x| alpha * x + beta);
        self.push(v, Op::Affine(a.0, alpha, beta))
    }

    /// Matrix-vector product; `w` must be a matrix node, `x` a vector node.
    pub fn matvec(&mut self, w: Var, x: Var) -> Var {
        let v = self.nodes[w.0].value.matvec(&self.nodes[x.0].value);
        self.push(v, Op::MatVec(w.0, x.0))
    }

    /// Concatenate vector nodes.
    pub fn concat(&mut self, parts: &[Var]) -> Var {
        let tensors: Vec<&Tensor> = parts.iter().map(|p| &self.nodes[p.0].value).collect();
        let v = Tensor::concat(&tensors);
        self.push(v, Op::Concat(parts.iter().map(|p| p.0).collect()))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a.0))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::tanh);
        self.push(v, Op::Tanh(a.0))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a.0))
    }

    /// Leaky ReLU with negative slope `slope`.
    pub fn leaky_relu(&mut self, a: Var, slope: f64) -> Var {
        let v = self.nodes[a.0]
            .value
            .map(|x| if x > 0.0 { x } else { slope * x });
        self.push(v, Op::LeakyRelu(a.0, slope))
    }

    /// Numerically stable softmax over a vector.
    pub fn softmax(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let max = x.data().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = x.data().iter().map(|&v| (v - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        let v = Tensor::from_vec(exps.into_iter().map(|e| e / z).collect());
        self.push(v, Op::Softmax(a.0))
    }

    /// Sum all elements into a scalar node.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.sum());
        self.push(v, Op::Sum(a.0))
    }

    /// Dot product of two vector nodes, as a scalar node.
    pub fn dot(&mut self, a: Var, b: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.dot(&self.nodes[b.0].value));
        self.push(v, Op::Dot(a.0, b.0))
    }

    /// Stack scalar nodes into one vector node.
    ///
    /// # Panics
    ///
    /// Panics if any input is not a scalar.
    pub fn stack_scalars(&mut self, parts: &[Var]) -> Var {
        let data: Vec<f64> = parts.iter().map(|p| self.nodes[p.0].value.item()).collect();
        self.push(
            Tensor::from_vec(data),
            Op::StackScalars(parts.iter().map(|p| p.0).collect()),
        )
    }

    /// `Σ_t weights[t] * items[t]` where `weights` is a vector node of the
    /// same length as `items` and all items share one shape.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or lengths mismatch.
    pub fn weighted_sum(&mut self, weights: Var, items: &[Var]) -> Var {
        assert!(!items.is_empty(), "weighted_sum needs at least one item");
        let w = &self.nodes[weights.0].value;
        assert_eq!(w.len(), items.len(), "weights/items length mismatch");
        let mut acc = self.nodes[items[0].0].value.zeros_like();
        for (t, item) in items.iter().enumerate() {
            acc.add_scaled(w.data()[t], &self.nodes[item.0].value);
        }
        self.push(
            acc,
            Op::WeightedSum(weights.0, items.iter().map(|p| p.0).collect()),
        )
    }

    /// Elementwise mean of equal-shaped vector nodes.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn mean_vecs(&mut self, items: &[Var]) -> Var {
        assert!(!items.is_empty(), "mean_vecs needs at least one item");
        let mut acc = self.nodes[items[0].0].value.zeros_like();
        for item in items {
            acc.add_assign(&self.nodes[item.0].value);
        }
        let n = items.len() as f64;
        let acc = acc.map(|x| x / n);
        self.push(acc, Op::MeanVecs(items.iter().map(|p| p.0).collect()))
    }

    /// Convenience: squared error `(a - b)^2` summed to a scalar.
    pub fn squared_error(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        let sq = self.mul(d, d);
        self.sum(sq)
    }

    /// Run reverse-mode differentiation from a scalar `loss` node.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward() requires a scalar loss"
        );
        self.grads = vec![None; self.nodes.len()];
        self.grads[loss.0] = Some(Tensor::scalar(1.0));

        for idx in (0..self.nodes.len()).rev() {
            let Some(g) = self.grads[idx].clone() else {
                continue;
            };
            // Split borrows: read node data, then write parent grads.
            let op = self.nodes[idx].op.clone();
            match op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    self.bump(a, &g);
                    self.bump(b, &g);
                }
                Op::Sub(a, b) => {
                    self.bump(a, &g);
                    let neg = g.map(|x| -x);
                    self.bump(b, &neg);
                }
                Op::Mul(a, b) => {
                    let da = self.nodes[b].value.zip_map(&g, |x, gg| x * gg);
                    let db = self.nodes[a].value.zip_map(&g, |x, gg| x * gg);
                    self.bump(a, &da);
                    self.bump(b, &db);
                }
                Op::Affine(a, alpha, _beta) => {
                    let da = g.map(|x| alpha * x);
                    self.bump(a, &da);
                }
                Op::MatVec(w, x) => {
                    let dw = Tensor::outer(&g, &self.nodes[x].value);
                    let dx = self.nodes[w].value.matvec_t(&g);
                    self.bump(w, &dw);
                    self.bump(x, &dx);
                }
                Op::Concat(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let len = self.nodes[p].value.len();
                        let slice = Tensor::from_vec(g.data()[offset..offset + len].to_vec());
                        self.bump(p, &slice);
                        offset += len;
                    }
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[idx].value;
                    let da = y.zip_map(&g, |yy, gg| yy * (1.0 - yy) * gg);
                    self.bump(a, &da);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[idx].value;
                    let da = y.zip_map(&g, |yy, gg| (1.0 - yy * yy) * gg);
                    self.bump(a, &da);
                }
                Op::Relu(a) => {
                    let x = &self.nodes[a].value;
                    let da = x.zip_map(&g, |xx, gg| if xx > 0.0 { gg } else { 0.0 });
                    self.bump(a, &da);
                }
                Op::LeakyRelu(a, slope) => {
                    let x = &self.nodes[a].value;
                    let da = x.zip_map(&g, |xx, gg| if xx > 0.0 { gg } else { slope * gg });
                    self.bump(a, &da);
                }
                Op::Softmax(a) => {
                    let y = &self.nodes[idx].value;
                    let gy = g.dot(y);
                    let da = y.zip_map(&g, |yy, gg| yy * (gg - gy));
                    self.bump(a, &da);
                }
                Op::Sum(a) => {
                    let gv = g.item();
                    let ones = self.nodes[a].value.map(|_| gv);
                    self.bump(a, &ones);
                }
                Op::Dot(a, b) => {
                    let gv = g.item();
                    let da = self.nodes[b].value.map(|x| gv * x);
                    let db = self.nodes[a].value.map(|x| gv * x);
                    self.bump(a, &da);
                    self.bump(b, &db);
                }
                Op::StackScalars(parts) => {
                    for (t, p) in parts.into_iter().enumerate() {
                        self.bump(p, &Tensor::scalar(g.data()[t]));
                    }
                }
                Op::WeightedSum(w, items) => {
                    let weights = self.nodes[w].value.clone();
                    let mut dw = vec![0.0; items.len()];
                    for (t, &item) in items.iter().enumerate() {
                        let di = g.map(|x| weights.data()[t] * x);
                        dw[t] = self.nodes[item].value.dot(&g);
                        self.bump(item, &di);
                    }
                    self.bump(w, &Tensor::from_vec(dw));
                }
                Op::MeanVecs(items) => {
                    let n = items.len() as f64;
                    let di = g.map(|x| x / n);
                    for item in items {
                        self.bump(item, &di);
                    }
                }
            }
        }
    }

    fn bump(&mut self, node: usize, g: &Tensor) {
        match &mut self.grads[node] {
            Some(acc) => acc.add_assign(g),
            slot => *slot = Some(g.clone()),
        }
    }

    /// Gradient of a node after [`Tape::backward`]. Nodes unreachable from
    /// the loss have zero gradient.
    ///
    /// # Panics
    ///
    /// Panics if `backward` has not been called.
    pub fn grad(&self, v: Var) -> Tensor {
        assert!(!self.grads.is_empty(), "call backward() first");
        self.grads[v.0]
            .clone()
            .unwrap_or_else(|| self.nodes[v.0].value.zeros_like())
    }

    /// Fold parameter-leaf gradients into the store's accumulators.
    ///
    /// # Panics
    ///
    /// Panics if `backward` has not been called.
    pub fn accumulate_param_grads(&self, store: &mut ParamStore) {
        assert!(!self.grads.is_empty(), "call backward() first");
        for (&id, &var) in &self.param_cache {
            if let Some(g) = &self.grads[var.0] {
                store.accumulate_grad(id, g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    fn finite_diff(f: impl Fn(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
        let eps = 1e-6;
        let mut g = vec![0.0; x.len()];
        let mut xp = x.to_vec();
        for i in 0..x.len() {
            let orig = xp[i];
            xp[i] = orig + eps;
            let fp = f(&xp);
            xp[i] = orig - eps;
            let fm = f(&xp);
            xp[i] = orig;
            g[i] = (fp - fm) / (2.0 * eps);
        }
        g
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn grad_of_sum_of_squares() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, -2.0, 3.0]));
        let y = tape.mul(x, x);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_close(tape.grad(x).data(), &[2.0, -4.0, 6.0], 1e-12);
    }

    #[test]
    fn matvec_gradient_matches_finite_difference() {
        let w0 = vec![0.3, -0.2, 0.5, 0.1, 0.4, -0.6];
        let x0 = vec![1.0, -1.5, 0.7];
        let f = |wx: &[f64]| {
            let w = Tensor::matrix(2, 3, wx[..6].to_vec());
            let x = Tensor::from_vec(wx[6..].to_vec());
            let y = w.matvec(&x);
            y.data().iter().map(|v| v * v).sum::<f64>()
        };
        let mut joint = w0.clone();
        joint.extend_from_slice(&x0);
        let num = finite_diff(f, &joint);

        let mut tape = Tape::new();
        let w = tape.leaf(Tensor::matrix(2, 3, w0));
        let x = tape.leaf(Tensor::from_vec(x0));
        let y = tape.matvec(w, x);
        let y2 = tape.mul(y, y);
        let loss = tape.sum(y2);
        tape.backward(loss);
        let mut ana = tape.grad(w).data().to_vec();
        ana.extend_from_slice(tape.grad(x).data());
        assert_close(&ana, &num, 1e-5);
    }

    #[test]
    fn sigmoid_tanh_chain_gradient() {
        let x0 = vec![0.3, -0.8, 1.2];
        let f = |x: &[f64]| {
            x.iter()
                .map(|&v| {
                    let s = 1.0 / (1.0 + (-v).exp());
                    s.tanh()
                })
                .sum::<f64>()
        };
        let num = finite_diff(f, &x0);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(x0));
        let s = tape.sigmoid(x);
        let t = tape.tanh(s);
        let loss = tape.sum(t);
        tape.backward(loss);
        assert_close(tape.grad(x).data(), &num, 1e-6);
    }

    #[test]
    fn softmax_gradient_matches_finite_difference() {
        let x0 = vec![0.5, -0.5, 1.5, 0.0];
        let target = [0.1, 0.2, 0.3, 0.4];
        let f = |x: &[f64]| {
            let max = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = x.iter().map(|v| (v - max).exp()).collect();
            let z: f64 = exps.iter().sum();
            exps.iter()
                .zip(&target)
                .map(|(e, t)| (e / z - t).powi(2))
                .sum::<f64>()
        };
        let num = finite_diff(f, &x0);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(x0));
        let y = tape.softmax(x);
        let t = tape.leaf(Tensor::from_vec(target.to_vec()));
        let loss = tape.squared_error(y, t);
        tape.backward(loss);
        assert_close(tape.grad(x).data(), &num, 1e-6);
    }

    #[test]
    fn concat_routes_gradients() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0]));
        let b = tape.leaf(Tensor::from_vec(vec![3.0]));
        let c = tape.concat(&[a, b]);
        let w = tape.leaf(Tensor::from_vec(vec![10.0, 20.0, 30.0]));
        let d = tape.mul(c, w);
        let loss = tape.sum(d);
        tape.backward(loss);
        assert_close(tape.grad(a).data(), &[10.0, 20.0], 1e-12);
        assert_close(tape.grad(b).data(), &[30.0], 1e-12);
    }

    #[test]
    fn weighted_sum_gradient_matches_finite_difference() {
        // 2 items of dim 3 + 2 weights.
        let flat0 = vec![0.2, -0.3, 0.5, 1.0, 0.8, -0.1, 0.6, 0.4];
        let f = |v: &[f64]| {
            let i0 = &v[0..3];
            let i1 = &v[3..6];
            let w = &v[6..8];
            (0..3)
                .map(|d| {
                    let s = w[0] * i0[d] + w[1] * i1[d];
                    s * s
                })
                .sum::<f64>()
        };
        let num = finite_diff(f, &flat0);
        let mut tape = Tape::new();
        let i0 = tape.leaf(Tensor::from_vec(flat0[0..3].to_vec()));
        let i1 = tape.leaf(Tensor::from_vec(flat0[3..6].to_vec()));
        let w = tape.leaf(Tensor::from_vec(flat0[6..8].to_vec()));
        let ws = tape.weighted_sum(w, &[i0, i1]);
        let sq = tape.mul(ws, ws);
        let loss = tape.sum(sq);
        tape.backward(loss);
        let mut ana = tape.grad(i0).data().to_vec();
        ana.extend_from_slice(tape.grad(i1).data());
        ana.extend_from_slice(tape.grad(w).data());
        assert_close(&ana, &num, 1e-6);
    }

    #[test]
    fn mean_vecs_gradient_is_uniform() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![2.0, 4.0]));
        let b = tape.leaf(Tensor::from_vec(vec![0.0, 0.0]));
        let m = tape.mean_vecs(&[a, b]);
        let loss = tape.sum(m);
        tape.backward(loss);
        assert_close(tape.grad(a).data(), &[0.5, 0.5], 1e-12);
        assert_close(tape.grad(b).data(), &[0.5, 0.5], 1e-12);
    }

    #[test]
    fn stack_scalars_and_dot_gradients() {
        let mut tape = Tape::new();
        let s1 = tape.leaf(Tensor::scalar(2.0));
        let s2 = tape.leaf(Tensor::scalar(-1.0));
        let v = tape.stack_scalars(&[s1, s2]);
        let w = tape.leaf(Tensor::from_vec(vec![3.0, 5.0]));
        let loss = tape.dot(v, w);
        tape.backward(loss);
        assert_close(tape.grad(s1).data(), &[3.0], 1e-12);
        assert_close(tape.grad(s2).data(), &[5.0], 1e-12);
        assert_close(tape.grad(w).data(), &[2.0, -1.0], 1e-12);
    }

    #[test]
    fn param_reuse_accumulates_gradient() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![1.0, 2.0]));
        let mut tape = Tape::new();
        let w1 = tape.param(&store, id);
        let w2 = tape.param(&store, id);
        assert_eq!(w1, w2, "same param yields same node");
        let prod = tape.mul(w1, w2); // w^2
        let loss = tape.sum(prod);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        // d(w^2)/dw = 2w.
        assert_close(store.grad(id).data(), &[2.0, 4.0], 1e-12);
    }

    #[test]
    fn leaky_relu_gradient() {
        let x0 = vec![1.0, -2.0];
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(x0));
        let y = tape.leaky_relu(x, 0.1);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_close(tape.grad(x).data(), &[1.0, 0.1], 1e-12);
    }

    #[test]
    fn affine_gradient_scales() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0]));
        let y = tape.affine(x, -1.0, 1.0); // 1 - x
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_close(tape.grad(x).data(), &[-1.0, -1.0], 1e-12);
        assert_eq!(tape.value(y).data(), &[0.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_vector_loss() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0]));
        tape.backward(x);
    }

    #[test]
    fn unreachable_nodes_have_zero_grad() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0]));
        let y = tape.leaf(Tensor::from_vec(vec![5.0]));
        let loss = tape.sum(x);
        tape.backward(loss);
        assert_eq!(tape.grad(y).data(), &[0.0]);
    }
}
