//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Tape`] records the forward computation as a list of nodes; calling
//! [`Tape::backward`] propagates gradients from a scalar loss back to every
//! node, and [`Tape::accumulate_param_grads`] folds gradients of parameter
//! leaves into a [`ParamStore`]. Because ChainNet processes graphs of
//! varying topology, a tape is rebuilt per sample (define-by-run) while
//! the parameters persist in the store.
//!
//! Rebuilding does not mean reallocating: [`Tape::reset`] returns every
//! forward-value and gradient buffer to an internal pool, and all tape
//! operations draw their output buffers from that pool, so a training
//! loop that calls `reset` between samples reaches a steady state with
//! no per-step heap traffic. Pooling only recycles allocations — the
//! arithmetic (and therefore every value and gradient, bit for bit) is
//! identical to a fresh tape.
//!
//! The tape is generic over the [`Scalar`] element type: `Tape` (i.e.
//! `Tape<f64>`) is the reference path used by gradcheck and the golden
//! tests; `Tape<f32>` drives batched training through the same ops. The
//! row-batched operations ([`Tape::matmul_bt`], [`Tape::add_rows`],
//! [`Tape::concat_cols`], [`Tape::select_rows`],
//! [`Tape::masked_softmax_rows`], [`Tape::weighted_sum_rows`]) exist so
//! a mini-batch of graphs can run its GRU steps, attention and readout
//! as a few large matrix products instead of `B` small per-graph ones.
//!
//! All operations panic on shape mismatch: shapes are structural
//! invariants of the model code, not runtime inputs.

use crate::params::{ParamId, ParamStore};
use crate::scalar::Scalar;
use crate::tensor::{matmul_bt_into, Tensor};
use chainnet_obs::Tracer;
use std::collections::BTreeMap;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op<S: Scalar> {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    /// `alpha * a + beta` elementwise.
    Affine(usize, S, S),
    /// `w (m,n) * x (n)`.
    MatVec(usize, usize),
    Concat(Vec<usize>),
    Sigmoid(usize),
    Tanh(usize),
    Relu(usize),
    LeakyRelu(usize, S),
    Softmax(usize),
    /// Sum of all elements to a scalar.
    Sum(usize),
    Dot(usize, usize),
    /// Stack scalar nodes into one vector.
    StackScalars(Vec<usize>),
    /// `Σ_t weights[t] * items[t]` for equal-shaped vector items.
    WeightedSum(usize, Vec<usize>),
    /// Elementwise mean of equal-shaped vectors.
    MeanVecs(Vec<usize>),
    /// `x (B,k) * w^T` where `w` is `(n,k)` — the batched linear kernel.
    MatMulBt(usize, usize),
    /// Broadcast-add a vector node to every row of a matrix node.
    AddRows(usize, usize),
    /// Column-concatenation of equal-row-count matrix nodes.
    ConcatCols(Vec<usize>),
    /// Row `b` of the output is row `b` of `sources[choice[b]]`.
    SelectRows(Vec<usize>, Vec<u32>),
    /// Row-wise softmax restricted to mask-valid columns.
    MaskedSoftmaxRows(usize, Vec<bool>),
    /// `y[b,:] = Σ_t w[b,t] * items[t][b,:]` for `(B,T)` weights.
    WeightedSumRows(usize, Vec<usize>),
}

#[derive(Debug, Clone)]
struct Node<S: Scalar> {
    value: Tensor<S>,
    op: Op<S>,
    param: Option<ParamId>,
}

/// A reverse-mode autodiff tape.
///
/// # Examples
///
/// ```
/// use chainnet_neural::tape::Tape;
/// use chainnet_neural::tensor::Tensor;
///
/// let mut tape = Tape::new();
/// let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0]));
/// let y = tape.mul(x, x);         // y = x^2 elementwise
/// let loss = tape.sum(y);         // loss = Σ x_i^2
/// tape.backward(loss);
/// assert_eq!(tape.grad(x).data(), &[2.0, 4.0]); // d/dx = 2x
/// ```
#[derive(Debug)]
pub struct Tape<S: Scalar = f64> {
    nodes: Vec<Node<S>>,
    grads: Vec<Option<Tensor<S>>>,
    param_cache: BTreeMap<ParamId, Var>,
    /// Recycled scalar buffers harvested by [`Tape::reset`] and the
    /// backward pass; every op draws its output storage from here.
    pool: Vec<Vec<S>>,
    /// Span tracer for the backward pass; disabled (one branch) unless
    /// installed with [`Tape::set_tracer`].
    tracer: Tracer,
}

impl<S: Scalar> Default for Tape<S> {
    fn default() -> Self {
        Self {
            nodes: Vec::new(),
            grads: Vec::new(),
            param_cache: BTreeMap::new(),
            pool: Vec::new(),
            tracer: Tracer::default(),
        }
    }
}

impl<S: Scalar> Tape<S> {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear the recorded computation, returning every forward-value and
    /// gradient buffer to the internal pool for reuse by the next
    /// forward/backward pass. Node and gradient list capacities are
    /// retained, so a steady-state training loop allocates nothing.
    // lint:zero_alloc
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            let (_, data) = node.value.into_parts();
            if data.capacity() > 0 {
                // lint:allow(alloc_hygiene): returns a harvested buffer
                // to the pool; the pool vec reaches steady-state
                // capacity after the first pass and never grows again
                self.pool.push(data);
            }
        }
        for g in self.grads.drain(..).flatten() {
            let (_, data) = g.into_parts();
            if data.capacity() > 0 {
                // lint:allow(alloc_hygiene): same pool hand-back as
                // above — no new heap in steady state
                self.pool.push(data);
            }
        }
        self.param_cache.clear();
    }

    /// Number of recycled buffers currently pooled (diagnostics/tests).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.len()
    }

    /// Install a span tracer: each [`Tape::backward`] call records a
    /// `neural.backward` span. Tracing never touches the arithmetic, so
    /// gradients are bit-identical with or without it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// An empty buffer, recycled from the pool when one is available.
    fn take_buf(&mut self) -> Vec<S> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Return a temporary tensor's storage to the pool.
    fn recycle(&mut self, t: Tensor<S>) {
        let (_, data) = t.into_parts();
        if data.capacity() > 0 {
            self.pool.push(data);
        }
    }

    /// Pooled elementwise zip of two node values.
    fn pooled_zip_nodes(&mut self, a: usize, b: usize, f: impl Fn(S, S) -> S) -> Tensor<S> {
        let mut buf = self.take_buf();
        let x = &self.nodes[a].value;
        let y = &self.nodes[b].value;
        assert_eq!(x.shape(), y.shape(), "shape mismatch in zip_map");
        buf.extend(x.data().iter().zip(y.data()).map(|(&p, &q)| f(p, q)));
        Tensor::from_shape_data(x.shape().to_vec(), buf)
    }

    /// Pooled elementwise zip of a node value with an external tensor.
    fn pooled_zip_node(&mut self, node: usize, t: &Tensor<S>, f: impl Fn(S, S) -> S) -> Tensor<S> {
        let mut buf = self.take_buf();
        let x = &self.nodes[node].value;
        assert_eq!(x.shape(), t.shape(), "shape mismatch in zip_map");
        buf.extend(x.data().iter().zip(t.data()).map(|(&p, &q)| f(p, q)));
        Tensor::from_shape_data(x.shape().to_vec(), buf)
    }

    /// Pooled elementwise map of a node value.
    fn pooled_map_node(&mut self, node: usize, f: impl Fn(S) -> S) -> Tensor<S> {
        let mut buf = self.take_buf();
        let x = &self.nodes[node].value;
        buf.extend(x.data().iter().map(|&p| f(p)));
        Tensor::from_shape_data(x.shape().to_vec(), buf)
    }

    /// Pooled elementwise map of an external tensor (gradient temporaries).
    fn pooled_map(&mut self, src: &Tensor<S>, f: impl Fn(S) -> S) -> Tensor<S> {
        let mut buf = self.take_buf();
        buf.extend(src.data().iter().map(|&x| f(x)));
        Tensor::from_shape_data(src.shape().to_vec(), buf)
    }

    fn push(&mut self, value: Tensor<S>, op: Op<S>) -> Var {
        self.nodes.push(Node {
            value,
            op,
            param: None,
        });
        Var(self.nodes.len() - 1)
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Insert a constant (non-parameter) leaf.
    pub fn leaf(&mut self, value: Tensor<S>) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Insert (or reuse) a leaf for a trainable parameter. Repeated calls
    /// with the same id return the same node, so gradients accumulate.
    pub fn param(&mut self, store: &ParamStore<S>, id: ParamId) -> Var {
        if let Some(&v) = self.param_cache.get(&id) {
            return v;
        }
        let mut buf = self.take_buf();
        let src = store.value(id);
        buf.extend_from_slice(src.data());
        let value = Tensor::from_shape_data(src.shape().to_vec(), buf);
        let v = self.push(value, Op::Leaf);
        self.nodes[v.0].param = Some(id);
        self.param_cache.insert(id, v);
        v
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor<S> {
        &self.nodes[v.0].value
    }

    /// Elementwise addition.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.pooled_zip_nodes(a.0, b.0, |x, y| x + y);
        self.push(v, Op::Add(a.0, b.0))
    }

    /// Elementwise subtraction `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.pooled_zip_nodes(a.0, b.0, |x, y| x - y);
        self.push(v, Op::Sub(a.0, b.0))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.pooled_zip_nodes(a.0, b.0, |x, y| x * y);
        self.push(v, Op::Mul(a.0, b.0))
    }

    /// Elementwise affine map `alpha * a + beta`.
    pub fn affine(&mut self, a: Var, alpha: S, beta: S) -> Var {
        let v = self.pooled_map_node(a.0, |x| alpha * x + beta);
        self.push(v, Op::Affine(a.0, alpha, beta))
    }

    /// Matrix-vector product; `w` must be a matrix node, `x` a vector node.
    pub fn matvec(&mut self, w: Var, x: Var) -> Var {
        let mut buf = self.take_buf();
        let wv = &self.nodes[w.0].value;
        let xv = &self.nodes[x.0].value;
        assert!(wv.is_matrix(), "matvec on non-matrix");
        let (m, n) = (wv.rows(), wv.cols());
        assert_eq!(
            xv.len(),
            n,
            "matvec: matrix cols {n} != vec len {}",
            xv.len()
        );
        // Same inner expression as Tensor::matvec — bit-identical output.
        buf.extend(
            wv.data()
                .chunks_exact(n)
                .map(|row| row.iter().zip(xv.data()).map(|(&a, &b)| a * b).sum::<S>()),
        );
        self.push(Tensor::from_shape_data(vec![m], buf), Op::MatVec(w.0, x.0))
    }

    /// Batched linear kernel `x (B, k) * w^T` where `w` is `(n, k)`,
    /// yielding `(B, n)` — one differentiable node wrapping the
    /// lane-blocked `matmul_bt` kernel, so a whole mini-batch of rows
    /// goes through the weight matrix as one large product.
    ///
    /// Row `b` of the output is bit-identical to
    /// `matvec(w_as_rows, x_row_b)`: both reduce ascending-`k` into a
    /// single accumulator per element.
    ///
    /// # Panics
    ///
    /// Panics unless `x` is `(B, k)` and `w` is `(n, k)`.
    pub fn matmul_bt(&mut self, x: Var, w: Var) -> Var {
        let mut buf = self.take_buf();
        let (m, n) = {
            let xv = &self.nodes[x.0].value;
            let wv = &self.nodes[w.0].value;
            assert!(xv.is_matrix() && wv.is_matrix(), "matmul_bt on non-matrix");
            let (m, k) = (xv.rows(), xv.cols());
            let (n, wk) = (wv.rows(), wv.cols());
            assert_eq!(k, wk, "matmul_bt: inner dims {k} != {wk}");
            buf.resize(m * n, S::ZERO);
            matmul_bt_into(xv.data(), wv.data(), m, k, n, &mut buf);
            (m, n)
        };
        self.push(
            Tensor::from_shape_data(vec![m, n], buf),
            Op::MatMulBt(x.0, w.0),
        )
    }

    /// Broadcast-add a vector node `bias (n)` to every row of a matrix
    /// node `x (B, n)` — the batched counterpart of `add` after a
    /// linear layer.
    ///
    /// # Panics
    ///
    /// Panics unless `x` is a matrix whose column count equals
    /// `bias.len()`.
    pub fn add_rows(&mut self, x: Var, bias: Var) -> Var {
        let mut buf = self.take_buf();
        let rows = {
            let xv = &self.nodes[x.0].value;
            let bv = &self.nodes[bias.0].value;
            assert!(xv.is_matrix(), "add_rows on non-matrix");
            let n = xv.cols();
            assert_eq!(
                bv.len(),
                n,
                "add_rows: matrix cols {n} != bias len {}",
                bv.len()
            );
            for row in xv.data().chunks_exact(n) {
                buf.extend(row.iter().zip(bv.data()).map(|(&a, &b)| a + b));
            }
            xv.rows()
        };
        let n = buf.len() / rows.max(1);
        self.push(
            Tensor::from_shape_data(vec![rows, n], buf),
            Op::AddRows(x.0, bias.0),
        )
    }

    /// Concatenate matrix nodes along columns: all parts must share one
    /// row count `B`; the result is `(B, Σ cols)`. Row `b` of the output
    /// is the concatenation of row `b` of every part — the batched
    /// counterpart of `concat`.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let mut buf = self.take_buf();
        let rows = self.nodes[parts[0].0].value.rows();
        for p in parts {
            assert_eq!(
                self.nodes[p.0].value.rows(),
                rows,
                "concat_cols: row count mismatch"
            );
        }
        for b in 0..rows {
            for p in parts {
                let pv = &self.nodes[p.0].value;
                let w = pv.cols();
                buf.extend_from_slice(&pv.data()[b * w..(b + 1) * w]);
            }
        }
        let total = buf.len() / rows.max(1);
        self.push(
            Tensor::from_shape_data(vec![rows, total], buf),
            Op::ConcatCols(parts.iter().map(|p| p.0).collect()),
        )
    }

    /// Per-row gather: row `b` of the output is row `b` of
    /// `sources[choice[b]]`. All sources must be `(B, w)` matrices with
    /// `B == choice.len()`. This is how a batch of graphs, each with its
    /// own device wiring, selects per-graph rows out of shared
    /// batch-stacked hidden states.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or an out-of-range choice.
    pub fn select_rows(&mut self, sources: &[Var], choice: &[u32]) -> Var {
        assert!(!sources.is_empty(), "select_rows needs at least one source");
        let mut buf = self.take_buf();
        let w = self.nodes[sources[0].0].value.cols();
        for s in sources {
            let sv = &self.nodes[s.0].value;
            assert_eq!(sv.cols(), w, "select_rows: column count mismatch");
            assert_eq!(
                sv.rows(),
                choice.len(),
                "select_rows: source rows != choice len"
            );
        }
        for (b, &c) in choice.iter().enumerate() {
            let sv = &self.nodes[sources[c as usize].0].value;
            buf.extend_from_slice(&sv.data()[b * w..(b + 1) * w]);
        }
        self.push(
            Tensor::from_shape_data(vec![choice.len(), w], buf),
            Op::SelectRows(sources.iter().map(|s| s.0).collect(), choice.to_vec()),
        )
    }

    /// Row-wise numerically stable softmax over the mask-valid columns
    /// of `x (B, T)`; masked-out entries get weight `0`. A row with no
    /// valid entry yields all zeros (instead of `0/0`), which keeps
    /// padded attention slots inert. A row with exactly one valid entry
    /// yields exactly `1` there.
    ///
    /// Per row, the exponentials accumulate in ascending column order —
    /// the same order as the vector `softmax` op — so a fully-valid row
    /// is bit-identical to `softmax` of that row.
    ///
    /// # Panics
    ///
    /// Panics unless `mask.len() == B * T`.
    pub fn masked_softmax_rows(&mut self, x: Var, mask: &[bool]) -> Var {
        let mut buf = self.take_buf();
        let (rows, cols) = {
            let xv = &self.nodes[x.0].value;
            assert!(xv.is_matrix(), "masked_softmax_rows on non-matrix");
            let (rows, cols) = (xv.rows(), xv.cols());
            assert_eq!(mask.len(), rows * cols, "mask length != rows * cols");
            for b in 0..rows {
                let row = &xv.data()[b * cols..(b + 1) * cols];
                let mrow = &mask[b * cols..(b + 1) * cols];
                let mut max = S::NEG_INFINITY;
                for (&v, &m) in row.iter().zip(mrow) {
                    if m {
                        max = max.max(v);
                    }
                }
                let start = buf.len();
                buf.extend(row.iter().zip(mrow).map(
                    |(&v, &m)| {
                        if m {
                            (v - max).exp()
                        } else {
                            S::ZERO
                        }
                    },
                ));
                let z: S = buf[start..].iter().copied().sum();
                if z != S::ZERO {
                    for e in &mut buf[start..] {
                        *e /= z;
                    }
                }
            }
            (rows, cols)
        };
        self.push(
            Tensor::from_shape_data(vec![rows, cols], buf),
            Op::MaskedSoftmaxRows(x.0, mask.to_vec()),
        )
    }

    /// Row-batched weighted sum: `weights` is `(B, T)` and every item is
    /// `(B, w)`; the result `(B, w)` has
    /// `y[b, :] = Σ_t weights[b, t] * items[t][b, :]` with the sum over
    /// `t` ascending — the batched counterpart of `weighted_sum`.
    ///
    /// # Panics
    ///
    /// Panics if `items.len()` differs from the weight columns or shapes
    /// mismatch.
    pub fn weighted_sum_rows(&mut self, weights: Var, items: &[Var]) -> Var {
        assert!(
            !items.is_empty(),
            "weighted_sum_rows needs at least one item"
        );
        let mut buf = self.take_buf();
        let (bsz, w) = {
            let wv = &self.nodes[weights.0].value;
            assert!(wv.is_matrix(), "weighted_sum_rows weights non-matrix");
            let (bsz, t) = (wv.rows(), wv.cols());
            assert_eq!(t, items.len(), "weights cols != item count");
            let w = self.nodes[items[0].0].value.cols();
            buf.resize(bsz * w, S::ZERO);
            for (tt, item) in items.iter().enumerate() {
                let iv = &self.nodes[item.0].value;
                assert_eq!(iv.rows(), bsz, "weighted_sum_rows: item rows != B");
                assert_eq!(iv.cols(), w, "weighted_sum_rows: item cols mismatch");
                for b in 0..bsz {
                    let alpha = wv.data()[b * t + tt];
                    let dst = &mut buf[b * w..(b + 1) * w];
                    let src = &iv.data()[b * w..(b + 1) * w];
                    for (o, &v) in dst.iter_mut().zip(src) {
                        *o += alpha * v;
                    }
                }
            }
            (bsz, w)
        };
        self.push(
            Tensor::from_shape_data(vec![bsz, w], buf),
            Op::WeightedSumRows(weights.0, items.iter().map(|p| p.0).collect()),
        )
    }

    /// Concatenate vector nodes.
    pub fn concat(&mut self, parts: &[Var]) -> Var {
        let mut buf = self.take_buf();
        for p in parts {
            buf.extend_from_slice(self.nodes[p.0].value.data());
        }
        let v = Tensor::from_shape_data(vec![buf.len()], buf);
        self.push(v, Op::Concat(parts.iter().map(|p| p.0).collect()))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.pooled_map_node(a.0, |x| S::ONE / (S::ONE + (-x).exp()));
        self.push(v, Op::Sigmoid(a.0))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.pooled_map_node(a.0, S::tanh);
        self.push(v, Op::Tanh(a.0))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.pooled_map_node(a.0, |x| x.max(S::ZERO));
        self.push(v, Op::Relu(a.0))
    }

    /// Leaky ReLU with negative slope `slope`.
    pub fn leaky_relu(&mut self, a: Var, slope: S) -> Var {
        let v = self.pooled_map_node(a.0, |x| if x > S::ZERO { x } else { slope * x });
        self.push(v, Op::LeakyRelu(a.0, slope))
    }

    /// Numerically stable softmax over a vector.
    pub fn softmax(&mut self, a: Var) -> Var {
        let mut buf = self.take_buf();
        let x = &self.nodes[a.0].value;
        let max = x.data().iter().copied().fold(S::NEG_INFINITY, S::max);
        buf.extend(x.data().iter().map(|&v| (v - max).exp()));
        let z: S = buf.iter().copied().sum();
        for e in &mut buf {
            *e /= z;
        }
        let v = Tensor::from_shape_data(vec![buf.len()], buf);
        self.push(v, Op::Softmax(a.0))
    }

    /// Sum all elements into a scalar node.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.sum());
        self.push(v, Op::Sum(a.0))
    }

    /// Dot product of two vector nodes, as a scalar node.
    pub fn dot(&mut self, a: Var, b: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.dot(&self.nodes[b.0].value));
        self.push(v, Op::Dot(a.0, b.0))
    }

    /// Stack scalar nodes into one vector node.
    ///
    /// # Panics
    ///
    /// Panics if any input is not a scalar.
    pub fn stack_scalars(&mut self, parts: &[Var]) -> Var {
        let mut buf = self.take_buf();
        buf.extend(parts.iter().map(|p| self.nodes[p.0].value.item()));
        self.push(
            Tensor::from_shape_data(vec![buf.len()], buf),
            Op::StackScalars(parts.iter().map(|p| p.0).collect()),
        )
    }

    /// `Σ_t weights[t] * items[t]` where `weights` is a vector node of the
    /// same length as `items` and all items share one shape.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or lengths mismatch.
    pub fn weighted_sum(&mut self, weights: Var, items: &[Var]) -> Var {
        assert!(!items.is_empty(), "weighted_sum needs at least one item");
        let mut buf = self.take_buf();
        let w = &self.nodes[weights.0].value;
        assert_eq!(w.len(), items.len(), "weights/items length mismatch");
        let shape = self.nodes[items[0].0].value.shape().to_vec();
        buf.resize(self.nodes[items[0].0].value.len(), S::ZERO);
        for (t, item) in items.iter().enumerate() {
            let it = &self.nodes[item.0].value;
            assert_eq!(it.shape(), &shape[..], "shape mismatch in add_scaled");
            let alpha = w.data()[t];
            for (a, &b) in buf.iter_mut().zip(it.data()) {
                *a += alpha * b;
            }
        }
        self.push(
            Tensor::from_shape_data(shape, buf),
            Op::WeightedSum(weights.0, items.iter().map(|p| p.0).collect()),
        )
    }

    /// Elementwise mean of equal-shaped vector nodes.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn mean_vecs(&mut self, items: &[Var]) -> Var {
        assert!(!items.is_empty(), "mean_vecs needs at least one item");
        let mut buf = self.take_buf();
        let shape = self.nodes[items[0].0].value.shape().to_vec();
        buf.resize(self.nodes[items[0].0].value.len(), S::ZERO);
        for item in items {
            let it = &self.nodes[item.0].value;
            assert_eq!(it.shape(), &shape[..], "shape mismatch in add_assign");
            for (a, &b) in buf.iter_mut().zip(it.data()) {
                *a += b;
            }
        }
        let n = S::from_f64(items.len() as f64);
        for x in &mut buf {
            *x /= n;
        }
        self.push(
            Tensor::from_shape_data(shape, buf),
            Op::MeanVecs(items.iter().map(|p| p.0).collect()),
        )
    }

    /// Convenience: squared error `(a - b)^2` summed to a scalar.
    pub fn squared_error(&mut self, a: Var, b: Var) -> Var {
        let d = self.sub(a, b);
        let sq = self.mul(d, d);
        self.sum(sq)
    }

    /// Run reverse-mode differentiation from a scalar `loss` node.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar.
    pub fn backward(&mut self, loss: Var) {
        let _span = self.tracer.span("neural.backward");
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward() requires a scalar loss"
        );
        // Recycle gradient storage from a previous backward pass (if
        // `reset` was not called in between) and re-arm the slots. The
        // outer Vec keeps its capacity across steps.
        for stale in self.grads.drain(..).flatten() {
            let (_, data) = stale.into_parts();
            if data.capacity() > 0 {
                self.pool.push(data);
            }
        }
        self.grads.resize(self.nodes.len(), None);
        let mut seed = self.take_buf();
        seed.push(S::ONE);
        self.grads[loss.0] = Some(Tensor::from_shape_data(vec![1], seed));

        for idx in (0..self.nodes.len()).rev() {
            // Take the gradient out of its slot (restored below) so the
            // hot loop never clones it. Parents always precede children
            // on the tape, so no arm can touch slot `idx`.
            let Some(g) = self.grads[idx].take() else {
                continue;
            };
            // Detach the op descriptor the same way (restored below) to
            // avoid cloning index lists on every node.
            let op = std::mem::replace(&mut self.nodes[idx].op, Op::Leaf);
            match &op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    self.bump(*a, &g);
                    self.bump(*b, &g);
                }
                Op::Sub(a, b) => {
                    self.bump(*a, &g);
                    let neg = self.pooled_map(&g, |x| -x);
                    self.bump(*b, &neg);
                    self.recycle(neg);
                }
                Op::Mul(a, b) => {
                    let da = self.pooled_zip_node(*b, &g, |x, gg| x * gg);
                    let db = self.pooled_zip_node(*a, &g, |x, gg| x * gg);
                    self.bump(*a, &da);
                    self.bump(*b, &db);
                    self.recycle(da);
                    self.recycle(db);
                }
                Op::Affine(a, alpha, _beta) => {
                    let alpha = *alpha;
                    let da = self.pooled_map(&g, |x| alpha * x);
                    self.bump(*a, &da);
                    self.recycle(da);
                }
                Op::MatVec(w, x) => {
                    let dw = {
                        let mut buf = self.take_buf();
                        let xv = &self.nodes[*x].value;
                        for &a in g.data() {
                            for &b in xv.data() {
                                buf.push(a * b);
                            }
                        }
                        Tensor::from_shape_data(vec![g.len(), xv.len()], buf)
                    };
                    let dx = {
                        let mut buf = self.take_buf();
                        let wv = &self.nodes[*w].value;
                        let (m, n) = (wv.rows(), wv.cols());
                        buf.resize(n, S::ZERO);
                        for i in 0..m {
                            let gi = g.data()[i];
                            if gi == S::ZERO {
                                continue;
                            }
                            let row = &wv.data()[i * n..(i + 1) * n];
                            for (o, &r) in buf.iter_mut().zip(row) {
                                *o += gi * r;
                            }
                        }
                        Tensor::from_shape_data(vec![n], buf)
                    };
                    self.bump(*w, &dw);
                    self.bump(*x, &dx);
                    self.recycle(dw);
                    self.recycle(dx);
                }
                Op::MatMulBt(x, w) => {
                    // y (m,n) = x (m,k) * w^T with w (n,k):
                    //   dx (m,k) += g (m,n) * w      (row-axpy over n)
                    //   dw (n,k) += g^T * x          (outer accumulation over m)
                    let (m, n) = (g.rows(), g.cols());
                    let k = self.nodes[*w].value.cols();
                    let dx = {
                        let mut buf = self.take_buf();
                        buf.resize(m * k, S::ZERO);
                        let wv = self.nodes[*w].value.data();
                        for b in 0..m {
                            let g_row = &g.data()[b * n..(b + 1) * n];
                            let out_row = &mut buf[b * k..(b + 1) * k];
                            for (j, &gj) in g_row.iter().enumerate() {
                                if gj == S::ZERO {
                                    continue;
                                }
                                let w_row = &wv[j * k..(j + 1) * k];
                                for (o, &wv_) in out_row.iter_mut().zip(w_row) {
                                    *o += gj * wv_;
                                }
                            }
                        }
                        Tensor::from_shape_data(vec![m, k], buf)
                    };
                    let dw = {
                        let mut buf = self.take_buf();
                        buf.resize(n * k, S::ZERO);
                        let xv = self.nodes[*x].value.data();
                        for b in 0..m {
                            let g_row = &g.data()[b * n..(b + 1) * n];
                            let x_row = &xv[b * k..(b + 1) * k];
                            for (j, &gj) in g_row.iter().enumerate() {
                                if gj == S::ZERO {
                                    continue;
                                }
                                let out_row = &mut buf[j * k..(j + 1) * k];
                                for (o, &xx) in out_row.iter_mut().zip(x_row) {
                                    *o += gj * xx;
                                }
                            }
                        }
                        Tensor::from_shape_data(vec![n, k], buf)
                    };
                    self.bump(*x, &dx);
                    self.bump(*w, &dw);
                    self.recycle(dx);
                    self.recycle(dw);
                }
                Op::AddRows(x, bias) => {
                    let n = self.nodes[*bias].value.len();
                    let db = {
                        let mut buf = self.take_buf();
                        buf.resize(n, S::ZERO);
                        for row in g.data().chunks_exact(n) {
                            for (o, &v) in buf.iter_mut().zip(row) {
                                *o += v;
                            }
                        }
                        Tensor::from_shape_data(vec![n], buf)
                    };
                    self.bump(*x, &g);
                    self.bump(*bias, &db);
                    self.recycle(db);
                }
                Op::ConcatCols(parts) => {
                    let total = g.cols();
                    let mut off = 0;
                    for &p in parts {
                        let (rows, w) = {
                            let pv = &self.nodes[p].value;
                            (pv.rows(), pv.cols())
                        };
                        let mut buf = self.take_buf();
                        for b in 0..rows {
                            buf.extend_from_slice(&g.data()[b * total + off..b * total + off + w]);
                        }
                        let dp = Tensor::from_shape_data(vec![rows, w], buf);
                        self.bump(p, &dp);
                        self.recycle(dp);
                        off += w;
                    }
                }
                Op::SelectRows(sources, choice) => {
                    let w = g.cols();
                    for (b, &c) in choice.iter().enumerate() {
                        self.bump_row(sources[c as usize], b, &g.data()[b * w..(b + 1) * w]);
                    }
                }
                Op::MaskedSoftmaxRows(a, _mask) => {
                    // Masked-out columns have y = 0, which zeroes both
                    // their contribution to gy and their own da — the
                    // regular softmax Jacobian applied row-wise suffices.
                    let (rows, cols) = (g.rows(), g.cols());
                    let da = {
                        let mut buf = self.take_buf();
                        for b in 0..rows {
                            let yrow = &self.nodes[idx].value.data()[b * cols..(b + 1) * cols];
                            let grow = &g.data()[b * cols..(b + 1) * cols];
                            let gy: S = yrow.iter().zip(grow).map(|(&yy, &gg)| yy * gg).sum();
                            buf.extend(yrow.iter().zip(grow).map(|(&yy, &gg)| yy * (gg - gy)));
                        }
                        Tensor::from_shape_data(vec![rows, cols], buf)
                    };
                    self.bump(*a, &da);
                    self.recycle(da);
                }
                Op::WeightedSumRows(w, items) => {
                    let (bsz, t) = {
                        let wv = &self.nodes[*w].value;
                        (wv.rows(), wv.cols())
                    };
                    let width = g.cols();
                    let mut dw = self.take_buf();
                    dw.resize(bsz * t, S::ZERO);
                    for (tt, &item) in items.iter().enumerate() {
                        let di = {
                            let mut buf = self.take_buf();
                            let wv = &self.nodes[*w].value;
                            for b in 0..bsz {
                                let alpha = wv.data()[b * t + tt];
                                buf.extend(
                                    g.data()[b * width..(b + 1) * width]
                                        .iter()
                                        .map(|&x| alpha * x),
                                );
                            }
                            Tensor::from_shape_data(vec![bsz, width], buf)
                        };
                        {
                            let iv = &self.nodes[item].value;
                            for b in 0..bsz {
                                dw[b * t + tt] = iv.data()[b * width..(b + 1) * width]
                                    .iter()
                                    .zip(&g.data()[b * width..(b + 1) * width])
                                    .map(|(&x, &gg)| x * gg)
                                    .sum();
                            }
                        }
                        self.bump(item, &di);
                        self.recycle(di);
                    }
                    let dw = Tensor::from_shape_data(vec![bsz, t], dw);
                    self.bump(*w, &dw);
                    self.recycle(dw);
                }
                Op::Concat(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let len = self.nodes[p].value.len();
                        let mut buf = self.take_buf();
                        buf.extend_from_slice(&g.data()[offset..offset + len]);
                        let slice = Tensor::from_shape_data(vec![len], buf);
                        self.bump(p, &slice);
                        self.recycle(slice);
                        offset += len;
                    }
                }
                Op::Sigmoid(a) => {
                    let da = self.pooled_zip_node(idx, &g, |yy, gg| yy * (S::ONE - yy) * gg);
                    self.bump(*a, &da);
                    self.recycle(da);
                }
                Op::Tanh(a) => {
                    let da = self.pooled_zip_node(idx, &g, |yy, gg| (S::ONE - yy * yy) * gg);
                    self.bump(*a, &da);
                    self.recycle(da);
                }
                Op::Relu(a) => {
                    let da = self.pooled_zip_node(
                        *a,
                        &g,
                        |xx, gg| if xx > S::ZERO { gg } else { S::ZERO },
                    );
                    self.bump(*a, &da);
                    self.recycle(da);
                }
                Op::LeakyRelu(a, slope) => {
                    let slope = *slope;
                    let da =
                        self.pooled_zip_node(
                            *a,
                            &g,
                            |xx, gg| if xx > S::ZERO { gg } else { slope * gg },
                        );
                    self.bump(*a, &da);
                    self.recycle(da);
                }
                Op::Softmax(a) => {
                    let gy = g.dot(&self.nodes[idx].value);
                    let da = self.pooled_zip_node(idx, &g, |yy, gg| yy * (gg - gy));
                    self.bump(*a, &da);
                    self.recycle(da);
                }
                Op::Sum(a) => {
                    let gv = g.item();
                    let ones = self.pooled_map_node(*a, |_| gv);
                    self.bump(*a, &ones);
                    self.recycle(ones);
                }
                Op::Dot(a, b) => {
                    let gv = g.item();
                    let da = self.pooled_map_node(*b, |x| gv * x);
                    let db = self.pooled_map_node(*a, |x| gv * x);
                    self.bump(*a, &da);
                    self.bump(*b, &db);
                    self.recycle(da);
                    self.recycle(db);
                }
                Op::StackScalars(parts) => {
                    for (t, &p) in parts.iter().enumerate() {
                        let mut buf = self.take_buf();
                        buf.push(g.data()[t]);
                        let s = Tensor::from_shape_data(vec![1], buf);
                        self.bump(p, &s);
                        self.recycle(s);
                    }
                }
                Op::WeightedSum(w, items) => {
                    let mut wvals = self.take_buf();
                    wvals.extend_from_slice(self.nodes[*w].value.data());
                    let mut dw = self.take_buf();
                    dw.resize(items.len(), S::ZERO);
                    for (t, &item) in items.iter().enumerate() {
                        let wt = wvals[t];
                        let di = self.pooled_map(&g, |x| wt * x);
                        dw[t] = self.nodes[item].value.dot(&g);
                        self.bump(item, &di);
                        self.recycle(di);
                    }
                    let dw = Tensor::from_shape_data(vec![items.len()], dw);
                    self.bump(*w, &dw);
                    self.recycle(dw);
                    self.pool.push(wvals);
                }
                Op::MeanVecs(items) => {
                    let n = S::from_f64(items.len() as f64);
                    let di = self.pooled_map(&g, |x| x / n);
                    for &item in items {
                        self.bump(item, &di);
                    }
                    self.recycle(di);
                }
            }
            self.nodes[idx].op = op;
            self.grads[idx] = Some(g);
        }
    }

    fn bump(&mut self, node: usize, g: &Tensor<S>) {
        if let Some(acc) = &mut self.grads[node] {
            acc.add_assign(g);
        } else {
            let mut buf = self.take_buf();
            buf.extend_from_slice(g.data());
            self.grads[node] = Some(Tensor::from_shape_data(g.shape().to_vec(), buf));
        }
    }

    /// Accumulate a gradient slice into one row of a node's gradient,
    /// materializing a zeroed accumulator on first touch (scatter-add
    /// backward of [`Tape::select_rows`]).
    fn bump_row(&mut self, node: usize, b: usize, g_row: &[S]) {
        if self.grads[node].is_none() {
            let (shape, len) = {
                let v = &self.nodes[node].value;
                (v.shape().to_vec(), v.len())
            };
            let mut buf = self.take_buf();
            buf.resize(len, S::ZERO);
            self.grads[node] = Some(Tensor::from_shape_data(shape, buf));
        }
        if let Some(acc) = &mut self.grads[node] {
            let w = g_row.len();
            for (o, &v) in acc.data_mut()[b * w..(b + 1) * w].iter_mut().zip(g_row) {
                *o += v;
            }
        }
    }

    /// Gradient of a node after [`Tape::backward`]. Nodes unreachable from
    /// the loss have zero gradient.
    ///
    /// # Panics
    ///
    /// Panics if `backward` has not been called.
    pub fn grad(&self, v: Var) -> Tensor<S> {
        assert!(!self.grads.is_empty(), "call backward() first");
        self.grads[v.0]
            .clone()
            .unwrap_or_else(|| self.nodes[v.0].value.zeros_like())
    }

    /// Fold parameter-leaf gradients into the store's accumulators.
    ///
    /// # Panics
    ///
    /// Panics if `backward` has not been called.
    pub fn accumulate_param_grads(&self, store: &mut ParamStore<S>) {
        assert!(!self.grads.is_empty(), "call backward() first");
        for (&id, &var) in &self.param_cache {
            if let Some(g) = &self.grads[var.0] {
                store.accumulate_grad(id, g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    fn finite_diff(f: impl Fn(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
        let eps = 1e-6;
        let mut g = vec![0.0; x.len()];
        let mut xp = x.to_vec();
        for i in 0..x.len() {
            let orig = xp[i];
            xp[i] = orig + eps;
            let fp = f(&xp);
            xp[i] = orig - eps;
            let fm = f(&xp);
            xp[i] = orig;
            g[i] = (fp - fm) / (2.0 * eps);
        }
        g
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn grad_of_sum_of_squares() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, -2.0, 3.0]));
        let y = tape.mul(x, x);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_close(tape.grad(x).data(), &[2.0, -4.0, 6.0], 1e-12);
    }

    #[test]
    fn matvec_gradient_matches_finite_difference() {
        let w0 = vec![0.3, -0.2, 0.5, 0.1, 0.4, -0.6];
        let x0 = vec![1.0, -1.5, 0.7];
        let f = |wx: &[f64]| {
            let w = Tensor::matrix(2, 3, wx[..6].to_vec());
            let x = Tensor::from_vec(wx[6..].to_vec());
            let y = w.matvec(&x);
            y.data().iter().map(|v| v * v).sum::<f64>()
        };
        let mut joint = w0.clone();
        joint.extend_from_slice(&x0);
        let num = finite_diff(f, &joint);

        let mut tape = Tape::new();
        let w = tape.leaf(Tensor::matrix(2, 3, w0));
        let x = tape.leaf(Tensor::from_vec(x0));
        let y = tape.matvec(w, x);
        let y2 = tape.mul(y, y);
        let loss = tape.sum(y2);
        tape.backward(loss);
        let mut ana = tape.grad(w).data().to_vec();
        ana.extend_from_slice(tape.grad(x).data());
        assert_close(&ana, &num, 1e-5);
    }

    #[test]
    fn matmul_bt_forward_matches_tensor_kernel_bitwise() {
        let x0: Vec<f64> = vec![0.3, -0.2, 0.5, 0.1, 0.4, -0.6];
        let w0: Vec<f64> = vec![1.0, -1.5, 0.7, 0.2, 0.9, -0.3];
        let xt = Tensor::matrix(2, 3, x0.clone());
        let wt = Tensor::matrix(2, 3, w0.clone());
        let expect = xt.matmul_bt(&wt);
        let mut tape = Tape::new();
        let x = tape.leaf(xt);
        let w = tape.leaf(wt);
        let y = tape.matmul_bt(x, w);
        assert_eq!(tape.value(y).shape(), &[2, 2]);
        for (a, b) in tape.value(y).data().iter().zip(expect.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matmul_bt_gradient_matches_finite_difference() {
        // x (2,3), w (2,3): loss = Σ (x w^T)^2.
        let flat0 = vec![
            0.3, -0.2, 0.5, 0.1, 0.4, -0.6, 1.0, -1.5, 0.7, 0.2, 0.9, -0.3,
        ];
        let f = |v: &[f64]| {
            let x = Tensor::matrix(2, 3, v[..6].to_vec());
            let w = Tensor::matrix(2, 3, v[6..].to_vec());
            x.matmul_bt(&w).data().iter().map(|y| y * y).sum::<f64>()
        };
        let num = finite_diff(f, &flat0);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::matrix(2, 3, flat0[..6].to_vec()));
        let w = tape.leaf(Tensor::matrix(2, 3, flat0[6..].to_vec()));
        let y = tape.matmul_bt(x, w);
        let sq = tape.mul(y, y);
        let loss = tape.sum(sq);
        tape.backward(loss);
        let mut ana = tape.grad(x).data().to_vec();
        ana.extend_from_slice(tape.grad(w).data());
        assert_close(&ana, &num, 1e-5);
    }

    #[test]
    fn add_rows_gradient_sums_bias_columns() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::matrix(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let b = tape.leaf(Tensor::from_vec(vec![10., 20., 30.]));
        let y = tape.add_rows(x, b);
        assert_eq!(tape.value(y).data(), &[11., 22., 33., 14., 25., 36.]);
        let sc = tape.leaf(Tensor::matrix(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let m = tape.mul(y, sc);
        let loss = tape.sum(m);
        tape.backward(loss);
        assert_close(tape.grad(x).data(), &[1., 2., 3., 4., 5., 6.], 1e-12);
        assert_close(tape.grad(b).data(), &[5., 7., 9.], 1e-12);
    }

    #[test]
    fn concat_cols_routes_gradients_per_column_block() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::matrix(2, 2, vec![1., 2., 3., 4.]));
        let b = tape.leaf(Tensor::matrix(2, 1, vec![5., 6.]));
        let c = tape.concat_cols(&[a, b]);
        assert_eq!(tape.value(c).shape(), &[2, 3]);
        assert_eq!(tape.value(c).data(), &[1., 2., 5., 3., 4., 6.]);
        let w = tape.leaf(Tensor::matrix(2, 3, vec![10., 20., 30., 40., 50., 60.]));
        let m = tape.mul(c, w);
        let loss = tape.sum(m);
        tape.backward(loss);
        assert_close(tape.grad(a).data(), &[10., 20., 40., 50.], 1e-12);
        assert_close(tape.grad(b).data(), &[30., 60.], 1e-12);
    }

    #[test]
    fn select_rows_gathers_and_scatters() {
        let mut tape = Tape::new();
        let s0 = tape.leaf(Tensor::matrix(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let s1 = tape.leaf(Tensor::matrix(3, 2, vec![10., 20., 30., 40., 50., 60.]));
        let y = tape.select_rows(&[s0, s1], &[1, 0, 1]);
        assert_eq!(tape.value(y).data(), &[10., 20., 3., 4., 50., 60.]);
        let w = tape.leaf(Tensor::matrix(3, 2, vec![1., 1., 2., 2., 3., 3.]));
        let m = tape.mul(y, w);
        let loss = tape.sum(m);
        tape.backward(loss);
        // Rows picked from s1 leave zero gradient on s0 and vice versa.
        assert_close(tape.grad(s0).data(), &[0., 0., 2., 2., 0., 0.], 1e-12);
        assert_close(tape.grad(s1).data(), &[1., 1., 0., 0., 3., 3.], 1e-12);
    }

    #[test]
    fn masked_softmax_rows_matches_vector_softmax_on_valid_rows() {
        let mut tape = Tape::<f64>::new();
        let x = tape.leaf(Tensor::matrix(2, 3, vec![0.5, -0.5, 1.5, 2.0, 0.0, -1.0]));
        let y = tape.masked_softmax_rows(x, &[true; 6]);
        let xv0 = tape.leaf(Tensor::from_vec(vec![0.5, -0.5, 1.5]));
        let sm0 = tape.softmax(xv0);
        for (a, b) in tape.value(y).data()[..3].iter().zip(tape.value(sm0).data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn masked_softmax_rows_handles_masks_and_empty_rows() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::matrix(
            3,
            3,
            vec![5.0, 1.0, 9.0, 2.0, 3.0, 4.0, 7.0, 8.0, 6.0],
        ));
        // Row 0: only col 0 and 1 valid; row 1: only col 2; row 2: none.
        let mask = [true, true, false, false, false, true, false, false, false];
        let y = tape.masked_softmax_rows(x, &mask);
        let yv = tape.value(y).data().to_vec();
        // Row 0 softmaxes over {5, 1}; the masked 9 must not leak in.
        let z = (0.0f64).exp() + (-4.0f64).exp();
        assert!((yv[0] - 1.0 / z).abs() < 1e-12);
        assert!((yv[1] - (-4.0f64).exp() / z).abs() < 1e-12);
        assert_eq!(yv[2], 0.0);
        // Row 1: single valid entry is exactly 1.
        assert_eq!(yv[5], 1.0);
        // Row 2: all masked → all zeros, no NaN.
        assert_eq!(&yv[6..], &[0.0, 0.0, 0.0]);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert!(tape.grad(x).data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn masked_softmax_rows_gradient_matches_finite_difference() {
        let x0 = vec![0.5, -0.5, 1.5, 2.0, 0.3, -0.8];
        let mask = [true, true, false, true, true, true];
        let target = [0.6, 0.4, 0.0, 0.1, 0.5, 0.4];
        let f = |x: &[f64]| {
            let mut total = 0.0;
            for b in 0..2 {
                let row = &x[b * 3..(b + 1) * 3];
                let mrow = &mask[b * 3..(b + 1) * 3];
                let max = row
                    .iter()
                    .zip(mrow)
                    .filter(|(_, &m)| m)
                    .map(|(&v, _)| v)
                    .fold(f64::NEG_INFINITY, f64::max);
                let exps: Vec<f64> = row
                    .iter()
                    .zip(mrow)
                    .map(|(&v, &m)| if m { (v - max).exp() } else { 0.0 })
                    .collect();
                let z: f64 = exps.iter().sum();
                for (j, e) in exps.iter().enumerate() {
                    total += (e / z - target[b * 3 + j]).powi(2);
                }
            }
            total
        };
        let num = finite_diff(f, &x0);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::matrix(2, 3, x0));
        let y = tape.masked_softmax_rows(x, &mask);
        let t = tape.leaf(Tensor::matrix(2, 3, target.to_vec()));
        let loss = tape.squared_error(y, t);
        tape.backward(loss);
        assert_close(tape.grad(x).data(), &num, 1e-6);
    }

    #[test]
    fn weighted_sum_rows_gradient_matches_finite_difference() {
        // B=2 rows, T=2 items of width 2, plus a (2,2) weight matrix.
        let flat0 = vec![
            0.2, -0.3, 0.5, 1.0, // item 0 (2x2)
            0.8, -0.1, 0.6, 0.4, // item 1 (2x2)
            0.7, 0.3, -0.2, 0.9, // weights (2x2)
        ];
        let f = |v: &[f64]| {
            let i0 = &v[0..4];
            let i1 = &v[4..8];
            let w = &v[8..12];
            let mut total = 0.0;
            for b in 0..2 {
                for d in 0..2 {
                    let s = w[b * 2] * i0[b * 2 + d] + w[b * 2 + 1] * i1[b * 2 + d];
                    total += s * s;
                }
            }
            total
        };
        let num = finite_diff(f, &flat0);
        let mut tape = Tape::new();
        let i0 = tape.leaf(Tensor::matrix(2, 2, flat0[0..4].to_vec()));
        let i1 = tape.leaf(Tensor::matrix(2, 2, flat0[4..8].to_vec()));
        let w = tape.leaf(Tensor::matrix(2, 2, flat0[8..12].to_vec()));
        let ws = tape.weighted_sum_rows(w, &[i0, i1]);
        let sq = tape.mul(ws, ws);
        let loss = tape.sum(sq);
        tape.backward(loss);
        let mut ana = tape.grad(i0).data().to_vec();
        ana.extend_from_slice(tape.grad(i1).data());
        ana.extend_from_slice(tape.grad(w).data());
        assert_close(&ana, &num, 1e-6);
    }

    #[test]
    fn sigmoid_tanh_chain_gradient() {
        let x0 = vec![0.3, -0.8, 1.2];
        let f = |x: &[f64]| {
            x.iter()
                .map(|&v| {
                    let s = 1.0 / (1.0 + (-v).exp());
                    s.tanh()
                })
                .sum::<f64>()
        };
        let num = finite_diff(f, &x0);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(x0));
        let s = tape.sigmoid(x);
        let t = tape.tanh(s);
        let loss = tape.sum(t);
        tape.backward(loss);
        assert_close(tape.grad(x).data(), &num, 1e-6);
    }

    #[test]
    fn softmax_gradient_matches_finite_difference() {
        let x0 = vec![0.5, -0.5, 1.5, 0.0];
        let target = [0.1, 0.2, 0.3, 0.4];
        let f = |x: &[f64]| {
            let max = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = x.iter().map(|v| (v - max).exp()).collect();
            let z: f64 = exps.iter().sum();
            exps.iter()
                .zip(&target)
                .map(|(e, t)| (e / z - t).powi(2))
                .sum::<f64>()
        };
        let num = finite_diff(f, &x0);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(x0));
        let y = tape.softmax(x);
        let t = tape.leaf(Tensor::from_vec(target.to_vec()));
        let loss = tape.squared_error(y, t);
        tape.backward(loss);
        assert_close(tape.grad(x).data(), &num, 1e-6);
    }

    #[test]
    fn concat_routes_gradients() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![1.0, 2.0]));
        let b = tape.leaf(Tensor::from_vec(vec![3.0]));
        let c = tape.concat(&[a, b]);
        let w = tape.leaf(Tensor::from_vec(vec![10.0, 20.0, 30.0]));
        let d = tape.mul(c, w);
        let loss = tape.sum(d);
        tape.backward(loss);
        assert_close(tape.grad(a).data(), &[10.0, 20.0], 1e-12);
        assert_close(tape.grad(b).data(), &[30.0], 1e-12);
    }

    #[test]
    fn weighted_sum_gradient_matches_finite_difference() {
        // 2 items of dim 3 + 2 weights.
        let flat0 = vec![0.2, -0.3, 0.5, 1.0, 0.8, -0.1, 0.6, 0.4];
        let f = |v: &[f64]| {
            let i0 = &v[0..3];
            let i1 = &v[3..6];
            let w = &v[6..8];
            (0..3)
                .map(|d| {
                    let s = w[0] * i0[d] + w[1] * i1[d];
                    s * s
                })
                .sum::<f64>()
        };
        let num = finite_diff(f, &flat0);
        let mut tape = Tape::new();
        let i0 = tape.leaf(Tensor::from_vec(flat0[0..3].to_vec()));
        let i1 = tape.leaf(Tensor::from_vec(flat0[3..6].to_vec()));
        let w = tape.leaf(Tensor::from_vec(flat0[6..8].to_vec()));
        let ws = tape.weighted_sum(w, &[i0, i1]);
        let sq = tape.mul(ws, ws);
        let loss = tape.sum(sq);
        tape.backward(loss);
        let mut ana = tape.grad(i0).data().to_vec();
        ana.extend_from_slice(tape.grad(i1).data());
        ana.extend_from_slice(tape.grad(w).data());
        assert_close(&ana, &num, 1e-6);
    }

    #[test]
    fn mean_vecs_gradient_is_uniform() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(vec![2.0, 4.0]));
        let b = tape.leaf(Tensor::from_vec(vec![0.0, 0.0]));
        let m = tape.mean_vecs(&[a, b]);
        let loss = tape.sum(m);
        tape.backward(loss);
        assert_close(tape.grad(a).data(), &[0.5, 0.5], 1e-12);
        assert_close(tape.grad(b).data(), &[0.5, 0.5], 1e-12);
    }

    #[test]
    fn stack_scalars_and_dot_gradients() {
        let mut tape = Tape::new();
        let s1 = tape.leaf(Tensor::scalar(2.0));
        let s2 = tape.leaf(Tensor::scalar(-1.0));
        let v = tape.stack_scalars(&[s1, s2]);
        let w = tape.leaf(Tensor::from_vec(vec![3.0, 5.0]));
        let loss = tape.dot(v, w);
        tape.backward(loss);
        assert_close(tape.grad(s1).data(), &[3.0], 1e-12);
        assert_close(tape.grad(s2).data(), &[5.0], 1e-12);
        assert_close(tape.grad(w).data(), &[2.0, -1.0], 1e-12);
    }

    #[test]
    fn param_reuse_accumulates_gradient() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![1.0, 2.0]));
        let mut tape = Tape::new();
        let w1 = tape.param(&store, id);
        let w2 = tape.param(&store, id);
        assert_eq!(w1, w2, "same param yields same node");
        let prod = tape.mul(w1, w2); // w^2
        let loss = tape.sum(prod);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        // d(w^2)/dw = 2w.
        assert_close(store.grad(id).data(), &[2.0, 4.0], 1e-12);
    }

    #[test]
    fn leaky_relu_gradient() {
        let x0 = vec![1.0, -2.0];
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(x0));
        let y = tape.leaky_relu(x, 0.1);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_close(tape.grad(x).data(), &[1.0, 0.1], 1e-12);
    }

    #[test]
    fn affine_gradient_scales() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0]));
        let y = tape.affine(x, -1.0, 1.0); // 1 - x
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_close(tape.grad(x).data(), &[-1.0, -1.0], 1e-12);
        assert_eq!(tape.value(y).data(), &[0.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_vector_loss() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0]));
        tape.backward(x);
    }

    /// A reused (reset-between-steps) tape must produce bit-identical
    /// values and gradients to a fresh tape per step: pooling recycles
    /// allocations, never arithmetic.
    #[test]
    fn reset_tape_matches_fresh_tape_bitwise() {
        let mut store = ParamStore::new();
        let w_id = store.add(
            "w",
            Tensor::matrix(2, 3, vec![0.3, -0.2, 0.5, 0.1, 0.4, -0.6]),
        );
        let b_id = store.add("b", Tensor::from_vec(vec![0.05, -0.9]));

        let inputs: Vec<Vec<f64>> = vec![
            vec![1.0, -1.5, 0.7],
            vec![0.2, 0.9, -0.3],
            vec![-2.0, 0.0, 1.25],
        ];
        // One step of the little model: loss = Σ softmax(tanh(Wx + b))^2.
        let run = |tape: &mut Tape, store: &ParamStore, x0: &[f64]| -> (f64, Tensor, Tensor) {
            let w = tape.param(store, w_id);
            let b = tape.param(store, b_id);
            let x = tape.leaf(Tensor::from_vec(x0.to_vec()));
            let wx = tape.matvec(w, x);
            let pre = tape.add(wx, b);
            let t = tape.tanh(pre);
            let sm = tape.softmax(t);
            let sq = tape.mul(sm, sm);
            let loss = tape.sum(sq);
            tape.backward(loss);
            (tape.value(loss).item(), tape.grad(w), tape.grad(b))
        };

        let mut reused = Tape::new();
        for x0 in &inputs {
            reused.reset();
            let (loss_r, gw_r, gb_r) = run(&mut reused, &store, x0);
            let mut fresh = Tape::new();
            let (loss_f, gw_f, gb_f) = run(&mut fresh, &store, x0);
            assert_eq!(loss_r.to_bits(), loss_f.to_bits());
            for (a, b) in gw_r.data().iter().zip(gw_f.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in gb_r.data().iter().zip(gb_f.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let before = reused.pooled_buffers();
        reused.reset();
        assert!(
            reused.pooled_buffers() > before,
            "reset harvests node and gradient buffers into the pool"
        );
    }

    #[test]
    fn unreachable_nodes_have_zero_grad() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0]));
        let y = tape.leaf(Tensor::from_vec(vec![5.0]));
        let loss = tape.sum(x);
        tape.backward(loss);
        assert_eq!(tape.grad(y).data(), &[0.0]);
    }

    #[test]
    fn f32_tape_runs_the_same_graph() {
        let mut tape = Tape::<f32>::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0f32, -2.0, 3.0]));
        let y = tape.mul(x, x);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_eq!(tape.grad(x).data(), &[2.0f32, -4.0, 6.0]);
    }
}
