//! The floating-point element type abstraction behind every tensor.
//!
//! The whole stack — [`Tensor`](crate::tensor::Tensor),
//! [`Tape`](crate::tape::Tape), [`ParamStore`](crate::params::ParamStore),
//! [`Adam`](crate::optim::Adam) — is generic over a [`Scalar`], with two
//! implementations:
//!
//! * **`f64`** (the default type parameter everywhere) — the reference
//!   arithmetic. Every pre-existing code path, golden test and gradcheck
//!   oracle runs on `f64`, and the generic rewrite is bit-identical to
//!   the old concrete-`f64` code: `Scalar::from_f64`/`to_f64` are the
//!   identity and every trait method forwards to the corresponding `f64`
//!   intrinsic.
//! * **`f32`** — the training dtype. Half the memory traffic and twice
//!   the SIMD lane count through the same blocked kernels, validated
//!   against the `f64` finite-difference path by the cross-dtype
//!   gradcheck (`crates/neural/tests/cross_dtype.rs`).
//!
//! The trait is deliberately minimal: exactly the operations the kernels
//! and activations use, so a conforming implementation cannot smuggle in
//! alternative arithmetic.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A dense floating-point element type (`f32` or `f64`).
///
/// # Examples
///
/// ```
/// use chainnet_neural::scalar::Scalar;
///
/// fn norm2<S: Scalar>(xs: &[S]) -> f64 {
///     xs.iter().map(|x| x.to_f64() * x.to_f64()).sum::<f64>().sqrt()
/// }
/// assert!((norm2(&[3.0f32, 4.0]) - 5.0).abs() < 1e-6);
/// assert!((norm2(&[3.0f64, 4.0]) - 5.0).abs() < 1e-12);
/// ```
pub trait Scalar:
    Copy
    + PartialEq
    + PartialOrd
    + Default
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
    + Serialize
    + DeserializeOwned
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Negative infinity (softmax max-reduction seed).
    const NEG_INFINITY: Self;

    /// Lossy conversion from `f64` (identity for `f64`).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64` (identity for `f64`).
    fn to_f64(self) -> f64;
    /// `e^self`.
    fn exp(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// IEEE-754 maximum (NaN-ignoring, like `f64::max`).
    fn max(self, other: Self) -> Self;
    /// Whether the value is neither NaN nor infinite.
    fn is_finite(self) -> bool;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f64::NEG_INFINITY;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline(always)]
    fn tanh(self) -> Self {
        f64::tanh(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f32::NEG_INFINITY;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn exp(self) -> Self {
        f32::exp(self)
    }
    #[inline(always)]
    fn tanh(self) -> Self {
        f32::tanh(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_conversions_are_identity() {
        for x in [0.0, -1.5, 1e300, f64::MIN_POSITIVE] {
            assert_eq!(f64::from_f64(x).to_bits(), x.to_bits());
            assert_eq!(x.to_f64().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn f32_round_trips_through_f64_exactly() {
        // Every f32 is exactly representable in f64, so casting up and
        // back must be lossless.
        for x in [0.1f32, -2.5, 3.4e38, f32::MIN_POSITIVE] {
            assert_eq!(f32::from_f64(x.to_f64()).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn trait_methods_match_intrinsics() {
        let x = 0.37f64;
        assert_eq!(Scalar::exp(x).to_bits(), x.exp().to_bits());
        assert_eq!(Scalar::tanh(x).to_bits(), x.tanh().to_bits());
        assert_eq!(Scalar::sqrt(x).to_bits(), x.sqrt().to_bits());
        assert!(Scalar::is_finite(x));
        assert!(!Scalar::is_finite(f32::NAN));
        assert_eq!(Scalar::max(1.0f32, f32::NAN), 1.0);
    }
}
