//! Neural layers used by ChainNet and the baseline GNNs: linear maps,
//! multi-layer perceptrons, and GRU cells.
//!
//! Layer structs hold only [`ParamId`]s (and dimensions) — the dtype
//! lives in the [`ParamStore`]/[`Tape`] they run against, so one layer
//! value drives `f64` reference passes and `f32` training passes alike.
//! Each layer has three forward flavours:
//!
//! * `forward` — per-sample tape pass (vector inputs), the reference.
//! * `forward_rows` — row-batched tape pass: `(B, in)` matrices flow
//!   through one `matmul_bt` per weight instead of `B` matvecs, for
//!   mini-batch training. Row `b` is bit-identical to `forward` on
//!   row `b`.
//! * `forward_batched` — tape-free row-batched inference (no gradients).

use crate::params::{ParamId, ParamStore};
use crate::scalar::Scalar;
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation functions for [`Mlp`] hidden layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum Activation {
    /// Rectified linear unit.
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Leaky ReLU with slope 0.01.
    LeakyRelu,
    /// No activation.
    Identity,
}

impl Activation {
    /// Apply the activation on the tape.
    pub fn apply<S: Scalar>(self, tape: &mut Tape<S>, x: Var) -> Var {
        match self {
            Activation::Relu => tape.relu(x),
            Activation::Tanh => tape.tanh(x),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::LeakyRelu => tape.leaky_relu(x, S::from_f64(0.01)),
            Activation::Identity => x,
        }
    }

    /// Apply the activation elementwise in place (tape-free batched
    /// inference). Uses the exact same expressions as the tape ops, so
    /// results are bit-identical to [`Activation::apply`].
    pub fn apply_batched<S: Scalar>(self, x: &mut Tensor<S>) {
        match self {
            Activation::Relu => {
                for v in x.data_mut() {
                    *v = v.max(S::ZERO);
                }
            }
            Activation::Tanh => {
                for v in x.data_mut() {
                    *v = v.tanh();
                }
            }
            Activation::Sigmoid => {
                for v in x.data_mut() {
                    *v = S::ONE / (S::ONE + (-*v).exp());
                }
            }
            Activation::LeakyRelu => {
                for v in x.data_mut() {
                    if *v <= S::ZERO {
                        *v *= S::from_f64(0.01);
                    }
                }
            }
            Activation::Identity => {}
        }
    }
}

/// A fully-connected layer `y = W x + b`.
///
/// # Examples
///
/// ```
/// use chainnet_neural::layers::Linear;
/// use chainnet_neural::params::ParamStore;
/// use chainnet_neural::tape::Tape;
/// use chainnet_neural::tensor::Tensor;
/// use rand::SeedableRng;
///
/// let mut store = ParamStore::new();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let layer = Linear::new(&mut store, "l0", 3, 2, &mut rng);
/// let mut tape = Tape::new();
/// let x = tape.leaf(Tensor::from_vec(vec![1.0, 0.5, -0.5]));
/// let y = layer.forward(&mut tape, &store, x);
/// assert_eq!(tape.value(y).len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Create a Glorot-initialized linear layer.
    pub fn new<S: Scalar, R: Rng + ?Sized>(
        store: &mut ParamStore<S>,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let w = store.add_glorot(format!("{name}.w"), out_dim, in_dim, rng);
        let b = store.add_zeros(format!("{name}.b"), out_dim);
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass on the tape.
    pub fn forward<S: Scalar>(&self, tape: &mut Tape<S>, store: &ParamStore<S>, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let wx = tape.matvec(w, x);
        tape.add(wx, b)
    }

    /// Row-batched tape forward: `x` is a `(B, in_dim)` matrix node;
    /// returns `(B, out_dim)` through one `matmul_bt` + broadcast bias.
    /// Row `b` is bit-identical to [`Linear::forward`] on that row.
    pub fn forward_rows<S: Scalar>(
        &self,
        tape: &mut Tape<S>,
        store: &ParamStore<S>,
        x: Var,
    ) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let wx = tape.matmul_bt(x, w);
        tape.add_rows(wx, b)
    }

    /// Tape-free batched forward: `x` is `(B, in_dim)` with one input per
    /// row; returns `(B, out_dim)`. One blocked matmul replaces B
    /// matvecs; each output row is bit-identical to
    /// [`Linear::forward`] on the corresponding input row.
    pub fn forward_batched<S: Scalar>(&self, store: &ParamStore<S>, x: &Tensor<S>) -> Tensor<S> {
        let mut out = x.matmul_bt(store.value(self.w));
        let b = store.value(self.b).data();
        for row in out.data_mut().chunks_exact_mut(b.len()) {
            for (o, &bias) in row.iter_mut().zip(b) {
                *o += bias;
            }
        }
        out
    }
}

/// A multi-layer perceptron with a fixed hidden activation and linear
/// output, as used for `MLP_tput` and `MLP_latency` in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Create an MLP with the given layer sizes, e.g. `[64, 64, 1]` for a
    /// 64-input, one-hidden-layer, scalar-output network.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<S: Scalar, R: Rng + ?Sized>(
        store: &mut ParamStore<S>,
        name: &str,
        sizes: &[usize],
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(
            sizes.len() >= 2,
            "Mlp needs at least input and output sizes"
        );
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.{i}"), w[0], w[1], rng))
            .collect();
        Self { layers, activation }
    }

    /// Forward pass; activation on all but the last layer.
    pub fn forward<S: Scalar>(&self, tape: &mut Tape<S>, store: &ParamStore<S>, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(tape, store, x);
            if i < last {
                x = self.activation.apply(tape, x);
            }
        }
        x
    }

    /// Row-batched tape forward over a `(B, in_dim)` matrix node;
    /// row-for-row bit-identical to [`Mlp::forward`].
    pub fn forward_rows<S: Scalar>(
        &self,
        tape: &mut Tape<S>,
        store: &ParamStore<S>,
        mut x: Var,
    ) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward_rows(tape, store, x);
            if i < last {
                x = self.activation.apply(tape, x);
            }
        }
        x
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim()
    }

    /// Tape-free batched forward over `(B, in_dim)` rows; row-for-row
    /// bit-identical to [`Mlp::forward`].
    pub fn forward_batched<S: Scalar>(&self, store: &ParamStore<S>, x: &Tensor<S>) -> Tensor<S> {
        let last = self.layers.len() - 1;
        let mut cur = self.layers[0].forward_batched(store, x);
        if last > 0 {
            self.activation.apply_batched(&mut cur);
            for (i, layer) in self.layers.iter().enumerate().skip(1) {
                cur = layer.forward_batched(store, &cur);
                if i < last {
                    self.activation.apply_batched(&mut cur);
                }
            }
        }
        cur
    }
}

/// A gated recurrent unit cell (Cho et al., 2014), the update function
/// used for φ_C, φ_F and φ_D in ChainNet.
///
/// Gates follow the standard formulation:
///
/// ```text
/// z = σ(W_z x + U_z h + b_z)
/// r = σ(W_r x + U_r h + b_r)
/// n = tanh(W_n x + U_n (r ⊙ h) + b_n)
/// h' = (1 - z) ⊙ n + z ⊙ h
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GruCell {
    w_z: ParamId,
    u_z: ParamId,
    b_z: ParamId,
    w_r: ParamId,
    u_r: ParamId,
    b_r: ParamId,
    w_n: ParamId,
    u_n: ParamId,
    b_n: ParamId,
    input_dim: usize,
    hidden_dim: usize,
}

impl GruCell {
    /// Create a Glorot-initialized GRU cell.
    pub fn new<S: Scalar, R: Rng + ?Sized>(
        store: &mut ParamStore<S>,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        let mat =
            |suffix: &str, rows: usize, cols: usize, store: &mut ParamStore<S>, rng: &mut R| {
                store.add_glorot(format!("{name}.{suffix}"), rows, cols, rng)
            };
        let w_z = mat("w_z", hidden_dim, input_dim, store, rng);
        let u_z = mat("u_z", hidden_dim, hidden_dim, store, rng);
        let b_z = store.add_zeros(format!("{name}.b_z"), hidden_dim);
        let w_r = mat("w_r", hidden_dim, input_dim, store, rng);
        let u_r = mat("u_r", hidden_dim, hidden_dim, store, rng);
        let b_r = store.add_zeros(format!("{name}.b_r"), hidden_dim);
        let w_n = mat("w_n", hidden_dim, input_dim, store, rng);
        let u_n = mat("u_n", hidden_dim, hidden_dim, store, rng);
        let b_n = store.add_zeros(format!("{name}.b_n"), hidden_dim);
        Self {
            w_z,
            u_z,
            b_z,
            w_r,
            u_r,
            b_r,
            w_n,
            u_n,
            b_n,
            input_dim,
            hidden_dim,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// One recurrence step: `(x, h) -> h'`.
    pub fn forward<S: Scalar>(
        &self,
        tape: &mut Tape<S>,
        store: &ParamStore<S>,
        x: Var,
        h: Var,
    ) -> Var {
        let gate = |tape: &mut Tape<S>, w: ParamId, u: ParamId, b: ParamId, hx: Var| {
            let wp = tape.param(store, w);
            let up = tape.param(store, u);
            let bp = tape.param(store, b);
            let wx = tape.matvec(wp, x);
            let uh = tape.matvec(up, hx);
            let s = tape.add(wx, uh);
            tape.add(s, bp)
        };
        let z_pre = gate(tape, self.w_z, self.u_z, self.b_z, h);
        let z = tape.sigmoid(z_pre);
        let r_pre = gate(tape, self.w_r, self.u_r, self.b_r, h);
        let r = tape.sigmoid(r_pre);
        let rh = tape.mul(r, h);
        let n_pre = gate(tape, self.w_n, self.u_n, self.b_n, rh);
        let n = tape.tanh(n_pre);
        let one_minus_z = tape.affine(z, S::from_f64(-1.0), S::ONE);
        let a = tape.mul(one_minus_z, n);
        let b = tape.mul(z, h);
        tape.add(a, b)
    }

    /// Row-batched tape recurrence: `x` is `(B, input_dim)` and `h` is
    /// `(B, hidden_dim)` matrix nodes, one independent cell step per
    /// row. Gate preactivations run as two `matmul_bt`s plus a
    /// broadcast bias, in the exact per-element order of
    /// [`GruCell::forward`], so row `b` is bit-identical to the
    /// per-sample path on that row.
    pub fn forward_rows<S: Scalar>(
        &self,
        tape: &mut Tape<S>,
        store: &ParamStore<S>,
        x: Var,
        h: Var,
    ) -> Var {
        let gate = |tape: &mut Tape<S>, w: ParamId, u: ParamId, b: ParamId, hx: Var| {
            let wp = tape.param(store, w);
            let up = tape.param(store, u);
            let bp = tape.param(store, b);
            let wx = tape.matmul_bt(x, wp);
            let uh = tape.matmul_bt(hx, up);
            let s = tape.add(wx, uh);
            tape.add_rows(s, bp)
        };
        let z_pre = gate(tape, self.w_z, self.u_z, self.b_z, h);
        let z = tape.sigmoid(z_pre);
        let r_pre = gate(tape, self.w_r, self.u_r, self.b_r, h);
        let r = tape.sigmoid(r_pre);
        let rh = tape.mul(r, h);
        let n_pre = gate(tape, self.w_n, self.u_n, self.b_n, rh);
        let n = tape.tanh(n_pre);
        let one_minus_z = tape.affine(z, S::from_f64(-1.0), S::ONE);
        let a = tape.mul(one_minus_z, n);
        let b = tape.mul(z, h);
        tape.add(a, b)
    }

    /// Tape-free batched recurrence: `x` is `(B, input_dim)` and `h` is
    /// `(B, hidden_dim)`, one independent cell step per row. Every
    /// intermediate uses the exact expressions (and evaluation order) of
    /// [`GruCell::forward`], so each output row is bit-identical to the
    /// tape path on that row.
    pub fn forward_batched<S: Scalar>(
        &self,
        store: &ParamStore<S>,
        x: &Tensor<S>,
        h: &Tensor<S>,
    ) -> Tensor<S> {
        let gate = |w: ParamId, u: ParamId, b: ParamId, hx: &Tensor<S>| -> Tensor<S> {
            let wx = x.matmul_bt(store.value(w));
            let uh = hx.matmul_bt(store.value(u));
            let mut s = wx.zip_map(&uh, |p, q| p + q);
            let bias = store.value(b).data();
            for row in s.data_mut().chunks_exact_mut(bias.len()) {
                for (o, &bb) in row.iter_mut().zip(bias) {
                    *o += bb;
                }
            }
            s
        };
        let mut z = gate(self.w_z, self.u_z, self.b_z, h);
        for v in z.data_mut() {
            *v = S::ONE / (S::ONE + (-*v).exp());
        }
        let mut r = gate(self.w_r, self.u_r, self.b_r, h);
        for v in r.data_mut() {
            *v = S::ONE / (S::ONE + (-*v).exp());
        }
        let rh = r.zip_map(h, |a, b| a * b);
        let mut n = gate(self.w_n, self.u_n, self.b_n, &rh);
        for v in n.data_mut() {
            *v = v.tanh();
        }
        // h' = (1 - z) ⊙ n + z ⊙ h, in the tape's exact op order:
        // affine(z, -1, 1), two muls, one add. The literal `-1.0 * v`
        // replicates the tape's `alpha * x` term bitwise.
        let neg_one = S::from_f64(-1.0);
        let one_minus_z = z.map(|v| neg_one * v + S::ONE);
        let a = one_minus_z.zip_map(&n, |p, q| p * q);
        let b = z.zip_map(h, |p, q| p * q);
        a.zip_map(&b, |p, q| p + q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let l = Linear::new(&mut store, "l", 4, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0; 4]));
        let y = l.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).len(), 2);
        assert_eq!(l.in_dim(), 4);
        assert_eq!(l.out_dim(), 2);
    }

    #[test]
    fn mlp_forward_and_dims() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[3, 8, 1], Activation::Relu, &mut rng);
        assert_eq!(mlp.in_dim(), 3);
        assert_eq!(mlp.out_dim(), 1);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.1, 0.2, 0.3]));
        let y = mlp.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).len(), 1);
    }

    #[test]
    fn gru_keeps_hidden_dimension() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 5, 8, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.5; 5]));
        let h = tape.leaf(Tensor::zeros(8));
        let h1 = gru.forward(&mut tape, &store, x, h);
        assert_eq!(tape.value(h1).len(), 8);
        // Values bounded by tanh/sigmoid algebra: |h'| <= 1 when h = 0.
        for &v in tape.value(h1).data() {
            assert!(v.abs() <= 1.0);
        }
    }

    #[test]
    fn gru_with_zero_update_gate_bias_moves_state() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 2, 4, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, -1.0]));
        let h0 = tape.leaf(Tensor::zeros(4));
        let h1 = gru.forward(&mut tape, &store, x, h0);
        assert!(tape.value(h1).data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gru_gradients_flow_to_all_parameters() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 3, 4, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.3, -0.7, 0.2]));
        let h = tape.leaf(Tensor::from_vec(vec![0.1, 0.2, -0.1, 0.4]));
        let h1 = gru.forward(&mut tape, &store, x, h);
        let loss = tape.sum(h1);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        let nonzero = store
            .ids()
            .filter(|&id| store.grad(id).data().iter().any(|&g| g != 0.0))
            .count();
        // All 9 GRU parameter tensors should receive gradient.
        assert_eq!(nonzero, 9);
    }

    /// Batched (tape-free) layer forwards must reproduce the tape path
    /// bit for bit, row by row.
    #[test]
    fn batched_forwards_match_tape_bitwise() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "lin", 3, 4, &mut rng);
        let mlp = Mlp::new(&mut store, "mlp", &[4, 4, 1], Activation::Relu, &mut rng);
        let gru = GruCell::new(&mut store, "gru", 3, 4, &mut rng);

        let xs: [Vec<f64>; 3] = [
            vec![0.4, -1.2, 0.9],
            vec![-0.3, 0.0, 2.5],
            vec![1.0, 1.0, -1.0],
        ];
        let hs = [
            vec![0.1, -0.2, 0.3, -0.4],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.9, -0.9, 0.5, 0.25],
        ];
        let xb = Tensor::matrix(3, 3, xs.concat());
        let hb = Tensor::matrix(3, 4, hs.concat());

        let lin_b = lin.forward_batched(&store, &xb);
        let gru_b = gru.forward_batched(&store, &xb, &hb);
        let mlp_b = mlp.forward_batched(&store, &lin_b);

        for (row, (x0, h0)) in xs.iter().zip(&hs).enumerate() {
            let mut tape = Tape::new();
            let x = tape.leaf(Tensor::from_vec(x0.clone()));
            let h = tape.leaf(Tensor::from_vec(h0.clone()));
            let ly = lin.forward(&mut tape, &store, x);
            let gy = gru.forward(&mut tape, &store, x, h);
            let my = mlp.forward(&mut tape, &store, ly);
            for (c, &v) in tape.value(ly).data().iter().enumerate() {
                assert_eq!(v.to_bits(), lin_b.data()[row * 4 + c].to_bits());
            }
            for (c, &v) in tape.value(gy).data().iter().enumerate() {
                assert_eq!(v.to_bits(), gru_b.data()[row * 4 + c].to_bits());
            }
            assert_eq!(tape.value(my).item().to_bits(), mlp_b.data()[row].to_bits());
        }
    }

    /// Row-batched tape forwards (`forward_rows`) must also reproduce the
    /// per-sample tape path bit for bit, and route gradients to every
    /// parameter.
    #[test]
    fn forward_rows_matches_sequential_tape_bitwise() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "lin", 3, 4, &mut rng);
        let mlp = Mlp::new(&mut store, "mlp", &[3, 4, 2], Activation::Tanh, &mut rng);
        let gru = GruCell::new(&mut store, "gru", 3, 4, &mut rng);

        let xs: [Vec<f64>; 3] = [
            vec![0.4, -1.2, 0.9],
            vec![-0.3, 0.0, 2.5],
            vec![1.0, 1.0, -1.0],
        ];
        let hs = [
            vec![0.1, -0.2, 0.3, -0.4],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.9, -0.9, 0.5, 0.25],
        ];

        let mut batch = Tape::new();
        let xb = batch.leaf(Tensor::matrix(3, 3, xs.concat()));
        let hb = batch.leaf(Tensor::matrix(3, 4, hs.concat()));
        let lin_b = lin.forward_rows(&mut batch, &store, xb);
        let mlp_b = mlp.forward_rows(&mut batch, &store, xb);
        let gru_b = gru.forward_rows(&mut batch, &store, xb, hb);

        for (row, (x0, h0)) in xs.iter().zip(&hs).enumerate() {
            let mut tape = Tape::new();
            let x = tape.leaf(Tensor::from_vec(x0.clone()));
            let h = tape.leaf(Tensor::from_vec(h0.clone()));
            let ly = lin.forward(&mut tape, &store, x);
            let my = mlp.forward(&mut tape, &store, x);
            let gy = gru.forward(&mut tape, &store, x, h);
            for (c, &v) in tape.value(ly).data().iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    batch.value(lin_b).data()[row * 4 + c].to_bits()
                );
            }
            for (c, &v) in tape.value(my).data().iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    batch.value(mlp_b).data()[row * 2 + c].to_bits()
                );
            }
            for (c, &v) in tape.value(gy).data().iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    batch.value(gru_b).data()[row * 4 + c].to_bits()
                );
            }
        }

        // Gradients flow to all parameters through the batched ops.
        let gsum = batch.sum(gru_b);
        let msum_pre = batch.sum(mlp_b);
        let lsum = batch.sum(lin_b);
        let t1 = batch.add(gsum, msum_pre);
        let loss = batch.add(t1, lsum);
        batch.backward(loss);
        batch.accumulate_param_grads(&mut store);
        let nonzero = store
            .ids()
            .filter(|&id| store.grad(id).data().iter().any(|&g| g != 0.0))
            .count();
        assert_eq!(nonzero, store.ids().count());
    }

    #[test]
    fn mlp_gradcheck_against_finite_difference() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[2, 4, 1], Activation::Tanh, &mut rng);
        let x_in = vec![0.7, -0.4];

        // Analytic gradient of output wrt every parameter.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(x_in.clone()));
        let y = mlp.forward(&mut tape, &store, x);
        tape.backward(y);
        tape.accumulate_param_grads(&mut store);

        // Numeric check on a few weights of the first layer.
        let id = store.ids().next().unwrap();
        let analytic = store.grad(id).clone();
        let eps = 1e-6;
        for idx in 0..analytic.len().min(4) {
            let orig = store.value(id).data()[idx];
            store.value_mut(id).data_mut()[idx] = orig + eps;
            let mut tp = Tape::new();
            let xv = tp.leaf(Tensor::from_vec(x_in.clone()));
            let out_p = mlp.forward(&mut tp, &store, xv);
            let fp = tp.value(out_p).item();
            store.value_mut(id).data_mut()[idx] = orig - eps;
            let mut tm = Tape::new();
            let xv = tm.leaf(Tensor::from_vec(x_in.clone()));
            let out_m = mlp.forward(&mut tm, &store, xv);
            let fm = tm.value(out_m).item();
            store.value_mut(id).data_mut()[idx] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - analytic.data()[idx]).abs() < 1e-5,
                "weight {idx}: numeric {num} vs analytic {}",
                analytic.data()[idx]
            );
        }
    }
}
