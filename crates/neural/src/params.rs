//! Trainable parameter storage shared by all layers of a model.
//!
//! Layers hold [`ParamId`]s into a [`ParamStore`]; forward passes copy
//! parameter values into the autodiff tape, and the backward pass
//! accumulates gradients back into the store. This separation lets a batch
//! of independently-shaped graphs (define-by-run) share one set of weights.

use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

/// One trainable tensor with its gradient accumulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (zeroed by the optimizer after each step).
    pub grad: Tensor,
    /// Human-readable name for debugging and serialization.
    pub name: String,
}

/// The set of all trainable parameters of a model.
///
/// # Examples
///
/// ```
/// use chainnet_neural::params::ParamStore;
/// use chainnet_neural::tensor::Tensor;
///
/// let mut store = ParamStore::new();
/// let id = store.add("w", Tensor::from_vec(vec![0.5, -0.5]));
/// assert_eq!(store.value(id).data(), &[0.5, -0.5]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter and return its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = value.zeros_like();
        self.params.push(Param {
            value,
            grad,
            name: name.into(),
        });
        ParamId(self.params.len() - 1)
    }

    /// Register a Glorot-uniform-initialized matrix parameter.
    ///
    /// The Glorot (Xavier) limit is `sqrt(6 / (fan_in + fan_out))`, the
    /// initialization the paper uses for all five networks.
    pub fn add_glorot<R: Rng + ?Sized>(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut R,
    ) -> ParamId {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        self.add(name, Tensor::matrix(rows, cols, data))
    }

    /// Register a zero-initialized vector parameter (typical for biases).
    pub fn add_zeros(&mut self, name: impl Into<String>, n: usize) -> ParamId {
        self.add(name, Tensor::zeros(n))
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// Add `g` into the gradient accumulator of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different shape than the parameter.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        self.params[id.0].grad.add_assign(g);
    }

    /// Zero every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad = p.value.zeros_like();
        }
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Iterate over ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// L2 norm of the concatenated gradient (diagnostic).
    pub fn grad_norm(&self) -> f64 {
        self.params
            .iter()
            .flat_map(|p| p.grad.data())
            .map(|g| g * g)
            .sum::<f64>()
            .sqrt()
    }

    /// Whether every gradient entry is finite (no NaN/inf).
    pub fn grads_all_finite(&self) -> bool {
        self.params
            .iter()
            .all(|p| p.grad.data().iter().all(|g| g.is_finite()))
    }

    /// Whether every parameter value is finite (no NaN/inf).
    pub fn values_all_finite(&self) -> bool {
        self.params
            .iter()
            .all(|p| p.value.data().iter().all(|v| v.is_finite()))
    }

    /// Clip the concatenated gradient to an L2 norm of at most
    /// `max_norm`, scaling every gradient entry uniformly. Returns the
    /// pre-clip norm. A non-finite norm (NaN/inf gradients) is left
    /// untouched — scaling cannot repair it — and reported as-is so the
    /// caller can trip its divergence guard.
    pub fn clip_grad_norm(&mut self, max_norm: f64) -> f64 {
        let norm = self.grad_norm();
        if norm.is_finite() && norm > max_norm && max_norm > 0.0 {
            let scale = max_norm / norm;
            for p in &mut self.params {
                for g in p.grad.data_mut() {
                    *g *= scale;
                }
            }
        }
        norm
    }

    /// Serialize the store to JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` error.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize a store from JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` error.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_respects_limit() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let id = store.add_glorot("w", 8, 8, &mut rng);
        let limit = (6.0_f64 / 16.0).sqrt();
        for &x in store.value(id).data() {
            assert!(x.abs() <= limit);
        }
    }

    #[test]
    fn glorot_is_not_degenerate() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let id = store.add_glorot("w", 16, 16, &mut rng);
        let data = store.value(id).data();
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        assert!(mean.abs() < 0.1);
        assert!(data.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn grad_accumulation_and_zeroing() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![1.0, 2.0]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![0.5, 0.5]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![0.5, 0.5]));
        assert_eq!(store.grad(id).data(), &[1.0, 1.0]);
        store.zero_grads();
        assert_eq!(store.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_grad_norm_scales_to_the_cap() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![0.0, 0.0]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![3.0, 4.0]));
        let pre = store.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-12);
        assert!((store.grad_norm() - 1.0).abs() < 1e-12);
        // Direction is preserved.
        assert!((store.grad(id).data()[0] - 0.6).abs() < 1e-12);
        assert!((store.grad(id).data()[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients_alone() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![0.0]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![0.5]));
        let pre = store.clip_grad_norm(10.0);
        assert!((pre - 0.5).abs() < 1e-12);
        assert_eq!(store.grad(id).data(), &[0.5]);
    }

    #[test]
    fn clip_grad_norm_reports_non_finite_without_scaling() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![0.0]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![f64::NAN]));
        assert!(!store.grads_all_finite());
        let pre = store.clip_grad_norm(1.0);
        assert!(pre.is_nan());
        assert!(store.grad(id).data()[0].is_nan());
    }

    #[test]
    fn finiteness_checks_detect_nan_values() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![1.0, 2.0]));
        assert!(store.values_all_finite());
        assert!(store.grads_all_finite());
        let id = store.ids().next().unwrap();
        store.value_mut(id).data_mut()[1] = f64::INFINITY;
        assert!(!store.values_all_finite());
    }

    #[test]
    fn json_round_trip() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::from_vec(vec![1.0]));
        store.add("b", Tensor::matrix(1, 2, vec![2.0, 3.0]));
        let back = ParamStore::from_json(&store.to_json().unwrap()).unwrap();
        assert_eq!(store, back);
    }

    #[test]
    fn num_scalars_counts_all_weights() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::zeros(3));
        store.add("b", Tensor::zeros_matrix(2, 2));
        assert_eq!(store.num_scalars(), 7);
        assert_eq!(store.len(), 2);
    }
}
