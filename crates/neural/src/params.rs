//! Trainable parameter storage shared by all layers of a model.
//!
//! Layers hold [`ParamId`]s into a [`ParamStore`]; forward passes copy
//! parameter values into the autodiff tape, and the backward pass
//! accumulates gradients back into the store. This separation lets a batch
//! of independently-shaped graphs (define-by-run) share one set of weights,
//! and lets the same layer structs drive either dtype: a store can be
//! [`cast`](ParamStore::cast) between `f64` (reference) and `f32`
//! (training) without disturbing the ids the layers hold.

use crate::scalar::Scalar;
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

/// One trainable tensor with its gradient accumulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param<S: Scalar = f64> {
    /// Current value.
    pub value: Tensor<S>,
    /// Accumulated gradient (zeroed by the optimizer after each step).
    pub grad: Tensor<S>,
    /// Human-readable name for debugging and serialization.
    pub name: String,
}

/// The set of all trainable parameters of a model.
///
/// # Examples
///
/// ```
/// use chainnet_neural::params::ParamStore;
/// use chainnet_neural::tensor::Tensor;
///
/// let mut store = ParamStore::new();
/// let id = store.add("w", Tensor::from_vec(vec![0.5, -0.5]));
/// assert_eq!(store.value(id).data(), &[0.5, -0.5]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamStore<S: Scalar = f64> {
    params: Vec<Param<S>>,
}

impl<S: Scalar> Default for ParamStore<S> {
    fn default() -> Self {
        Self { params: Vec::new() }
    }
}

impl<S: Scalar> ParamStore<S> {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter and return its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor<S>) -> ParamId {
        let grad = value.zeros_like();
        self.params.push(Param {
            value,
            grad,
            name: name.into(),
        });
        ParamId(self.params.len() - 1)
    }

    /// Register a Glorot-uniform-initialized matrix parameter.
    ///
    /// The Glorot (Xavier) limit is `sqrt(6 / (fan_in + fan_out))`, the
    /// initialization the paper uses for all five networks. Sampling is
    /// always done in `f64` and then cast, so an `f32` store draws the
    /// exact same random sequence (rounded) as its `f64` twin.
    pub fn add_glorot<R: Rng + ?Sized>(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        rng: &mut R,
    ) -> ParamId {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| S::from_f64(rng.gen_range(-limit..limit)))
            .collect();
        self.add(name, Tensor::matrix(rows, cols, data))
    }

    /// Register a zero-initialized vector parameter (typical for biases).
    pub fn add_zeros(&mut self, name: impl Into<String>, n: usize) -> ParamId {
        self.add(name, Tensor::zeros(n))
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor<S> {
        &self.params[id.0].value
    }

    /// Mutable value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor<S> {
        &mut self.params[id.0].value
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor<S> {
        &self.params[id.0].grad
    }

    /// Mutable value plus shared gradient of the `i`-th parameter in
    /// registration order, borrowed simultaneously.
    ///
    /// This split borrow is what lets `Adam::step` walk values against
    /// gradients in place, without cloning either side per step.
    pub(crate) fn value_grad_mut(&mut self, i: usize) -> (&mut Tensor<S>, &Tensor<S>) {
        let p = &mut self.params[i];
        (&mut p.value, &p.grad)
    }

    /// Add `g` into the gradient accumulator of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different shape than the parameter.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor<S>) {
        self.params[id.0].grad.add_assign(g);
    }

    /// Zero every gradient accumulator in place.
    ///
    /// Writes `0` over the existing buffers rather than allocating fresh
    /// zero tensors — bit-identical (IEEE `+0.0` either way) and free of
    /// per-step allocation on the optimizer hot path.
    // lint:zero_alloc
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            for g in p.grad.data_mut() {
                *g = S::ZERO;
            }
        }
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Iterate over ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// A copy of the store with every tensor cast to another dtype.
    ///
    /// Ids are positional, so every [`ParamId`] handed out by this store
    /// remains valid on the cast copy — layers built against an `f64`
    /// store drive its `f32` cast unchanged. Gradients are cast along
    /// with values (they are normally zero between steps anyway).
    pub fn cast<T: Scalar>(&self) -> ParamStore<T> {
        ParamStore {
            params: self
                .params
                .iter()
                .map(|p| Param {
                    value: p.value.cast(),
                    grad: p.grad.cast(),
                    name: p.name.clone(),
                })
                .collect(),
        }
    }

    /// Copy parameter values (not gradients) from a same-layout store of
    /// another dtype, casting each element. Used to fold trained `f32`
    /// weights back into the canonical `f64` store.
    ///
    /// # Panics
    ///
    /// Panics if the two stores have different layouts.
    pub fn assign_values_cast<T: Scalar>(&mut self, src: &ParamStore<T>) {
        assert_eq!(
            self.params.len(),
            src.params.len(),
            "assign_values_cast: store layouts differ"
        );
        for (dst, s) in self.params.iter_mut().zip(&src.params) {
            assert_eq!(
                dst.value.shape(),
                s.value.shape(),
                "assign_values_cast: shape mismatch on {}",
                dst.name
            );
            dst.value = s.value.cast();
        }
    }

    /// L2 norm of the concatenated gradient (diagnostic).
    ///
    /// Always accumulated in `f64` regardless of the store dtype, so the
    /// divergence guards see the same scale either way.
    pub fn grad_norm(&self) -> f64 {
        self.params
            .iter()
            .flat_map(|p| p.grad.data())
            .map(|g| g.to_f64() * g.to_f64())
            .sum::<f64>()
            .sqrt()
    }

    /// Whether every gradient entry is finite (no NaN/inf).
    pub fn grads_all_finite(&self) -> bool {
        self.params
            .iter()
            .all(|p| p.grad.data().iter().all(|g| g.is_finite()))
    }

    /// Whether every parameter value is finite (no NaN/inf).
    pub fn values_all_finite(&self) -> bool {
        self.params
            .iter()
            .all(|p| p.value.data().iter().all(|v| v.is_finite()))
    }

    /// Clip the concatenated gradient to an L2 norm of at most
    /// `max_norm`, scaling every gradient entry uniformly. Returns the
    /// pre-clip norm. A non-finite norm (NaN/inf gradients) is left
    /// untouched — scaling cannot repair it — and reported as-is so the
    /// caller can trip its divergence guard.
    pub fn clip_grad_norm(&mut self, max_norm: f64) -> f64 {
        let norm = self.grad_norm();
        if norm.is_finite() && norm > max_norm && max_norm > 0.0 {
            let scale = S::from_f64(max_norm / norm);
            for p in &mut self.params {
                for g in p.grad.data_mut() {
                    *g *= scale;
                }
            }
        }
        norm
    }

    /// Serialize the store to JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` error.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize a store from JSON.
    ///
    /// # Errors
    ///
    /// Returns any `serde_json` error.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_respects_limit() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut store = ParamStore::<f64>::new();
        let id = store.add_glorot("w", 8, 8, &mut rng);
        let limit = (6.0_f64 / 16.0).sqrt();
        for &x in store.value(id).data() {
            assert!(x.abs() <= limit);
        }
    }

    #[test]
    fn glorot_is_not_degenerate() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let id = store.add_glorot("w", 16, 16, &mut rng);
        let data = store.value(id).data();
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        assert!(mean.abs() < 0.1);
        assert!(data.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn glorot_f32_draws_the_same_sequence_rounded() {
        let mut rng64 = SmallRng::seed_from_u64(3);
        let mut rng32 = SmallRng::seed_from_u64(3);
        let mut s64 = ParamStore::<f64>::new();
        let mut s32 = ParamStore::<f32>::new();
        let a = s64.add_glorot("w", 4, 4, &mut rng64);
        let b = s32.add_glorot("w", 4, 4, &mut rng32);
        for (&x, &y) in s64.value(a).data().iter().zip(s32.value(b).data()) {
            assert_eq!(y.to_bits(), (x as f32).to_bits());
        }
    }

    #[test]
    fn grad_accumulation_and_zeroing() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![1.0, 2.0]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![0.5, 0.5]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![0.5, 0.5]));
        assert_eq!(store.grad(id).data(), &[1.0, 1.0]);
        store.zero_grads();
        assert_eq!(store.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn cast_preserves_ids_and_layout() {
        let mut store = ParamStore::<f64>::new();
        let a = store.add("a", Tensor::from_vec(vec![1.5, -0.25]));
        let b = store.add("b", Tensor::zeros_matrix(2, 3));
        let cast: ParamStore<f32> = store.cast();
        assert_eq!(cast.value(a).data(), &[1.5f32, -0.25]);
        assert_eq!(cast.value(b).shape(), &[2, 3]);
        // Round-trip the values back into the f64 store.
        let mut back = store.clone();
        back.assign_values_cast(&cast);
        assert_eq!(back.value(a).data(), &[1.5, -0.25]);
    }

    #[test]
    fn clip_grad_norm_scales_to_the_cap() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![0.0, 0.0]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![3.0, 4.0]));
        let pre = store.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-12);
        assert!((store.grad_norm() - 1.0).abs() < 1e-12);
        // Direction is preserved.
        assert!((store.grad(id).data()[0] - 0.6).abs() < 1e-12);
        assert!((store.grad(id).data()[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients_alone() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![0.0]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![0.5]));
        let pre = store.clip_grad_norm(10.0);
        assert!((pre - 0.5).abs() < 1e-12);
        assert_eq!(store.grad(id).data(), &[0.5]);
    }

    #[test]
    fn clip_grad_norm_reports_non_finite_without_scaling() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![0.0]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![f64::NAN]));
        assert!(!store.grads_all_finite());
        let pre = store.clip_grad_norm(1.0);
        assert!(pre.is_nan());
        assert!(store.grad(id).data()[0].is_nan());
    }

    #[test]
    fn finiteness_checks_detect_nan_values() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::from_vec(vec![1.0, 2.0]));
        assert!(store.values_all_finite());
        assert!(store.grads_all_finite());
        let id = store.ids().next().unwrap();
        store.value_mut(id).data_mut()[1] = f64::INFINITY;
        assert!(!store.values_all_finite());
    }

    #[test]
    fn json_round_trip() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::from_vec(vec![1.0]));
        store.add("b", Tensor::matrix(1, 2, vec![2.0, 3.0]));
        let back = ParamStore::from_json(&store.to_json().unwrap()).unwrap();
        assert_eq!(store, back);
    }

    #[test]
    fn num_scalars_counts_all_weights() {
        let mut store = ParamStore::<f64>::new();
        store.add("a", Tensor::zeros(3));
        store.add("b", Tensor::zeros_matrix(2, 2));
        assert_eq!(store.num_scalars(), 7);
        assert_eq!(store.len(), 2);
    }
}
