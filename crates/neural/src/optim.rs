//! Optimizers: Adam with the paper's step-decay learning-rate schedule
//! (initial 1e-3, multiplied by 0.9 every 10 epochs — Table IV).

use crate::params::ParamStore;
use crate::scalar::Scalar;
use serde::{Deserialize, Serialize};

/// Adam optimizer (Kingma & Ba, 2014) over every parameter of a store.
///
/// The hyperparameters are stored as `f64` regardless of the training
/// dtype `S` (keeping checkpoint serialization stable); each step casts
/// them to `S` once up front. For `S = f64` the casts are the identity,
/// so updates are bit-identical to the original concrete-`f64` code.
///
/// # Examples
///
/// ```
/// use chainnet_neural::optim::Adam;
/// use chainnet_neural::params::ParamStore;
/// use chainnet_neural::tensor::Tensor;
///
/// let mut store: ParamStore = ParamStore::new();
/// let id = store.add("w", Tensor::from_vec(vec![1.0]));
/// let mut adam = Adam::new(0.1);
/// // Pretend the gradient of the loss wrt w is 2w (loss = w^2).
/// for _ in 0..200 {
///     let w = store.value(id).data()[0];
///     store.accumulate_grad(id, &Tensor::from_vec(vec![2.0 * w]));
///     adam.step(&mut store);
/// }
/// assert!(store.value(id).data()[0].abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam<S: Scalar = f64> {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<S>>,
    v: Vec<Vec<S>>,
}

impl<S: Scalar> Adam<S> {
    /// Create Adam with the given learning rate and default betas
    /// `(0.9, 0.999)`.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Set the learning rate (used by schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Apply one update from the accumulated gradients, then zero them.
    ///
    /// Steady-state steps touch no heap: moment buffers are sized once
    /// (lazily, below), values and gradients are borrowed in place via
    /// the store's split accessor, and the inner loop is a straight
    /// four-way zip over slices.
    // lint:zero_alloc
    pub fn step(&mut self, store: &mut ParamStore<S>) {
        // Lazily size the moment buffers on first use (or if the store grew).
        let sized = self.m.len();
        for id in store.ids().skip(sized) {
            let n = store.value(id).len();
            // lint:allow(alloc_hygiene): one-time lazy sizing of the
            // moment buffers — steady-state steps skip these pushes
            self.m.push(vec![S::ZERO; n]);
            // lint:allow(alloc_hygiene): same one-time sizing as above
            self.v.push(vec![S::ZERO; n]);
        }
        self.t += 1;
        let lr = S::from_f64(self.lr);
        let b1 = S::from_f64(self.beta1);
        let b2 = S::from_f64(self.beta2);
        let omb1 = S::from_f64(1.0 - self.beta1);
        let omb2 = S::from_f64(1.0 - self.beta2);
        let eps = S::from_f64(self.eps);
        let b1t = S::from_f64(1.0 - self.beta1.powi(self.t as i32));
        let b2t = S::from_f64(1.0 - self.beta2.powi(self.t as i32));
        for i in 0..store.len() {
            let (value, grad) = store.value_grad_mut(i);
            let moments = self.m[i].iter_mut().zip(self.v[i].iter_mut());
            for ((w, &g), (m, v)) in value.data_mut().iter_mut().zip(grad.data()).zip(moments) {
                *m = b1 * *m + omb1 * g;
                *v = b2 * *v + omb2 * g * g;
                let m_hat = *m / b1t;
                let v_hat = *v / b2t;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
        store.zero_grads();
    }
}

/// Step-decay learning-rate schedule: `lr = lr0 * factor^(epoch / period)`,
/// the "decay 10% per 10 epochs" schedule of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepDecay {
    /// Initial learning rate.
    pub lr0: f64,
    /// Multiplicative factor applied every `period` epochs (e.g. 0.9).
    pub factor: f64,
    /// Epoch period between decays.
    pub period: u64,
}

impl StepDecay {
    /// The paper's schedule: 1e-3, ×0.9 every 10 epochs.
    pub fn paper_default() -> Self {
        Self {
            lr0: 1e-3,
            factor: 0.9,
            period: 10,
        }
    }

    /// Learning rate at a given epoch (0-based).
    pub fn lr_at(&self, epoch: u64) -> f64 {
        self.lr0 * self.factor.powi((epoch / self.period) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn adam_minimizes_quadratic_bowl() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![3.0, -4.0]));
        let mut adam = Adam::new(0.05);
        for _ in 0..500 {
            let g: Vec<f64> = store.value(id).data().iter().map(|w| 2.0 * w).collect();
            store.accumulate_grad(id, &Tensor::from_vec(g));
            adam.step(&mut store);
        }
        for &w in store.value(id).data() {
            assert!(w.abs() < 1e-2, "did not converge: {w}");
        }
    }

    #[test]
    fn adam_f32_minimizes_quadratic_bowl() {
        let mut store: ParamStore<f32> = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![3.0f32, -4.0]));
        let mut adam = Adam::new(0.05);
        for _ in 0..500 {
            let g: Vec<f32> = store.value(id).data().iter().map(|w| 2.0 * w).collect();
            store.accumulate_grad(id, &Tensor::from_vec(g));
            adam.step(&mut store);
        }
        for &w in store.value(id).data() {
            assert!(w.abs() < 1e-2, "did not converge: {w}");
        }
    }

    #[test]
    fn adam_handles_params_added_later() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(vec![1.0]));
        let mut adam = Adam::new(0.1);
        store.accumulate_grad(a, &Tensor::from_vec(vec![1.0]));
        adam.step(&mut store);
        let b = store.add("b", Tensor::from_vec(vec![1.0]));
        store.accumulate_grad(b, &Tensor::from_vec(vec![1.0]));
        adam.step(&mut store); // must not panic on the new parameter
        assert!(store.value(b).data()[0] < 1.0);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![1.0]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![5.0]));
        let mut adam = Adam::new(0.01);
        adam.step(&mut store);
        assert_eq!(store.grad(id).data(), &[0.0]);
    }

    #[test]
    fn step_decay_matches_paper_schedule() {
        let s = StepDecay::paper_default();
        assert!((s.lr_at(0) - 1e-3).abs() < 1e-15);
        assert!((s.lr_at(9) - 1e-3).abs() < 1e-15);
        assert!((s.lr_at(10) - 9e-4).abs() < 1e-15);
        assert!((s.lr_at(25) - 8.1e-4).abs() < 1e-15);
    }

    #[test]
    fn lr_setter_roundtrips() {
        let mut adam: Adam = Adam::new(0.001);
        adam.set_lr(0.5);
        assert_eq!(adam.lr(), 0.5);
    }
}
