//! Optimizers: Adam with the paper's step-decay learning-rate schedule
//! (initial 1e-3, multiplied by 0.9 every 10 epochs — Table IV).

use crate::params::ParamStore;
use serde::{Deserialize, Serialize};

/// Adam optimizer (Kingma & Ba, 2014) over every parameter of a store.
///
/// # Examples
///
/// ```
/// use chainnet_neural::optim::Adam;
/// use chainnet_neural::params::ParamStore;
/// use chainnet_neural::tensor::Tensor;
///
/// let mut store = ParamStore::new();
/// let id = store.add("w", Tensor::from_vec(vec![1.0]));
/// let mut adam = Adam::new(0.1);
/// // Pretend the gradient of the loss wrt w is 2w (loss = w^2).
/// for _ in 0..200 {
///     let w = store.value(id).data()[0];
///     store.accumulate_grad(id, &Tensor::from_vec(vec![2.0 * w]));
///     adam.step(&mut store);
/// }
/// assert!(store.value(id).data()[0].abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Create Adam with the given learning rate and default betas
    /// `(0.9, 0.999)`.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// The current learning rate.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Set the learning rate (used by schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Apply one update from the accumulated gradients, then zero them.
    pub fn step(&mut self, store: &mut ParamStore) {
        // Lazily size the moment buffers on first use (or if the store grew).
        let sized = self.m.len();
        for id in store.ids().skip(sized) {
            let n = store.value(id).len();
            self.m.push(vec![0.0; n]);
            self.v.push(vec![0.0; n]);
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, id) in store.ids().enumerate().collect::<Vec<_>>() {
            let grad = store.grad(id).data().to_vec();
            let value = store.value_mut(id);
            for (j, g) in grad.iter().enumerate() {
                let m = &mut self.m[i][j];
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                let v = &mut self.v[i][j];
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let m_hat = *m / b1t;
                let v_hat = *v / b2t;
                value.data_mut()[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        store.zero_grads();
    }
}

/// Step-decay learning-rate schedule: `lr = lr0 * factor^(epoch / period)`,
/// the "decay 10% per 10 epochs" schedule of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepDecay {
    /// Initial learning rate.
    pub lr0: f64,
    /// Multiplicative factor applied every `period` epochs (e.g. 0.9).
    pub factor: f64,
    /// Epoch period between decays.
    pub period: u64,
}

impl StepDecay {
    /// The paper's schedule: 1e-3, ×0.9 every 10 epochs.
    pub fn paper_default() -> Self {
        Self {
            lr0: 1e-3,
            factor: 0.9,
            period: 10,
        }
    }

    /// Learning rate at a given epoch (0-based).
    pub fn lr_at(&self, epoch: u64) -> f64 {
        self.lr0 * self.factor.powi((epoch / self.period) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn adam_minimizes_quadratic_bowl() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![3.0, -4.0]));
        let mut adam = Adam::new(0.05);
        for _ in 0..500 {
            let g: Vec<f64> = store.value(id).data().iter().map(|w| 2.0 * w).collect();
            store.accumulate_grad(id, &Tensor::from_vec(g));
            adam.step(&mut store);
        }
        for &w in store.value(id).data() {
            assert!(w.abs() < 1e-2, "did not converge: {w}");
        }
    }

    #[test]
    fn adam_handles_params_added_later() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(vec![1.0]));
        let mut adam = Adam::new(0.1);
        store.accumulate_grad(a, &Tensor::from_vec(vec![1.0]));
        adam.step(&mut store);
        let b = store.add("b", Tensor::from_vec(vec![1.0]));
        store.accumulate_grad(b, &Tensor::from_vec(vec![1.0]));
        adam.step(&mut store); // must not panic on the new parameter
        assert!(store.value(b).data()[0] < 1.0);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(vec![1.0]));
        store.accumulate_grad(id, &Tensor::from_vec(vec![5.0]));
        let mut adam = Adam::new(0.01);
        adam.step(&mut store);
        assert_eq!(store.grad(id).data(), &[0.0]);
    }

    #[test]
    fn step_decay_matches_paper_schedule() {
        let s = StepDecay::paper_default();
        assert!((s.lr_at(0) - 1e-3).abs() < 1e-15);
        assert!((s.lr_at(9) - 1e-3).abs() < 1e-15);
        assert!((s.lr_at(10) - 9e-4).abs() < 1e-15);
        assert!((s.lr_at(25) - 8.1e-4).abs() < 1e-15);
    }

    #[test]
    fn lr_setter_roundtrips() {
        let mut adam = Adam::new(0.001);
        adam.set_lr(0.5);
        assert_eq!(adam.lr(), 0.5);
    }
}
