//! A minimal dense tensor over a [`Scalar`] element type (`f64` by
//! default, `f32` for the batched training path), sufficient for the
//! small recurrent GNNs of the paper (vectors and matrices; no
//! broadcasting).

use crate::scalar::Scalar;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense tensor: a flat buffer plus a shape.
///
/// Supported ranks are 1 (vectors) and 2 (row-major matrices); that covers
/// every operation ChainNet needs. All arithmetic helpers panic on shape
/// mismatch — shape errors are programming bugs, not runtime conditions.
///
/// The element type defaults to `f64`, the reference arithmetic used by
/// gradcheck and the golden tests; `Tensor<f32>` runs the same kernels
/// with twice the SIMD width for batched training.
///
/// # Examples
///
/// ```
/// use chainnet_neural::tensor::Tensor;
///
/// let v = Tensor::from_vec(vec![1.0, 2.0, 3.0]);
/// assert_eq!(v.len(), 3);
/// let m = Tensor::matrix(2, 3, vec![1., 2., 3., 4., 5., 6.]);
/// let mv = m.matvec(&v);
/// assert_eq!(mv.data(), &[14.0, 32.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<S: Scalar = f64> {
    shape: Vec<usize>,
    data: Vec<S>,
}

impl<S: Scalar> Tensor<S> {
    /// A vector tensor from raw data.
    pub fn from_vec(data: Vec<S>) -> Self {
        Self {
            shape: vec![data.len()],
            data,
        }
    }

    /// A vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Self::from_vec(vec![S::ZERO; n])
    }

    /// A scalar tensor (shape `[1]`).
    pub fn scalar(x: S) -> Self {
        Self::from_vec(vec![x])
    }

    /// A row-major `rows x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn matrix(rows: usize, cols: usize, data: Vec<S>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} != {rows}x{cols}",
            data.len()
        );
        Self {
            shape: vec![rows, cols],
            data,
        }
    }

    /// A `rows x cols` matrix of zeros.
    pub fn zeros_matrix(rows: usize, cols: usize) -> Self {
        Self::matrix(rows, cols, vec![S::ZERO; rows * cols])
    }

    /// A zero tensor with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Self {
            shape: self.shape.clone(),
            data: vec![S::ZERO; self.data.len()],
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The flat data buffer.
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Mutable access to the flat data buffer.
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The single element of a scalar tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> S {
        assert_eq!(
            self.data.len(),
            1,
            "item() on non-scalar of len {}",
            self.data.len()
        );
        self.data[0]
    }

    /// Whether this is a rank-2 tensor.
    pub fn is_matrix(&self) -> bool {
        self.shape.len() == 2
    }

    /// Rows of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a matrix.
    pub fn rows(&self) -> usize {
        assert!(self.is_matrix(), "rows() on non-matrix");
        self.shape[0]
    }

    /// Columns of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a matrix.
    pub fn cols(&self) -> usize {
        assert!(self.is_matrix(), "cols() on non-matrix");
        self.shape[1]
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `(m, n)` and `x` has length `n`.
    pub fn matvec(&self, x: &Tensor<S>) -> Tensor<S> {
        assert!(self.is_matrix(), "matvec on non-matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        assert_eq!(x.len(), n, "matvec: matrix cols {n} != vec len {}", x.len());
        let mut out = vec![S::ZERO; m];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * n..(i + 1) * n];
            *o = row.iter().zip(&x.data).map(|(&a, &b)| a * b).sum();
        }
        Tensor::from_vec(out)
    }

    /// Transposed matrix-vector product `self^T * x`.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `(m, n)` and `x` has length `m`.
    pub fn matvec_t(&self, x: &Tensor<S>) -> Tensor<S> {
        assert!(self.is_matrix(), "matvec_t on non-matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        assert_eq!(
            x.len(),
            m,
            "matvec_t: matrix rows {m} != vec len {}",
            x.len()
        );
        let mut out = vec![S::ZERO; n];
        for i in 0..m {
            let xi = x.data[i];
            if xi == S::ZERO {
                continue;
            }
            let row = &self.data[i * n..(i + 1) * n];
            for (o, &r) in out.iter_mut().zip(row) {
                *o += xi * r;
            }
        }
        Tensor::from_vec(out)
    }

    /// Outer product `x * y^T` as an `(x.len, y.len)` matrix.
    pub fn outer(x: &Tensor<S>, y: &Tensor<S>) -> Tensor<S> {
        let mut data = Vec::with_capacity(x.len() * y.len());
        for &a in &x.data {
            for &b in &y.data {
                data.push(a * b);
            }
        }
        Tensor::matrix(x.len(), y.len(), data)
    }

    /// Elementwise binary map.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor<S>, f: impl Fn(S, S) -> S) -> Tensor<S> {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip_map");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise unary map.
    pub fn map(&self, f: impl Fn(S) -> S) -> Tensor<S> {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// In-place elementwise accumulation `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor<S>) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaled accumulation `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, alpha: S, other: &Tensor<S>) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_scaled");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Dot product of two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn dot(&self, other: &Tensor<S>) -> S {
        assert_eq!(self.len(), other.len(), "length mismatch in dot");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> S {
        self.data.iter().copied().sum()
    }

    /// Concatenate vectors.
    pub fn concat(parts: &[&Tensor<S>]) -> Tensor<S> {
        let mut data = Vec::with_capacity(parts.iter().map(|t| t.len()).sum());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec(data)
    }

    /// A tensor from an explicit shape and flat buffer, reusing the
    /// buffer's allocation (the tape's gradient pool depends on this).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_shape_data(shape: Vec<usize>, data: Vec<S>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not match data length {}",
            data.len()
        );
        Self { shape, data }
    }

    /// Decompose into `(shape, data)`, surrendering both allocations.
    pub fn into_parts(self) -> (Vec<usize>, Vec<S>) {
        (self.shape, self.data)
    }

    /// Convert every element to another scalar type through `f64`.
    ///
    /// `f64 -> f64` and `f32 -> f32` are the identity; `f32 -> f64` is
    /// exact; `f64 -> f32` rounds to nearest. Used to move parameter
    /// stores between the training dtype and the `f64` reference path.
    pub fn cast<T: Scalar>(&self) -> Tensor<T> {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| T::from_f64(x.to_f64())).collect(),
        }
    }

    /// Reference matrix product `self * b` via the textbook triple loop.
    ///
    /// Kept as the differential-testing oracle for [`matmul`](Self::matmul):
    /// each output element is a single ascending-`k` accumulation, which is
    /// the exact summation order the optimized kernels must reproduce.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `(m, k)` and `b` is `(k, n)`.
    pub fn matmul_naive(&self, b: &Tensor<S>) -> Tensor<S> {
        assert!(
            self.is_matrix() && b.is_matrix(),
            "matmul_naive on non-matrix"
        );
        let (m, k) = (self.shape[0], self.shape[1]);
        let (bk, n) = (b.shape[0], b.shape[1]);
        assert_eq!(k, bk, "matmul_naive: inner dims {k} != {bk}");
        let mut out = vec![S::ZERO; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let mut acc = S::ZERO;
                for (kk, &a) in a_row.iter().enumerate() {
                    acc += a * b.data[kk * n + j];
                }
                *o = acc;
            }
        }
        Tensor::matrix(m, n, out)
    }

    /// Matrix product with the right operand pre-transposed:
    /// `self (m, k) * bt^T` where `bt` is `(n, k)`, yielding `(m, n)`.
    ///
    /// This is the workhorse kernel: every B "column" is a contiguous
    /// row of `bt`, so the inner dot product streams both operands
    /// sequentially. The `(i, j)` space is walked in cache-sized tiles
    /// so the active rows of `bt` stay resident while a tile of A rows
    /// is swept, and each tile row is computed [`LANES`] output columns
    /// at a time so the FP pipeline sees independent accumulator
    /// chains. Each output element is still one ascending-`k`
    /// accumulation into a single scalar — bit-identical to
    /// [`matmul_naive`](Self::matmul_naive).
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `(m, k)` and `bt` is `(n, k)`.
    // lint:zero_alloc
    pub fn matmul_bt(&self, bt: &Tensor<S>) -> Tensor<S> {
        assert!(
            self.is_matrix() && bt.is_matrix(),
            "matmul_bt on non-matrix"
        );
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, btk) = (bt.shape[0], bt.shape[1]);
        assert_eq!(k, btk, "matmul_bt: inner dims {k} != {btk}");
        // lint:allow(alloc_hygiene): the single output buffer, sized
        // exactly once up front and amortized over O(m*n*k) work; the
        // tile loops below never allocate
        let mut out = vec![S::ZERO; m * n];
        matmul_bt_into(&self.data, &bt.data, m, k, n, &mut out);
        Tensor::matrix(m, n, out)
    }

    /// Optimized matrix product `self * b`.
    ///
    /// Packs `b` into transposed (row-contiguous columns) layout once,
    /// then runs the cache-blocked [`matmul_bt`](Self::matmul_bt) kernel.
    /// Bit-identical to [`matmul_naive`](Self::matmul_naive) — proven by
    /// the property tests in this module.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `(m, k)` and `b` is `(k, n)`.
    pub fn matmul(&self, b: &Tensor<S>) -> Tensor<S> {
        assert!(self.is_matrix() && b.is_matrix(), "matmul on non-matrix");
        let (k, n) = (b.shape[0], b.shape[1]);
        assert_eq!(
            self.shape[1], k,
            "matmul: inner dims {} != {k}",
            self.shape[1]
        );
        let mut bt = vec![S::ZERO; n * k];
        for (kk, b_row) in b.data.chunks_exact(n).enumerate() {
            for (j, &v) in b_row.iter().enumerate() {
                bt[j * k + kk] = v;
            }
        }
        self.matmul_bt(&Tensor::matrix(n, k, bt))
    }

    /// Transpose of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a matrix.
    pub fn transposed(&self) -> Tensor<S> {
        assert!(self.is_matrix(), "transposed() on non-matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![S::ZERO; n * m];
        for (i, row) in self.data.chunks_exact(n).enumerate() {
            for (j, &v) in row.iter().enumerate() {
                out[j * m + i] = v;
            }
        }
        Tensor::matrix(n, m, out)
    }
}

/// Output columns computed together by the lane-blocked dot kernel: 8
/// independent accumulator chains hide the FP-add latency that a single
/// running sum serializes on, and give the autovectorizer/out-of-order
/// core parallel work without reassociating any individual sum.
const LANES: usize = 8;

/// The `matmul_bt` inner kernel over raw slices: `a (m, k) * bt^T`
/// where `bt` is `(n, k)` row-major, written into `out (m, n)`.
///
/// Exposed at the slice level (crate-internal) so the tape's batched
/// ops can run it into pooled buffers without constructing tensors.
/// Summation order per output element is a single ascending-`k`
/// accumulator — the bit-identity contract shared with `matmul_naive`,
/// `matvec` and the tape's `MatVec` op.
///
/// # Panics
///
/// Panics (in debug) unless the slice lengths match the given dims.
// lint:zero_alloc
pub(crate) fn matmul_bt_into<S: Scalar>(
    a: &[S],
    bt: &[S],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [S],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(bt.len(), n * k);
    debug_assert_eq!(out.len(), m * n);

    // Wide-A path: march [`LANES`] rows of A together. A k-tile of those
    // rows is repacked into column-interleaved layout (`ap[kk][l]`, one
    // 8 KiB stack panel), so the inner loop is a contiguous LANES-wide
    // load, a broadcast of one `bt` element, and LANES independent
    // multiply-adds — a shape the autovectorizer turns into genuine
    // SIMD, unlike the lane-per-column layout whose loads straddle
    // `LANES` different rows. Each accumulator still sums its products
    // in ascending `kk` (resuming from the stored partial across
    // k-tiles, which re-reads the exact bits it wrote), so every output
    // element keeps the single ascending-`k` accumulation contract.
    const TILE_K: usize = 128;
    let mut i0 = 0;
    while i0 + LANES <= m {
        let mut ap = [S::ZERO; LANES * TILE_K];
        let mut k0 = 0;
        while k0 < k {
            let kt = TILE_K.min(k - k0);
            for kk in 0..kt {
                for (l, slot) in ap[kk * LANES..(kk + 1) * LANES].iter_mut().enumerate() {
                    *slot = a[(i0 + l) * k + k0 + kk];
                }
            }
            for j in 0..n {
                let b_row = &bt[j * k + k0..j * k + k0 + kt];
                let mut acc = [S::ZERO; LANES];
                if k0 > 0 {
                    for (l, acc_l) in acc.iter_mut().enumerate() {
                        *acc_l = out[(i0 + l) * n + j];
                    }
                }
                for (kk, &b) in b_row.iter().enumerate() {
                    let a_lanes = &ap[kk * LANES..(kk + 1) * LANES];
                    for (acc_l, &a_l) in acc.iter_mut().zip(a_lanes) {
                        *acc_l += a_l * b;
                    }
                }
                for (l, &acc_l) in acc.iter().enumerate() {
                    out[(i0 + l) * n + j] = acc_l;
                }
            }
            k0 += kt;
        }
        i0 += LANES;
    }

    // Leftover rows (m % LANES, or all of a short matrix): the
    // lane-per-column row kernel.
    for i in i0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        dot_row_block(a_row, bt, k, out_row);
    }
}

/// One output row (or tile row) of `matmul_bt_into`: dot `a_row`
/// against every length-`k` row of `bt_rows`, [`LANES`] columns at a
/// time, falling back to the single-lane [`dot_slices`] for the tail.
// lint:zero_alloc
#[inline]
fn dot_row_block<S: Scalar>(a_row: &[S], bt_rows: &[S], k: usize, out_row: &mut [S]) {
    debug_assert_eq!(bt_rows.len(), out_row.len() * k);
    let n = out_row.len();
    let mut j = 0;
    while j + LANES <= n {
        dot_lanes(
            a_row,
            &bt_rows[j * k..(j + LANES) * k],
            &mut out_row[j..j + LANES],
        );
        j += LANES;
    }
    for (o, b_row) in out_row[j..]
        .iter_mut()
        .zip(bt_rows[j * k..].chunks_exact(k))
    {
        *o = dot_slices(a_row, b_row);
    }
}

/// [`LANES`] simultaneous ascending-order dot products: one accumulator
/// per output column, all swept by a single pass over `a`. Every
/// accumulator sees exactly the summation order of [`dot_slices`] —
/// per-element bit-identical — but the chains are independent, so the
/// core retires [`LANES`] fused multiply-adds per FP-add latency
/// instead of one.
// lint:zero_alloc
#[inline]
fn dot_lanes<S: Scalar>(a: &[S], bt_rows: &[S], out: &mut [S]) {
    let k = a.len();
    debug_assert_eq!(bt_rows.len(), LANES * k);
    debug_assert_eq!(out.len(), LANES);
    let mut acc = [S::ZERO; LANES];
    for (i, &x) in a.iter().enumerate() {
        let col = &bt_rows[i..];
        for (l, acc_l) in acc.iter_mut().enumerate() {
            *acc_l += x * col[l * k];
        }
    }
    out.copy_from_slice(&acc);
}

/// Ascending-order dot product of two equal-length slices: a single
/// accumulator updated left to right, matching the naive kernels' (and
/// `matvec`'s) summation order exactly.
// lint:zero_alloc
#[inline]
fn dot_slices<S: Scalar>(a: &[S], b: &[S]) -> S {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = S::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

impl<S: Scalar> fmt::Display for Tensor<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}{:?}", self.shape, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_known_result() {
        let m = Tensor::matrix(2, 3, vec![1., 0., 2., -1., 1., 0.]);
        let v = Tensor::from_vec(vec![1., 2., 3.]);
        assert_eq!(m.matvec(&v).data(), &[7.0, 1.0]);
    }

    #[test]
    fn matvec_t_is_transpose() {
        let m = Tensor::matrix(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let v = Tensor::from_vec(vec![1., 1.]);
        assert_eq!(m.matvec_t(&v).data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let x = Tensor::from_vec(vec![1., 2.]);
        let y = Tensor::from_vec(vec![3., 4., 5.]);
        let o = Tensor::outer(&x, &y);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.data(), &[3., 4., 5., 6., 8., 10.]);
    }

    #[test]
    fn concat_joins_vectors() {
        let a = Tensor::from_vec(vec![1., 2.]);
        let b = Tensor::from_vec(vec![3.]);
        assert_eq!(Tensor::concat(&[&a, &b]).data(), &[1., 2., 3.]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_map_rejects_mismatch() {
        let a = Tensor::from_vec(vec![1.]);
        let b = Tensor::from_vec(vec![1., 2.]);
        let _ = a.zip_map(&b, |x, y| x + y);
    }

    #[test]
    #[should_panic(expected = "matvec")]
    fn matvec_rejects_bad_length() {
        let m = Tensor::matrix(2, 3, vec![0.0; 6]);
        let v = Tensor::from_vec(vec![1., 2.]);
        let _ = m.matvec(&v);
    }

    #[test]
    fn item_on_scalar() {
        assert_eq!(Tensor::scalar(4.25).item(), 4.25);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::from_vec(vec![1., 1.]);
        a.add_scaled(2.0, &Tensor::from_vec(vec![1., 3.]));
        assert_eq!(a.data(), &[3., 7.]);
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor::matrix(2, 2, vec![1., 2., 3., 4.]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn f32_kernels_match_f64_within_tolerance() {
        // Same pseudo-random inputs through both dtypes; the f32 result
        // must track the f64 reference to f32 rounding accuracy.
        let k = 37;
        let (m, n) = (5, 13);
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a64: Vec<f64> = (0..m * k).map(|_| next()).collect();
        let b64: Vec<f64> = (0..n * k).map(|_| next()).collect();
        let a32: Vec<f32> = a64.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b64.iter().map(|&x| x as f32).collect();
        let y64 = Tensor::matrix(m, k, a64).matmul_bt(&Tensor::matrix(n, k, b64));
        let y32 = Tensor::<f32>::matrix(m, k, a32).matmul_bt(&Tensor::matrix(n, k, b32));
        for (&a, &b) in y64.data().iter().zip(y32.data()) {
            assert!((a - f64::from(b)).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn cast_round_trip_f64_is_identity() {
        let t = Tensor::matrix(2, 2, vec![1.5, -2.25, 3.0, 0.1]);
        let back: Tensor<f64> = t.cast::<f32>().cast();
        // 1.5/-2.25/3.0 are exact in f32; 0.1 is not.
        assert_eq!(back.data()[0], 1.5);
        assert_eq!(back.data()[1], -2.25);
        assert!((back.data()[3] - 0.1).abs() < 1e-7);
        let exact: Tensor<f64> = t.cast::<f64>();
        assert_eq!(exact, t);
    }
}
