//! A minimal dense tensor over `f64`, sufficient for the small recurrent
//! GNNs of the paper (vectors and matrices; no broadcasting).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense tensor: a flat buffer plus a shape.
///
/// Supported ranks are 1 (vectors) and 2 (row-major matrices); that covers
/// every operation ChainNet needs. All arithmetic helpers panic on shape
/// mismatch — shape errors are programming bugs, not runtime conditions.
///
/// # Examples
///
/// ```
/// use chainnet_neural::tensor::Tensor;
///
/// let v = Tensor::from_vec(vec![1.0, 2.0, 3.0]);
/// assert_eq!(v.len(), 3);
/// let m = Tensor::matrix(2, 3, vec![1., 2., 3., 4., 5., 6.]);
/// let mv = m.matvec(&v);
/// assert_eq!(mv.data(), &[14.0, 32.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// A vector tensor from raw data.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Self {
            shape: vec![data.len()],
            data,
        }
    }

    /// A vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Self::from_vec(vec![0.0; n])
    }

    /// A scalar tensor (shape `[1]`).
    pub fn scalar(x: f64) -> Self {
        Self::from_vec(vec![x])
    }

    /// A row-major `rows x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn matrix(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} != {rows}x{cols}",
            data.len()
        );
        Self {
            shape: vec![rows, cols],
            data,
        }
    }

    /// A `rows x cols` matrix of zeros.
    pub fn zeros_matrix(rows: usize, cols: usize) -> Self {
        Self::matrix(rows, cols, vec![0.0; rows * cols])
    }

    /// A zero tensor with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Self {
            shape: self.shape.clone(),
            data: vec![0.0; self.data.len()],
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The flat data buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat data buffer.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The single element of a scalar tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f64 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on non-scalar of len {}",
            self.data.len()
        );
        self.data[0]
    }

    /// Whether this is a rank-2 tensor.
    pub fn is_matrix(&self) -> bool {
        self.shape.len() == 2
    }

    /// Rows of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a matrix.
    pub fn rows(&self) -> usize {
        assert!(self.is_matrix(), "rows() on non-matrix");
        self.shape[0]
    }

    /// Columns of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a matrix.
    pub fn cols(&self) -> usize {
        assert!(self.is_matrix(), "cols() on non-matrix");
        self.shape[1]
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `(m, n)` and `x` has length `n`.
    pub fn matvec(&self, x: &Tensor) -> Tensor {
        assert!(self.is_matrix(), "matvec on non-matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        assert_eq!(x.len(), n, "matvec: matrix cols {n} != vec len {}", x.len());
        let mut out = vec![0.0; m];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * n..(i + 1) * n];
            *o = row.iter().zip(&x.data).map(|(a, b)| a * b).sum();
        }
        Tensor::from_vec(out)
    }

    /// Transposed matrix-vector product `self^T * x`.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `(m, n)` and `x` has length `m`.
    pub fn matvec_t(&self, x: &Tensor) -> Tensor {
        assert!(self.is_matrix(), "matvec_t on non-matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        assert_eq!(
            x.len(),
            m,
            "matvec_t: matrix rows {m} != vec len {}",
            x.len()
        );
        let mut out = vec![0.0; n];
        for i in 0..m {
            let xi = x.data[i];
            if xi == 0.0 {
                continue;
            }
            let row = &self.data[i * n..(i + 1) * n];
            for (o, &r) in out.iter_mut().zip(row) {
                *o += xi * r;
            }
        }
        Tensor::from_vec(out)
    }

    /// Outer product `x * y^T` as an `(x.len, y.len)` matrix.
    pub fn outer(x: &Tensor, y: &Tensor) -> Tensor {
        let mut data = Vec::with_capacity(x.len() * y.len());
        for &a in &x.data {
            for &b in &y.data {
                data.push(a * b);
            }
        }
        Tensor::matrix(x.len(), y.len(), data)
    }

    /// Elementwise binary map.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip_map");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Elementwise unary map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// In-place elementwise accumulation `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaled accumulation `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f64, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_scaled");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Dot product of two equal-length vectors.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn dot(&self, other: &Tensor) -> f64 {
        assert_eq!(self.len(), other.len(), "length mismatch in dot");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Concatenate vectors.
    pub fn concat(parts: &[&Tensor]) -> Tensor {
        let mut data = Vec::with_capacity(parts.iter().map(|t| t.len()).sum());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec(data)
    }

    /// A tensor from an explicit shape and flat buffer, reusing the
    /// buffer's allocation (the tape's gradient pool depends on this).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_shape_data(shape: Vec<usize>, data: Vec<f64>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not match data length {}",
            data.len()
        );
        Self { shape, data }
    }

    /// Decompose into `(shape, data)`, surrendering both allocations.
    pub fn into_parts(self) -> (Vec<usize>, Vec<f64>) {
        (self.shape, self.data)
    }

    /// Reference matrix product `self * b` via the textbook triple loop.
    ///
    /// Kept as the differential-testing oracle for [`matmul`](Self::matmul):
    /// each output element is a single ascending-`k` accumulation, which is
    /// the exact summation order the optimized kernels must reproduce.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `(m, k)` and `b` is `(k, n)`.
    pub fn matmul_naive(&self, b: &Tensor) -> Tensor {
        assert!(
            self.is_matrix() && b.is_matrix(),
            "matmul_naive on non-matrix"
        );
        let (m, k) = (self.shape[0], self.shape[1]);
        let (bk, n) = (b.shape[0], b.shape[1]);
        assert_eq!(k, bk, "matmul_naive: inner dims {k} != {bk}");
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (kk, &a) in a_row.iter().enumerate() {
                    acc += a * b.data[kk * n + j];
                }
                *o = acc;
            }
        }
        Tensor::matrix(m, n, out)
    }

    /// Matrix product with the right operand pre-transposed:
    /// `self (m, k) * bt^T` where `bt` is `(n, k)`, yielding `(m, n)`.
    ///
    /// This is the workhorse kernel: every B "column" is a contiguous
    /// row of `bt`, so the inner dot product streams both operands
    /// sequentially. The `(i, j)` space is walked in cache-sized tiles
    /// so the active rows of `bt` stay resident while a tile of A rows
    /// is swept. Each output element is still one ascending-`k`
    /// accumulation into a single scalar — bit-identical to
    /// [`matmul_naive`](Self::matmul_naive).
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `(m, k)` and `bt` is `(n, k)`.
    // lint:zero_alloc
    pub fn matmul_bt(&self, bt: &Tensor) -> Tensor {
        assert!(
            self.is_matrix() && bt.is_matrix(),
            "matmul_bt on non-matrix"
        );
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, btk) = (bt.shape[0], bt.shape[1]);
        assert_eq!(k, btk, "matmul_bt: inner dims {k} != {btk}");
        // lint:allow(alloc_hygiene): the single output buffer, sized
        // exactly once up front and amortized over O(m*n*k) work; the
        // tile loops below never allocate
        let mut out = vec![0.0; m * n];

        // Tile sizes chosen so one A tile + one B tile of rows fit in a
        // typical 32 KiB L1d: 32 rows x 64 columns x 8 bytes = 16 KiB each
        // when k <= 64; larger k simply spills to L2, which still beats
        // the naive kernel's column-strided walk of B.
        const TILE_I: usize = 32;
        const TILE_J: usize = 64;

        // Small-matrix fast path: when everything fits in a couple of
        // cache lines the tiling bookkeeping costs more than it saves.
        if m * k <= 64 * 64 && n * k <= 64 * 64 {
            for i in 0..m {
                let a_row = &self.data[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, b_row) in out_row.iter_mut().zip(bt.data.chunks_exact(k)) {
                    *o = dot_slices(a_row, b_row);
                }
            }
            return Tensor::matrix(m, n, out);
        }

        for i0 in (0..m).step_by(TILE_I) {
            let i1 = (i0 + TILE_I).min(m);
            for j0 in (0..n).step_by(TILE_J) {
                let j1 = (j0 + TILE_J).min(n);
                for i in i0..i1 {
                    let a_row = &self.data[i * k..(i + 1) * k];
                    let out_row = &mut out[i * n + j0..i * n + j1];
                    let bt_rows = &bt.data[j0 * k..j1 * k];
                    for (o, b_row) in out_row.iter_mut().zip(bt_rows.chunks_exact(k)) {
                        *o = dot_slices(a_row, b_row);
                    }
                }
            }
        }
        Tensor::matrix(m, n, out)
    }

    /// Optimized matrix product `self * b`.
    ///
    /// Packs `b` into transposed (row-contiguous columns) layout once,
    /// then runs the cache-blocked [`matmul_bt`](Self::matmul_bt) kernel.
    /// Bit-identical to [`matmul_naive`](Self::matmul_naive) — proven by
    /// the property tests in this module.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `(m, k)` and `b` is `(k, n)`.
    pub fn matmul(&self, b: &Tensor) -> Tensor {
        assert!(self.is_matrix() && b.is_matrix(), "matmul on non-matrix");
        let (k, n) = (b.shape[0], b.shape[1]);
        assert_eq!(
            self.shape[1], k,
            "matmul: inner dims {} != {k}",
            self.shape[1]
        );
        let mut bt = vec![0.0; n * k];
        for (kk, b_row) in b.data.chunks_exact(n).enumerate() {
            for (j, &v) in b_row.iter().enumerate() {
                bt[j * k + kk] = v;
            }
        }
        self.matmul_bt(&Tensor::matrix(n, k, bt))
    }

    /// Transpose of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not a matrix.
    pub fn transposed(&self) -> Tensor {
        assert!(self.is_matrix(), "transposed() on non-matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; n * m];
        for (i, row) in self.data.chunks_exact(n).enumerate() {
            for (j, &v) in row.iter().enumerate() {
                out[j * m + i] = v;
            }
        }
        Tensor::matrix(n, m, out)
    }
}

/// Ascending-order dot product of two equal-length slices: a single
/// accumulator updated left to right, matching the naive kernels' (and
/// `matvec`'s) summation order exactly.
// lint:zero_alloc
#[inline]
fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}{:?}", self.shape, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_known_result() {
        let m = Tensor::matrix(2, 3, vec![1., 0., 2., -1., 1., 0.]);
        let v = Tensor::from_vec(vec![1., 2., 3.]);
        assert_eq!(m.matvec(&v).data(), &[7.0, 1.0]);
    }

    #[test]
    fn matvec_t_is_transpose() {
        let m = Tensor::matrix(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let v = Tensor::from_vec(vec![1., 1.]);
        assert_eq!(m.matvec_t(&v).data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let x = Tensor::from_vec(vec![1., 2.]);
        let y = Tensor::from_vec(vec![3., 4., 5.]);
        let o = Tensor::outer(&x, &y);
        assert_eq!(o.shape(), &[2, 3]);
        assert_eq!(o.data(), &[3., 4., 5., 6., 8., 10.]);
    }

    #[test]
    fn concat_joins_vectors() {
        let a = Tensor::from_vec(vec![1., 2.]);
        let b = Tensor::from_vec(vec![3.]);
        assert_eq!(Tensor::concat(&[&a, &b]).data(), &[1., 2., 3.]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_map_rejects_mismatch() {
        let a = Tensor::from_vec(vec![1.]);
        let b = Tensor::from_vec(vec![1., 2.]);
        let _ = a.zip_map(&b, |x, y| x + y);
    }

    #[test]
    #[should_panic(expected = "matvec")]
    fn matvec_rejects_bad_length() {
        let m = Tensor::matrix(2, 3, vec![0.0; 6]);
        let v = Tensor::from_vec(vec![1., 2.]);
        let _ = m.matvec(&v);
    }

    #[test]
    fn item_on_scalar() {
        assert_eq!(Tensor::scalar(4.25).item(), 4.25);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::from_vec(vec![1., 1.]);
        a.add_scaled(2.0, &Tensor::from_vec(vec![1., 3.]));
        assert_eq!(a.data(), &[3., 7.]);
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor::matrix(2, 2, vec![1., 2., 3., 4.]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
