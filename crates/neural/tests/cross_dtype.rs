//! Cross-dtype gradient checks: every layer's *f32* analytic gradient
//! against the retained *f64* central-finite-difference oracle
//! ([`chainnet_neural::gradcheck::check_cross_dtype`]).
//!
//! # Tolerances
//!
//! An f32 forward/backward carries ~1e-7 relative rounding per op, and
//! the finite-difference oracle itself contributes O(eps²) truncation
//! plus O(ulp/eps) cancellation error. With weights and activations of
//! magnitude O(1) and a handful of ops per layer, gradients land within
//! `1e-4` absolute for the shallow layers; the GRU's three gate chains
//! and the MLP's composition accumulate a little more, so those use
//! `1e-3`. These bounds are ~100x above observed deviations (to stay
//! seed-robust) and ~100x below any real gradient bug, which shows up
//! at O(1e-1) or as a sign flip.

use chainnet_neural::gradcheck::check_cross_dtype;
use chainnet_neural::layers::{Activation, GruCell, Linear, Mlp};
use chainnet_neural::params::ParamStore;
use chainnet_neural::scalar::Scalar;
use chainnet_neural::tape::{Tape, Var};
use chainnet_neural::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A fixed pseudo-random input vector, cast into the tape's dtype.
fn input<S: Scalar>(tape: &mut Tape<S>, dim: usize, seed: u64) -> Var {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data: Vec<S> = (0..dim)
        .map(|_| S::from_f64(rng.gen_range(-1.0..1.0)))
        .collect();
    tape.leaf(Tensor::from_shape_data(vec![dim], data))
}

/// Like [`input`], but as a `(1, dim)` matrix leaf for the row-batched
/// forwards.
fn input_row<S: Scalar>(tape: &mut Tape<S>, dim: usize, seed: u64) -> Var {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data: Vec<S> = (0..dim)
        .map(|_| S::from_f64(rng.gen_range(-1.0..1.0)))
        .collect();
    tape.leaf(Tensor::matrix(1, dim, data))
}

/// Scalar loss = sum of squares of the layer output, a smooth function
/// with nonzero gradient through every output coordinate.
fn sum_sq<S: Scalar>(tape: &mut Tape<S>, y: Var) -> Var {
    let sq = tape.mul(y, y);
    tape.sum(sq)
}

#[test]
fn linear_f32_gradients_match_f64_oracle() {
    let mut store: ParamStore = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(11);
    let layer = Linear::new(&mut store, "lin", 5, 4, &mut rng);
    let l32 = layer;
    let l64 = layer;
    let report = check_cross_dtype(
        &mut store,
        &mut |tape, store| {
            let x = input(tape, 5, 42);
            let y = l32.forward(tape, store, x);
            sum_sq(tape, y)
        },
        &mut |tape, store| {
            let x = input(tape, 5, 42);
            let y = l64.forward(tape, store, x);
            sum_sq(tape, y)
        },
        usize::MAX,
        1e-4,
    );
    assert!(report.checked > 0);
    assert!(
        report.passes(1e-4),
        "linear: max abs error {:.3e} at {:?}",
        report.max_abs_error,
        report.worst
    );
}

#[test]
fn mlp_f32_gradients_match_f64_oracle() {
    let mut store: ParamStore = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(13);
    let mlp = Mlp::new(&mut store, "mlp", &[6, 8, 1], Activation::Relu, &mut rng);
    let m32 = mlp.clone();
    let m64 = mlp;
    let report = check_cross_dtype(
        &mut store,
        &mut |tape, store| {
            let x = input_row(tape, 6, 7);
            let y = m32.forward_rows(tape, store, x);
            sum_sq(tape, y)
        },
        &mut |tape, store| {
            let x = input_row(tape, 6, 7);
            let y = m64.forward_rows(tape, store, x);
            sum_sq(tape, y)
        },
        usize::MAX,
        1e-4,
    );
    assert!(report.checked > 0);
    assert!(
        report.passes(1e-3),
        "mlp: max abs error {:.3e} at {:?}",
        report.max_abs_error,
        report.worst
    );
}

#[test]
fn gru_f32_gradients_match_f64_oracle() {
    let mut store: ParamStore = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(17);
    let gru = GruCell::new(&mut store, "gru", 4, 6, &mut rng);
    let g32 = gru;
    let g64 = gru;
    let report = check_cross_dtype(
        &mut store,
        &mut |tape, store| {
            let x = input(tape, 4, 3);
            let h = input(tape, 6, 5);
            let h1 = g32.forward(tape, store, x, h);
            // Two chained steps exercise the recurrence gradient.
            let h2 = g32.forward(tape, store, x, h1);
            sum_sq(tape, h2)
        },
        &mut |tape, store| {
            let x = input(tape, 4, 3);
            let h = input(tape, 6, 5);
            let h1 = g64.forward(tape, store, x, h);
            let h2 = g64.forward(tape, store, x, h1);
            sum_sq(tape, h2)
        },
        usize::MAX,
        1e-4,
    );
    assert!(report.checked > 0);
    assert!(
        report.passes(1e-3),
        "gru: max abs error {:.3e} at {:?}",
        report.max_abs_error,
        report.worst
    );
}

#[test]
fn batched_row_ops_f32_gradients_match_f64_oracle() {
    // The batched-training op set (matmul_bt / select_rows /
    // masked_softmax_rows / weighted_sum_rows) under one loss.
    let mut store: ParamStore = ParamStore::new();
    let mut rng = SmallRng::seed_from_u64(19);
    let layer = Linear::new(&mut store, "proj", 3, 3, &mut rng);
    let l32 = layer;
    let l64 = layer;
    // (2 rows × 6 score columns), one padded slot per row.
    let mask = [
        true, true, false, true, true, true, true, false, true, true, true, true,
    ];
    let choice = [0u32, 1u32];

    fn build<S: Scalar>(
        tape: &mut Tape<S>,
        store: &ParamStore<S>,
        layer: &Linear,
        mask: &[bool],
        choice: &[u32],
    ) -> Var {
        let a = {
            let mut rng = SmallRng::seed_from_u64(23);
            let data: Vec<S> = (0..6)
                .map(|_| S::from_f64(rng.gen_range(-1.0..1.0)))
                .collect();
            tape.leaf(Tensor::matrix(2, 3, data))
        };
        let b = {
            let mut rng = SmallRng::seed_from_u64(29);
            let data: Vec<S> = (0..6)
                .map(|_| S::from_f64(rng.gen_range(-1.0..1.0)))
                .collect();
            tape.leaf(Tensor::matrix(2, 3, data))
        };
        let pa = layer.forward_rows(tape, store, a);
        let pb = layer.forward_rows(tape, store, b);
        let sel = tape.select_rows(&[pa, pb], choice);
        let cat = tape.concat_cols(&[pa, pb]);
        let w = tape.masked_softmax_rows(cat, mask);
        let items: Vec<Var> = (0..6).map(|_| sel).collect();
        let y = tape.weighted_sum_rows(w, &items);
        let sq = tape.mul(y, y);
        tape.sum(sq)
    }

    let report = check_cross_dtype(
        &mut store,
        &mut |tape, store| build(tape, store, &l32, &mask, &choice),
        &mut |tape, store| build(tape, store, &l64, &mask, &choice),
        usize::MAX,
        1e-4,
    );
    assert!(report.checked > 0);
    assert!(
        report.passes(1e-3),
        "row ops: max abs error {:.3e} at {:?}",
        report.max_abs_error,
        report.worst
    );
}
