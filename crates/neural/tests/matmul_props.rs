//! Differential tests for the optimized matmul kernels: the blocked,
//! transposed-B kernel must produce **bit-identical** output to the
//! retained naive triple-loop reference across random shapes — including
//! shapes that straddle the small-matrix fast path and the tiled path,
//! and values where floating-point summation order would show through
//! (mixed magnitudes) if the kernels reordered any accumulation.

use chainnet_neural::tensor::Tensor;
use proptest::prelude::*;

fn matrix_strategy(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Tensor> {
    (rows, cols).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-1e3f64..1e3, m * n)
            .prop_map(move |data| Tensor::matrix(m, n, data))
    })
}

/// `(A (m,k), B (k,n))` pairs with conformable inner dimensions.
fn matmul_pair(max_dim: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (1..max_dim, 1..max_dim, 1..max_dim).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-1e3f64..1e3, m * k),
            proptest::collection::vec(-1e-3f64..1e-3, k * n),
        )
            .prop_map(move |(a, b)| (Tensor::matrix(m, k, a), Tensor::matrix(k, n, b)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked kernel == naive reference, bit for bit (small shapes:
    /// exercises the fast path).
    #[test]
    fn matmul_matches_naive_small(pair in matmul_pair(12)) {
        let (a, b) = pair;
        let fast = a.matmul(&b);
        let slow = a.matmul_naive(&b);
        prop_assert_eq!(fast.shape(), slow.shape());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!(x.to_bits() == y.to_bits(), "{} vs {}", x, y);
        }
    }

    /// matmul_bt agrees with matmul on the pre-transposed operand.
    #[test]
    fn matmul_bt_matches_matmul(pair in matmul_pair(10)) {
        let (a, b) = pair;
        let via_bt = a.matmul_bt(&b.transposed());
        let direct = a.matmul(&b);
        prop_assert_eq!(via_bt, direct);
    }

    /// A one-column B makes matmul degenerate to matvec; the optimized
    /// kernel must agree with the existing matvec bit for bit (the
    /// batched-inference path relies on exactly this equivalence).
    #[test]
    fn single_column_matmul_is_matvec(a in matrix_strategy(1..10, 1..10), xs in proptest::collection::vec(-10.0f64..10.0, 9)) {
        let k = a.cols();
        let x = Tensor::from_vec(xs[..k].to_vec());
        let b = Tensor::matrix(k, 1, x.data().to_vec());
        let mv = a.matvec(&x);
        let mm = a.matmul(&b);
        for (p, q) in mm.data().iter().zip(mv.data()) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
    }
}

/// Shapes large enough to leave the small-matrix fast path and hit the
/// tiled loop with partial edge tiles.
#[test]
fn matmul_matches_naive_beyond_fast_path() {
    for &(m, k, n) in &[(70usize, 70usize, 70usize), (33, 129, 65), (97, 64, 80)] {
        // Deterministic pseudo-random fill with mixed magnitudes.
        let fill = |len: usize, salt: u64| -> Vec<f64> {
            (0..len)
                .map(|i| {
                    let h = (i as u64)
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(salt);
                    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                    (u - 0.5) * 10f64.powi((h % 7) as i32 - 3)
                })
                .collect()
        };
        let a = Tensor::matrix(m, k, fill(m * k, 1));
        let b = Tensor::matrix(k, n, fill(k * n, 2));
        let fast = a.matmul(&b);
        let slow = a.matmul_naive(&b);
        assert_eq!(fast.shape(), slow.shape());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n}): {x} vs {y}");
        }
    }
}
