//! Property tests for the optimizer and parameter store: numerical
//! robustness under arbitrary gradients, and algebraic identities the
//! update rule must satisfy.

use chainnet_neural::optim::{Adam, StepDecay};
use chainnet_neural::params::ParamStore;
use chainnet_neural::tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adam never produces NaN/Inf weights from finite gradients, however
    /// extreme, and each step moves every coordinate by at most ~lr
    /// (the bias-corrected Adam step-size bound).
    #[test]
    fn adam_is_bounded_and_finite(
        grads in proptest::collection::vec(-1e6f64..1e6, 4),
        lr in 1e-4f64..0.5,
        steps in 1usize..30,
    ) {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(grads.len()));
        let mut adam = Adam::new(lr);
        for _ in 0..steps {
            let before = store.value(id).data().to_vec();
            store.accumulate_grad(id, &Tensor::from_vec(grads.clone()));
            adam.step(&mut store);
            for (b, a) in before.iter().zip(store.value(id).data()) {
                prop_assert!(a.is_finite());
                // |Δw| <= lr * (1 + eps slack): Adam's per-step bound.
                prop_assert!((a - b).abs() <= lr * 1.2 + 1e-12,
                    "step {} exceeded bound {}", (a - b).abs(), lr);
            }
        }
    }

    /// Gradient accumulation is linear: accumulating g twice equals
    /// accumulating 2g once.
    #[test]
    fn grad_accumulation_is_linear(g in proptest::collection::vec(-10.0f64..10.0, 3)) {
        let mut a = ParamStore::new();
        let ia = a.add("w", Tensor::zeros(3));
        a.accumulate_grad(ia, &Tensor::from_vec(g.clone()));
        a.accumulate_grad(ia, &Tensor::from_vec(g.clone()));

        let mut b = ParamStore::new();
        let ib = b.add("w", Tensor::zeros(3));
        let doubled: Vec<f64> = g.iter().map(|x| 2.0 * x).collect();
        b.accumulate_grad(ib, &Tensor::from_vec(doubled));

        for (x, y) in a.grad(ia).data().iter().zip(b.grad(ib).data()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// The step-decay schedule is non-increasing and hits the documented
    /// closed form at every epoch.
    #[test]
    fn step_decay_is_monotone(lr0 in 1e-5f64..1.0, period in 1u64..40, epochs in 1u64..200) {
        let s = StepDecay { lr0, factor: 0.9, period };
        let mut prev = f64::INFINITY;
        for e in 0..epochs {
            let lr = s.lr_at(e);
            prop_assert!(lr <= prev + 1e-15);
            prop_assert!(lr > 0.0);
            let expected = lr0 * 0.9f64.powi((e / period) as i32);
            prop_assert!((lr - expected).abs() < 1e-12);
            prev = lr;
        }
    }

    /// Zero gradients leave weights untouched by a (bias-corrected) step.
    #[test]
    fn zero_gradient_is_a_fixed_point(w0 in proptest::collection::vec(-5.0f64..5.0, 3)) {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(w0.clone()));
        let mut adam = Adam::new(0.1);
        adam.step(&mut store); // gradient accumulator is all zeros
        for (a, b) in store.value(id).data().iter().zip(&w0) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
