//! Property-based gradient checking: every differentiable op's analytic
//! gradient must match central finite differences on random inputs, and
//! composite layers must satisfy basic calculus identities.

use chainnet_neural::layers::{Activation, GruCell, Mlp};
use chainnet_neural::params::ParamStore;
use chainnet_neural::tape::Tape;
use chainnet_neural::tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const EPS: f64 = 1e-6;
const TOL: f64 = 1e-4;

fn finite_diff(f: &mut dyn FnMut(&[f64]) -> f64, x: &[f64]) -> Vec<f64> {
    let mut g = vec![0.0; x.len()];
    let mut xp = x.to_vec();
    for i in 0..x.len() {
        let orig = xp[i];
        xp[i] = orig + EPS;
        let fp = f(&xp);
        xp[i] = orig - EPS;
        let fm = f(&xp);
        xp[i] = orig;
        g[i] = (fp - fm) / (2.0 * EPS);
    }
    g
}

fn small_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0f64..2.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// d/dx Σ tanh(sigmoid(x) * x) matches finite differences.
    #[test]
    fn composite_elementwise_gradcheck(x0 in small_vec(5)) {
        let mut f = |x: &[f64]| {
            x.iter().map(|&v| {
                let s = 1.0 / (1.0 + (-v).exp());
                (s * v).tanh()
            }).sum::<f64>()
        };
        let num = finite_diff(&mut f, &x0);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(x0.clone()));
        let s = tape.sigmoid(x);
        let m = tape.mul(s, x);
        let t = tape.tanh(m);
        let loss = tape.sum(t);
        tape.backward(loss);
        let ana = tape.grad(x);
        for (a, n) in ana.data().iter().zip(&num) {
            prop_assert!((a - n).abs() < TOL, "{a} vs {n}");
        }
    }

    /// Softmax-then-dot gradient matches finite differences.
    #[test]
    fn softmax_dot_gradcheck(x0 in small_vec(4), w0 in small_vec(4)) {
        let mut f = |x: &[f64]| {
            let max = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let e: Vec<f64> = x.iter().map(|v| (v - max).exp()).collect();
            let z: f64 = e.iter().sum();
            e.iter().zip(&w0).map(|(ei, wi)| ei / z * wi).sum::<f64>()
        };
        let num = finite_diff(&mut f, &x0);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(x0.clone()));
        let w = tape.leaf(Tensor::from_vec(w0.clone()));
        let sm = tape.softmax(x);
        let loss = tape.dot(sm, w);
        tape.backward(loss);
        let ana = tape.grad(x);
        for (a, n) in ana.data().iter().zip(&num) {
            prop_assert!((a - n).abs() < TOL, "{a} vs {n}");
        }
    }

    /// GRU step gradient wrt the input vector matches finite differences.
    #[test]
    fn gru_input_gradcheck(seed in 0u64..1000, x0 in small_vec(3), h0 in small_vec(4)) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 3, 4, &mut rng);

        let mut f = |x: &[f64]| {
            let mut tape = Tape::new();
            let xv = tape.leaf(Tensor::from_vec(x.to_vec()));
            let hv = tape.leaf(Tensor::from_vec(h0.clone()));
            let out = gru.forward(&mut tape, &store, xv, hv);
            tape.value(out).data().iter().sum::<f64>()
        };
        let num = finite_diff(&mut f, &x0);

        let mut tape = Tape::new();
        let xv = tape.leaf(Tensor::from_vec(x0.clone()));
        let hv = tape.leaf(Tensor::from_vec(h0.clone()));
        let out = gru.forward(&mut tape, &store, xv, hv);
        let loss = tape.sum(out);
        tape.backward(loss);
        let ana = tape.grad(xv);
        for (a, n) in ana.data().iter().zip(&num) {
            prop_assert!((a - n).abs() < TOL, "{a} vs {n}");
        }
    }

    /// MLP gradient wrt input matches finite differences for every
    /// activation.
    #[test]
    fn mlp_input_gradcheck(seed in 0u64..1000, x0 in small_vec(3)) {
        for act in [Activation::Relu, Activation::Tanh, Activation::Sigmoid, Activation::LeakyRelu] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut store = ParamStore::new();
            let mlp = Mlp::new(&mut store, "m", &[3, 5, 1], act, &mut rng);
            // ReLU kinks break finite differences exactly at 0; nudge.
            let x0n: Vec<f64> = x0.iter().map(|v| v + 0.0123).collect();
            let mut f = |x: &[f64]| {
                let mut tape = Tape::new();
                let xv = tape.leaf(Tensor::from_vec(x.to_vec()));
                let out = mlp.forward(&mut tape, &store, xv);
                tape.value(out).item()
            };
            let num = finite_diff(&mut f, &x0n);
            let mut tape = Tape::new();
            let xv = tape.leaf(Tensor::from_vec(x0n.clone()));
            let out = mlp.forward(&mut tape, &store, xv);
            tape.backward(out);
            let ana = tape.grad(xv);
            for (a, n) in ana.data().iter().zip(&num) {
                prop_assert!((a - n).abs() < 1e-3, "{act:?}: {a} vs {n}");
            }
        }
    }

    /// Gradient of a sum of independent terms is additive: running
    /// backward on (f + g) equals grad f + grad g.
    #[test]
    fn gradients_are_additive(x0 in small_vec(4)) {
        let grad_of = |use_f: bool, use_g: bool| -> Vec<f64> {
            let mut tape = Tape::new();
            let x = tape.leaf(Tensor::from_vec(x0.clone()));
            let f = tape.mul(x, x);
            let fs = tape.sum(f);
            let g = tape.tanh(x);
            let gs = tape.sum(g);
            let loss = match (use_f, use_g) {
                (true, true) => tape.add(fs, gs),
                (true, false) => fs,
                (false, true) => gs,
                _ => unreachable!(),
            };
            tape.backward(loss);
            tape.grad(x).data().to_vec()
        };
        let both = grad_of(true, true);
        let f_only = grad_of(true, false);
        let g_only = grad_of(false, true);
        for i in 0..x0.len() {
            prop_assert!((both[i] - (f_only[i] + g_only[i])).abs() < 1e-10);
        }
    }

    /// Softmax output is a probability distribution for any input.
    #[test]
    fn softmax_is_distribution(x0 in small_vec(6)) {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(x0));
        let y = tape.softmax(x);
        let data = tape.value(y).data();
        prop_assert!((data.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        prop_assert!(data.iter().all(|&v| v >= 0.0));
    }
}
