//! A hand-rolled Rust source masker.
//!
//! The lint rules operate on a *masked* copy of each source file in
//! which the contents of comments, string literals and char literals
//! are replaced by spaces (newlines are preserved, so byte offsets and
//! line numbers are stable). This is what makes a textual rule such as
//! "no `.unwrap()` in library code" safe: the pattern cannot
//! false-positive inside a doc comment, an error message or a test
//! fixture embedded as a string.
//!
//! The masker is not a full lexer — it only needs to classify four
//! region kinds correctly:
//!
//! * line comments (`//`, `///`, `//!`), captured for
//!   `lint:allow(...)` annotations;
//! * block comments (`/* ... */`), including nesting;
//! * string literals: `"..."`, `b"..."`, `c"..."`, raw `r"..."` /
//!   `r#"..."#` with any number of hashes (and `br` / `cr` variants),
//!   with escape handling in the cooked forms;
//! * char literals `'x'` / `'\n'`, distinguished from lifetimes
//!   (`'a`) by look-ahead;
//! * raw identifiers (`r#fn`, `r#type`): rewritten to `r_fn` / `r_type`
//!   in the mask so boundary-sensitive rules see one identifier and a
//!   raw identifier like `r#unsafe` can never match a banned keyword.
//!
//! String literal *values* are additionally recorded with their byte
//! offset so schema rules (R4) can recover the metric name passed at a
//! call site the mask has blanked.

/// A string literal found in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrLit {
    /// Byte offset of the opening quote (`"`) in the masked text. For
    /// raw/byte strings this is still the position of the `"` itself,
    /// not of the `r`/`b` prefix.
    pub offset: usize,
    /// 1-based line of the opening quote.
    pub line: usize,
    /// The literal's raw contents (escapes are *not* processed; rules
    /// that care about charsets treat a `\` as just another byte).
    pub value: String,
}

/// A line comment found in the source (block comments are masked but
/// not captured; `lint:allow` annotations must be line comments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text after the `//` introducer (including any further
    /// `/` or `!` doc markers).
    pub text: String,
}

/// Result of masking one source file.
#[derive(Debug, Clone)]
pub struct Masked {
    /// The source with comment and literal contents blanked. Same byte
    /// length as the input; string/char literal delimiters are kept as
    /// `"` so call-site scanners can recognise "a literal starts here".
    pub code: String,
    /// All string literals in source order.
    pub strings: Vec<StrLit>,
    /// All line comments in source order.
    pub comments: Vec<LineComment>,
}

impl Masked {
    /// The string literal whose opening quote sits at `offset`, if any.
    pub fn string_at(&self, offset: usize) -> Option<&StrLit> {
        self.strings.iter().find(|s| s.offset == offset)
    }

    /// 1-based line number of a byte offset into the masked text.
    pub fn line_of(&self, offset: usize) -> usize {
        1 + self.code.as_bytes()[..offset.min(self.code.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }
}

/// Mask `src`: blank comments and literal bodies, record literals and
/// line comments. Never fails — unterminated regions extend to EOF.
pub fn mask(src: &str) -> Masked {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = vec![0u8; n];
    let mut strings = Vec::new();
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Copy a byte through to the mask verbatim.
    macro_rules! keep {
        ($idx:expr) => {
            out[$idx] = b[$idx];
        };
    }
    // Blank a byte (newlines always survive so line numbers hold).
    macro_rules! blank {
        ($idx:expr) => {
            out[$idx] = if b[$idx] == b'\n' { b'\n' } else { b' ' };
        };
    }

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                keep!(i);
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                // Line comment: blank to end of line, capture text.
                let start = i;
                while i < n && b[i] != b'\n' {
                    blank!(i);
                    i += 1;
                }
                comments.push(LineComment {
                    line,
                    text: src[start + 2..i].to_string(),
                });
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Block comment with nesting.
                let mut depth = 1usize;
                blank!(i);
                blank!(i + 1);
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        blank!(i);
                        blank!(i + 1);
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        blank!(i);
                        blank!(i + 1);
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        blank!(i);
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = cooked_string(src, b, i, &mut out, &mut line, &mut strings);
            }
            b'r' if starts_raw_ident(b, i) => {
                // Raw identifier `r#name`: rewrite the `#` to `_` so the
                // masked text reads as a single identifier. Boundary
                // checks then cannot split it, so `r#unsafe` / `r#fn`
                // never match a banned keyword and never drift offsets.
                keep!(i);
                out[i + 1] = b'_';
                i += 2;
                while i < n && is_ident_byte(b[i]) {
                    keep!(i);
                    i += 1;
                }
            }
            b'r' | b'b' | b'c' if starts_string_prefix(b, i) => {
                // r"...", r#"..."#, b"...", br#"..."#, c"...", cr#"..."#
                // — consume the prefix letters, then find the quote.
                let mut j = i;
                if b[j] == b'b' || b[j] == b'c' {
                    keep!(j);
                    j += 1;
                }
                let raw = j < n && b[j] == b'r';
                if raw {
                    keep!(j);
                    j += 1;
                    let mut hashes = 0usize;
                    while j < n && b[j] == b'#' {
                        keep!(j);
                        hashes += 1;
                        j += 1;
                    }
                    i = raw_string(src, b, j, hashes, &mut out, &mut line, &mut strings);
                } else {
                    i = cooked_string(src, b, j, &mut out, &mut line, &mut strings);
                }
            }
            b'\'' => {
                // Char literal or lifetime.
                if let Some(end) = char_literal_end(b, i) {
                    keep!(i);
                    out[end] = b'\''; // keep closing delimiter too
                    for k in i + 1..end {
                        blank!(k);
                        if b[k] == b'\n' {
                            line += 1;
                        }
                    }
                    i = end + 1;
                } else {
                    keep!(i); // lifetime tick: plain code
                    i += 1;
                }
            }
            _ => {
                keep!(i);
                i += 1;
            }
        }
    }

    // The output is the input with some bytes replaced by ASCII spaces.
    // Multi-byte UTF-8 sequences are either copied whole or blanked
    // whole-by-byte, so the result is valid UTF-8.
    let code = String::from_utf8_lossy(&out).into_owned();
    Masked {
        code,
        strings,
        comments,
    }
}

/// Does `b[i..]` start a string-literal prefix — one of `r`, `b`, `c`,
/// `br`, `cr`, with optional `#`s after a raw `r` — as opposed to an
/// identifier like `req` or `chains`?
fn starts_string_prefix(b: &[u8], i: usize) -> bool {
    // Identifier context disqualifies: `var"` cannot occur, but `burn`
    // must not be read as b + urn. Require the previous byte to not be
    // part of an identifier.
    if i > 0 && is_ident_byte(b[i - 1]) {
        return false;
    }
    let n = b.len();
    let mut j = i;
    if j < n && (b[j] == b'b' || b[j] == b'c') {
        j += 1;
    }
    if j < n && b[j] == b'r' {
        j += 1;
        // Raw strings may carry hashes: r#"..."#, cr#"..."#.
        while j < n && b[j] == b'#' {
            j += 1;
        }
    }
    j > i && j < n && b[j] == b'"'
}

/// Does `b[i..]` start a raw identifier (`r#name`)? Requires a
/// non-identifier byte before the `r` and an identifier-start byte
/// (not a digit, not a quote) after the `#`, so `r#"raw"#` strings and
/// plain identifiers are excluded.
fn starts_raw_ident(b: &[u8], i: usize) -> bool {
    if i > 0 && is_ident_byte(b[i - 1]) {
        return false;
    }
    i + 2 < b.len() && b[i + 1] == b'#' && {
        let c = b[i + 2];
        c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
    }
}

/// Is `c` an identifier byte (`[A-Za-z0-9_]` or any non-ASCII byte)?
pub fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Mask a cooked (escaped) string starting at the `"` at `qi`; returns
/// the index just past the closing quote.
fn cooked_string(
    src: &str,
    b: &[u8],
    qi: usize,
    out: &mut [u8],
    line: &mut usize,
    strings: &mut Vec<StrLit>,
) -> usize {
    let n = b.len();
    out[qi] = b'"';
    let start_line = *line;
    let mut i = qi + 1;
    while i < n {
        match b[i] {
            b'\\' if i + 1 < n => {
                out[i] = b' ';
                out[i + 1] = if b[i + 1] == b'\n' { b'\n' } else { b' ' };
                if b[i + 1] == b'\n' {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => {
                out[i] = b'"';
                strings.push(StrLit {
                    offset: qi,
                    line: start_line,
                    value: src[qi + 1..i].to_string(),
                });
                return i + 1;
            }
            c => {
                out[i] = if c == b'\n' { b'\n' } else { b' ' };
                if c == b'\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    // Unterminated: treat the rest of the file as the literal.
    strings.push(StrLit {
        offset: qi,
        line: start_line,
        value: src[qi + 1..].to_string(),
    });
    n
}

/// Mask a raw string whose opening `"` is at `qi` with `hashes` hash
/// marks; returns the index just past the closing delimiter.
fn raw_string(
    src: &str,
    b: &[u8],
    qi: usize,
    hashes: usize,
    out: &mut [u8],
    line: &mut usize,
    strings: &mut Vec<StrLit>,
) -> usize {
    let n = b.len();
    if qi >= n {
        return n;
    }
    out[qi] = b'"';
    let start_line = *line;
    let mut i = qi + 1;
    while i < n {
        if b[i] == b'"' {
            // Candidate close: `"` followed by `hashes` hash marks.
            let close_ok = (1..=hashes).all(|k| i + k < n && b[i + k] == b'#');
            if close_ok && i + hashes < n + 1 {
                out[i] = b'"';
                for k in 1..=hashes {
                    if i + k < n {
                        out[i + k] = b'#';
                    }
                }
                strings.push(StrLit {
                    offset: qi,
                    line: start_line,
                    value: src[qi + 1..i].to_string(),
                });
                return i + hashes + 1;
            }
        }
        out[i] = if b[i] == b'\n' { b'\n' } else { b' ' };
        if b[i] == b'\n' {
            *line += 1;
        }
        i += 1;
    }
    strings.push(StrLit {
        offset: qi,
        line: start_line,
        value: src[qi + 1..].to_string(),
    });
    n
}

/// If a char literal starts at the `'` at `i`, return the index of its
/// closing `'`; otherwise (a lifetime such as `'a` or `'static`) `None`.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let n = b.len();
    if i + 1 >= n {
        return None;
    }
    if b[i + 1] == b'\\' {
        // Escaped char: the byte after the backslash is the escape body
        // (or its first byte, for `\u{..}` / `\x41`); skip it, then the
        // next quote closes the literal. This handles `'\\'` and `'\''`.
        let mut j = i + 3;
        while j < n && b[j] != b'\'' {
            j += 1;
        }
        return if j < n { Some(j) } else { None };
    }
    // Unescaped: `'x'` where x is one (possibly multi-byte) char. Find
    // the end of the first char after the quote.
    let mut j = i + 2;
    while j < n && b[j] >= 0x80 && b[j] < 0xC0 {
        j += 1; // UTF-8 continuation bytes
    }
    if j < n && b[j] == b'\'' {
        Some(j)
    } else {
        None // `'a` (lifetime) or `''` (invalid) — not a char literal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_doc_comments() {
        let m = mask("let x = 1; // call .unwrap() here\n/// docs panic!\nlet y = 2;\n");
        assert!(!m.code.contains("unwrap"));
        assert!(!m.code.contains("panic"));
        assert!(m.code.contains("let x = 1;"));
        assert!(m.code.contains("let y = 2;"));
        assert_eq!(m.comments.len(), 2);
        assert!(m.comments[0].text.contains(".unwrap()"));
        assert_eq!(m.comments[0].line, 1);
        assert_eq!(m.comments[1].line, 2);
    }

    #[test]
    fn masks_nested_block_comments_and_keeps_lines() {
        let src = "a /* outer /* .expect( */ still\ncomment */ b\nc";
        let m = mask(src);
        assert!(!m.code.contains("expect"));
        assert!(m.code.contains('a'));
        assert!(m.code.contains('b'));
        assert_eq!(m.code.matches('\n').count(), src.matches('\n').count());
        assert_eq!(m.line_of(m.code.find('c').unwrap()), 3);
    }

    #[test]
    fn masks_string_contents_but_keeps_delimiters() {
        let src = r#"let s = "x.unwrap() and panic!";"#;
        let m = mask(src);
        assert!(!m.code.contains("unwrap"));
        assert_eq!(m.code.matches('"').count(), 2);
        assert_eq!(m.strings.len(), 1);
        assert_eq!(m.strings[0].value, "x.unwrap() and panic!");
        assert_eq!(m.strings[0].offset, src.find('"').unwrap());
    }

    #[test]
    fn handles_escapes_and_raw_strings() {
        let src = "let a = \"quote \\\" .expect( end\"; let b = r#\"raw \"panic!\" body\"#;";
        let m = mask(src);
        assert!(!m.code.contains("expect"));
        assert!(!m.code.contains("panic"));
        assert_eq!(m.strings.len(), 2);
        assert_eq!(m.strings[0].value, "quote \\\" .expect( end");
        assert_eq!(m.strings[1].value, "raw \"panic!\" body");
    }

    #[test]
    fn distinguishes_char_literals_from_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '\\''; let d = 'x'; c.min(d) }";
        let m = mask(src);
        // Lifetimes survive as code; char literal bodies are blanked.
        assert!(m.code.contains("<'a>"));
        assert!(m.code.contains("&'a str"));
        assert!(!m.code.contains("'x'"));
        assert!(m.code.contains("'"));
    }

    #[test]
    fn byte_strings_are_masked() {
        let m = mask(r#"let b = b"thread_rng bytes";"#);
        assert!(!m.code.contains("thread_rng"));
        assert_eq!(m.strings.len(), 1);
    }

    #[test]
    fn multiline_string_preserves_line_numbers() {
        let src = "let s = \"line one\nInstant::now()\nlast\";\nlet t = 3;";
        let m = mask(src);
        assert!(!m.code.contains("Instant"));
        assert_eq!(m.line_of(m.code.find("let t").unwrap()), 4);
    }

    #[test]
    fn identifier_starting_with_r_or_b_is_not_a_string_prefix() {
        let src = "let run = 1; let bun = 2; let crs = 3; let brr = run + bun + crs;";
        let m = mask(src);
        assert_eq!(m.code, src);
        assert!(m.strings.is_empty());
    }

    #[test]
    fn c_string_literals_are_masked() {
        let src = r#"let c = c"panic! and .unwrap() inside"; let n = c.len();"#;
        let m = mask(src);
        assert!(!m.code.contains("panic"));
        assert!(!m.code.contains("unwrap"));
        assert!(m.code.contains("let n = c.len();"));
        assert_eq!(m.strings.len(), 1);
        assert_eq!(m.strings[0].value, "panic! and .unwrap() inside");
    }

    #[test]
    fn raw_c_string_literals_do_not_drift_on_embedded_quotes() {
        // An embedded `"` inside cr#"..."# must not terminate the
        // literal early (that would leave the tail unmasked).
        let src = "let s = cr#\"raw \"q\" thread_rng HashMap\"#; let tail = 9;";
        let m = mask(src);
        assert!(!m.code.contains("thread_rng"));
        assert!(!m.code.contains("HashMap"));
        assert!(m.code.contains("let tail = 9;"));
        assert_eq!(m.strings.len(), 1);
        assert_eq!(m.strings[0].value, "raw \"q\" thread_rng HashMap");
    }

    #[test]
    fn raw_identifiers_become_single_identifiers() {
        let src = "fn r#type(r#fn: u8) -> u8 { r#fn + r#unsafe }";
        let m = mask(src);
        assert_eq!(m.code, "fn r_type(r_fn: u8) -> u8 { r_fn + r_unsafe }");
        assert!(m.strings.is_empty());
        // Same byte length: offsets are stable.
        assert_eq!(m.code.len(), src.len());
    }

    #[test]
    fn raw_identifier_does_not_eat_a_raw_string() {
        let src = "let a = r#unsafe; let b = r#\"panic! body\"#;";
        let m = mask(src);
        assert!(m.code.contains("r_unsafe"));
        assert!(!m.code.contains("panic"));
        assert_eq!(m.strings.len(), 1);
        assert_eq!(m.strings[0].value, "panic! body");
    }
}
