//! Violation records, the machine-readable report and the human
//! diagnostic renderer.

use serde::Serialize;
use std::fmt;

/// The rule a violation belongs to. Slugs double as the names accepted
/// by `// lint:allow(<rule>): <reason>` annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Rule {
    /// R1 — panic-freedom in library code.
    Panic,
    /// R2 — determinism in hot-path crates.
    Determinism,
    /// R3 — `#![forbid(unsafe_code)]` everywhere, no `unsafe` tokens.
    UnsafeCode,
    /// R4 — obs metric names: charset + README schema consistency.
    ObsSchema,
    /// R5 — typed errors on public `Result` APIs.
    ErrorHygiene,
    /// R6 — no heap allocation inside `// lint:zero_alloc` functions.
    AllocHygiene,
    /// R7 — RNG discipline: seeded construction only, no ambient RNG,
    /// no cloning of RNG values (workspace-wide).
    RngDiscipline,
    /// R8 — float ordering through `total_cmp`, never
    /// `partial_cmp(..).unwrap()` (workspace-wide).
    FloatOrder,
    /// R9 — shared-state prep: `Rc`/`RefCell`/`Cell`/`static mut`/
    /// `thread_local!` flagged in crates slated for thread-sharding.
    SharedState,
    /// Meta — malformed `lint:allow` annotation (unknown rule or
    /// missing reason). A broken suppression must not pass silently.
    AllowSyntax,
}

impl Rule {
    /// The annotation slug (`lint:allow(<slug>): ...`).
    pub fn slug(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Determinism => "determinism",
            Rule::UnsafeCode => "unsafe",
            Rule::ObsSchema => "obs_schema",
            Rule::ErrorHygiene => "error_hygiene",
            Rule::AllocHygiene => "alloc_hygiene",
            Rule::RngDiscipline => "rng_discipline",
            Rule::FloatOrder => "float_order",
            Rule::SharedState => "shared_state",
            Rule::AllowSyntax => "allow_syntax",
        }
    }

    /// Parse an annotation slug.
    pub fn from_slug(s: &str) -> Option<Rule> {
        Some(match s {
            "panic" => Rule::Panic,
            "determinism" => Rule::Determinism,
            "unsafe" => Rule::UnsafeCode,
            "obs_schema" => Rule::ObsSchema,
            "error_hygiene" => Rule::ErrorHygiene,
            "alloc_hygiene" => Rule::AllocHygiene,
            "rng_discipline" => Rule::RngDiscipline,
            "float_order" => Rule::FloatOrder,
            "shared_state" => Rule::SharedState,
            _ => return None,
        })
    }

    /// Paper-facing rule id (R1..R9) for diagnostics.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Panic => "R1",
            Rule::Determinism => "R2",
            Rule::UnsafeCode => "R3",
            Rule::ObsSchema => "R4",
            Rule::ErrorHygiene => "R5",
            Rule::AllocHygiene => "R6",
            Rule::RngDiscipline => "R7",
            Rule::FloatOrder => "R8",
            Rule::SharedState => "R9",
            Rule::AllowSyntax => "R0",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.id(), self.slug())
    }
}

/// One unsuppressed rule violation.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Paper-facing rule id: `R1`..`R9` (`R0` for annotation syntax).
    pub rule: String,
    /// Annotation slug for the rule (what `lint:allow` would take).
    pub slug: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description of what fired.
    pub message: String,
}

impl Violation {
    pub(crate) fn new(rule: Rule, file: &str, line: usize, message: String) -> Self {
        Violation {
            rule: rule.id().to_string(),
            slug: rule.slug().to_string(),
            file: file.to_string(),
            line,
            message,
        }
    }
}

/// The full lint report, serialisable as JSON for CI consumption.
#[derive(Debug, Clone, Serialize, Default)]
pub struct Report {
    /// Unsuppressed violations, in (file, line) order.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of violations suppressed by a well-formed `lint:allow`.
    pub suppressed: usize,
}

impl Report {
    /// Whether the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serialise the report as pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Render `file:line: [Rn(slug)] message` diagnostics plus a
    /// summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}({})] {}\n",
                v.file, v.line, v.rule, v.slug, v.message
            ));
        }
        out.push_str(&format!(
            "chainnet-lint: {} violation(s), {} suppressed, {} file(s) scanned\n",
            self.violations.len(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }

    /// Sort violations for stable output.
    pub(crate) fn finish(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    }
}
