//! The rule set (R1–R9) and the `lint:allow` suppression machinery.
//!
//! All rules run on [`Masked`](crate::tokenizer::Masked) text, so
//! banned patterns inside comments and string literals never fire.
//! Region scoping comes from the [`ItemTree`](crate::items::ItemTree)
//! built per file: code inside a `#[cfg(test)]` item (directly
//! attributed or inherited from an enclosing `mod`/`impl`) is skipped
//! by every rule, and R6 applies only inside function bodies annotated
//! `// lint:zero_alloc`.

use crate::items::ItemTree;
use crate::report::{Rule, Violation};
use crate::tokenizer::{is_ident_byte, Masked};
use crate::workspace::{CrateKind, CrateSpec, SourceFile};
use std::collections::BTreeMap;

/// R1 — method/macro patterns that can panic in library code.
const PANIC_PATTERNS: &[(&str, bool)] = &[
    // (pattern, needs identifier boundary before first byte)
    (".unwrap()", false),
    (".expect(", false),
    ("panic!", true),
    ("todo!", true),
    ("unimplemented!", true),
];

/// R2 — sources of nondeterminism banned in hot-path crates. The wall
/// clock breaks replayability; `HashMap`/`HashSet` have
/// nondeterministic iteration order (use `BTreeMap`/`BTreeSet`, or
/// annotate a keyed-lookup-only use with `lint:allow(determinism)`).
/// Ambient RNG (`thread_rng`, `from_entropy`) is R7's job — it is
/// banned workspace-wide, not just in hot-path crates.
const DETERMINISM_PATTERNS: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock read in a hot path"),
    ("SystemTime::now", "wall-clock read in a hot path"),
    (
        "HashMap",
        "unordered map (iteration order is nondeterministic)",
    ),
    (
        "HashSet",
        "unordered set (iteration order is nondeterministic)",
    ),
];

/// R6 — allocation/heap patterns banned inside `// lint:zero_alloc`
/// function bodies. `Vec::with_capacity` is deliberately absent: the
/// sanctioned idiom is pre-reserving outside the hot loop.
const ALLOC_PATTERNS: &[(&str, bool)] = &[
    // (pattern, needs identifier boundary before first byte)
    ("Vec::new", true),
    ("vec!", true),
    ("Box::new", true),
    ("String::new", true),
    ("String::from", true),
    ("format!", true),
    (".push(", false),
    (".collect", false),
    (".to_string(", false),
    (".to_owned(", false),
    (".to_vec(", false),
    (".clone(", false),
];

/// R7 — ambient/unseeded RNG construction, banned workspace-wide.
/// (RNG cloning is detected separately: it forks a stream into two
/// identical ones, which silently correlates draws.)
const RNG_PATTERNS: &[(&str, &str)] = &[
    ("thread_rng", "ambient (unseeded) RNG"),
    ("from_entropy", "entropy-seeded RNG construction"),
];

/// R9 — shared-ownership / interior-mutability / global-state types
/// flagged in the crates slated for thread-sharding. None of these are
/// `Send`-friendly, so they would block the ROADMAP's multi-core qsim
/// and portfolio-SA work.
const SHARED_STATE_PATTERNS: &[(&str, &str)] = &[
    ("Rc", "`Rc` is not `Send`"),
    ("RefCell", "`RefCell` is not `Sync`"),
    ("Cell", "`Cell` is not `Sync`"),
    ("static mut", "mutable global state"),
    (
        "thread_local!",
        "per-thread global state breaks seeded replay across thread counts",
    ),
];

/// A parsed `lint:allow(<rule>): <reason>` annotation.
#[derive(Debug, Clone)]
struct Allow {
    line: usize,
    rule: Rule,
    /// The line this annotation covers besides its own: for a
    /// standalone comment line, the first non-comment line after the
    /// comment block (so a multi-line reason keeps its coverage); for
    /// a trailing annotation, the annotation's own line.
    covers: usize,
    used: bool,
}

/// Scan state for one source file.
pub struct FileScan<'a> {
    masked: &'a Masked,
    /// The file's item tree (scopes for R6 and `#[cfg(test)]`).
    items: ItemTree,
    /// Byte ranges covered by `#[cfg(test)]` items, from the tree.
    test_regions: Vec<(usize, usize)>,
    allows: Vec<Allow>,
    /// Violations before suppression.
    candidates: Vec<(Rule, usize, String)>,
    /// Malformed annotations (never suppressible).
    syntax_errors: Vec<(usize, String)>,
}

impl<'a> FileScan<'a> {
    /// Prepare a scan: itemize the file and parse annotations.
    pub fn new(masked: &'a Masked) -> Self {
        let items = ItemTree::build(masked);
        let test_regions = items.test_regions();
        let mut scan = FileScan {
            masked,
            items,
            test_regions,
            allows: Vec::new(),
            candidates: Vec::new(),
            syntax_errors: Vec::new(),
        };
        scan.parse_allows();
        scan
    }

    fn parse_allows(&mut self) {
        // Blank lines in the masked text are comment-only (or empty)
        // in the original: comment bodies mask to spaces.
        let line_blank: Vec<bool> = self
            .masked
            .code
            .lines()
            .map(|l| l.trim().is_empty())
            .collect();
        for c in &self.masked.comments {
            // Doc comments (`///`, `//!`) are documentation, not
            // annotations — prose may mention the syntax freely.
            if c.text.starts_with('/') || c.text.starts_with('!') {
                continue;
            }
            let Some(pos) = c.text.find("lint:allow(") else {
                continue;
            };
            let rest = &c.text[pos + "lint:allow".len()..];
            let parsed = (|| {
                let rest = rest.strip_prefix('(')?;
                let close = rest.find(')')?;
                let rule = Rule::from_slug(rest[..close].trim())?;
                let after = rest[close + 1..].trim_start();
                let reason = after.strip_prefix(':')?.trim();
                (!reason.is_empty()).then_some(rule)
            })();
            let standalone = line_blank.get(c.line - 1).copied().unwrap_or(false);
            let covers = if standalone {
                // Skip the rest of the comment block (continuation
                // lines of the reason mask to blank) to the code line
                // the annotation covers.
                let mut idx = c.line; // 0-based index of the next line
                while line_blank.get(idx).copied().unwrap_or(false) {
                    idx += 1;
                }
                idx + 1
            } else {
                c.line
            };
            match parsed {
                Some(rule) => self.allows.push(Allow {
                    line: c.line,
                    rule,
                    covers,
                    used: false,
                }),
                None => self.syntax_errors.push((
                    c.line,
                    format!(
                        "malformed lint:allow annotation (expected \
                         `lint:allow(<rule>): <reason>` with a known rule \
                         and a non-empty reason): `//{}`",
                        c.text.trim_end()
                    ),
                )),
            }
        }
    }

    fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    fn push(&mut self, rule: Rule, offset: usize, message: String) {
        let line = self.masked.line_of(offset);
        self.candidates.push((rule, line, message));
    }

    /// R1 — panic-freedom.
    pub fn rule_panic(&mut self) {
        for &(pat, boundary) in PANIC_PATTERNS {
            for off in find_all(&self.masked.code, pat, boundary) {
                if self.in_test_region(off) {
                    continue;
                }
                self.push(
                    Rule::Panic,
                    off,
                    format!(
                        "`{}` can panic; return the crate's typed error instead \
                         (or annotate an invariant with lint:allow(panic))",
                        pat.trim_start_matches('.').trim_end_matches('(')
                    ),
                );
            }
        }
    }

    /// R2 — determinism.
    pub fn rule_determinism(&mut self) {
        for &(pat, why) in DETERMINISM_PATTERNS {
            for off in find_all(&self.masked.code, pat, true) {
                if self.in_test_region(off) {
                    continue;
                }
                self.push(
                    Rule::Determinism,
                    off,
                    format!("`{pat}` in a hot-path crate: {why}; seeded results must replay"),
                );
            }
        }
    }

    /// R3 (token half) — no `unsafe` anywhere in first-party code.
    pub fn rule_unsafe_tokens(&mut self) {
        for off in find_all(&self.masked.code, "unsafe", true) {
            // `#![forbid(unsafe_code)]` itself mentions the word.
            if self.masked.code[..off].ends_with("forbid(")
                || self.masked.code[off..].starts_with("unsafe_code")
            {
                continue;
            }
            self.push(
                Rule::UnsafeCode,
                off,
                "`unsafe` is banned workspace-wide".to_string(),
            );
        }
    }

    /// R3 (attribute half) — the crate root must opt in to the ban.
    pub fn rule_forbid_attr(&mut self, rel_path: &str) {
        if !self.masked.code.contains("#![forbid(unsafe_code)]") {
            self.candidates.push((
                Rule::UnsafeCode,
                1,
                format!("{rel_path} is a crate root without `#![forbid(unsafe_code)]`"),
            ));
        }
    }

    /// R4 (collection half) — metric-name literals at obs call sites.
    /// Returns `(name, line)` pairs for the workspace-level reverse
    /// check; charset violations are recorded immediately.
    pub fn rule_obs_collect(&mut self) -> Vec<(String, usize)> {
        let code = &self.masked.code;
        let mut used = Vec::new();
        for pat in [".counter(", ".gauge(", ".histogram(", "labeled("] {
            for off in find_all(code, pat, pat == "labeled(") {
                if self.in_test_region(off) {
                    continue;
                }
                // Skip the definition site `pub fn labeled(`.
                if pat == "labeled(" && prev_word(code, off) == Some("fn") {
                    continue;
                }
                // First argument: skip whitespace and a leading `&`.
                let mut j = off + pat.len();
                let b = code.as_bytes();
                while j < b.len() && (b[j].is_ascii_whitespace() || b[j] == b'&') {
                    j += 1;
                }
                if j >= b.len() || b[j] != b'"' {
                    continue; // dynamic name (a variable or nested call)
                }
                let Some(lit) = self.masked.string_at(j) else {
                    continue;
                };
                let name = lit.value.clone();
                if !valid_metric_charset(&name) {
                    self.push(
                        Rule::ObsSchema,
                        off,
                        format!(
                            "metric name `{name}` violates the [a-z0-9_.] naming charset \
                             (see crates/obs/README.md)"
                        ),
                    );
                } else {
                    used.push((name, self.masked.line_of(off)));
                }
            }
        }
        used
    }

    /// R4 (collection half, spans) — span-name literals at tracer call
    /// sites (`.span("name")`). Span names share the metric charset;
    /// violations are recorded immediately, valid names are returned
    /// for the workspace-level cross-check against the README span
    /// table.
    pub fn rule_span_collect(&mut self) -> Vec<(String, usize)> {
        let code = &self.masked.code;
        let mut used = Vec::new();
        for off in find_all(code, ".span(", false) {
            if self.in_test_region(off) {
                continue;
            }
            // First argument must be a string literal; dynamic names
            // (e.g. the tracer's own `span(name)` plumbing) are skipped.
            let mut j = off + ".span(".len();
            let b = code.as_bytes();
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if j >= b.len() || b[j] != b'"' {
                continue;
            }
            let Some(lit) = self.masked.string_at(j) else {
                continue;
            };
            let name = lit.value.clone();
            if !valid_metric_charset(&name) {
                self.push(
                    Rule::ObsSchema,
                    off,
                    format!(
                        "span name `{name}` violates the [a-z0-9_.] naming charset \
                         (see crates/obs/README.md)"
                    ),
                );
            } else {
                used.push((name, self.masked.line_of(off)));
            }
        }
        used
    }

    /// R5 — public `Result` APIs must use a typed error.
    pub fn rule_error_hygiene(&mut self) {
        let code = &self.masked.code;
        for off in find_all(code, "pub fn ", true) {
            if self.in_test_region(off) {
                continue;
            }
            let Some(sig) = signature_at(code, off) else {
                continue;
            };
            let Some(ret) = return_type(&sig) else {
                continue;
            };
            if let Some(err_ty) = stringly_error(&ret) {
                self.push(
                    Rule::ErrorHygiene,
                    off,
                    format!(
                        "public API returns `Result<_, {err_ty}>`; use the crate's \
                         typed error so callers can match on failure modes"
                    ),
                );
            }
        }
    }

    /// R6 — allocation hygiene inside `// lint:zero_alloc` functions.
    pub fn rule_alloc_hygiene(&mut self) {
        let code = &self.masked.code;
        let mut hits = Vec::new();
        for ((bs, be), name) in self.items.zero_alloc_bodies() {
            for &(pat, boundary) in ALLOC_PATTERNS {
                for off in find_all(code, pat, boundary) {
                    if off < bs || off >= be {
                        continue;
                    }
                    let what = pat.trim_start_matches('.').trim_end_matches('(');
                    hits.push((
                        off,
                        format!(
                            "`{what}` allocates inside `// lint:zero_alloc` fn `{name}`; \
                             hoist the allocation out of the hot path, or \
                             lint:allow(alloc_hygiene) with capacity/ownership reasoning"
                        ),
                    ));
                }
            }
        }
        hits.sort_by_key(|&(off, _)| off);
        for (off, message) in hits {
            self.push(Rule::AllocHygiene, off, message);
        }
    }

    /// R7 — RNG discipline (workspace-wide): no ambient/entropy-seeded
    /// RNG construction, no cloning of RNG values.
    pub fn rule_rng_discipline(&mut self) {
        let code = &self.masked.code;
        for &(pat, why) in RNG_PATTERNS {
            for off in find_all(code, pat, true) {
                if self.in_test_region(off) {
                    continue;
                }
                self.push(
                    Rule::RngDiscipline,
                    off,
                    format!(
                        "`{pat}`: {why}; construct RNGs with `seed_from_u64` (or a \
                         documented child-stream derivation) so runs replay"
                    ),
                );
            }
        }
        // `some_rng.clone()` forks a stream into two identical ones:
        // both sides then draw the same sequence, silently correlating
        // results. Derive a child stream from a fresh seed instead.
        for off in find_all(code, ".clone(", false) {
            if self.in_test_region(off) {
                continue;
            }
            let Some(recv) = prev_word(code, off) else {
                continue;
            };
            if recv.to_ascii_lowercase().contains("rng") {
                self.push(
                    Rule::RngDiscipline,
                    off,
                    format!(
                        "`{recv}.clone()` duplicates an RNG stream (both copies draw \
                         identical sequences); derive a child RNG from a fresh seed instead"
                    ),
                );
            }
        }
    }

    /// R8 — float ordering (workspace-wide): comparator chains must go
    /// through `total_cmp`, never `partial_cmp(..).unwrap()`.
    pub fn rule_float_order(&mut self) {
        let code = &self.masked.code;
        let bytes = code.as_bytes();
        // (a) `x.partial_cmp(y).unwrap()` / `.expect(...)`: panics on
        // NaN, and NaN-poisoned orderings are exactly what `total_cmp`
        // exists to rule out. The `fn partial_cmp` definition inside a
        // manual `PartialOrd` impl is not a call site.
        for off in find_all(code, "partial_cmp", true) {
            if self.in_test_region(off) || prev_word(code, off) == Some("fn") {
                continue;
            }
            let open = off + "partial_cmp".len();
            if open >= bytes.len() || bytes[open] != b'(' {
                continue; // a path/reference, not a call
            }
            let Some(close) = match_paren(code, open) else {
                continue;
            };
            let after = &code[close + 1..];
            if after.starts_with(".unwrap()") || after.starts_with(".expect(") {
                self.push(
                    Rule::FloatOrder,
                    off,
                    "`partial_cmp(..).unwrap()` panics on NaN and orders floats \
                     partially; use `total_cmp` for a total order"
                        .to_string(),
                );
            }
        }
        // (b) float-keyed comparator calls built on `partial_cmp`
        // without the unwrap (e.g. `.unwrap_or(Ordering::Equal)`):
        // NaN keys then compare Equal and the result depends on input
        // order. Sites already flagged by (a) are skipped so each call
        // yields exactly one violation.
        for pat in [".sort_by(", ".sort_unstable_by(", ".max_by(", ".min_by("] {
            for off in find_all(code, pat, false) {
                if self.in_test_region(off) {
                    continue;
                }
                let open = off + pat.len() - 1;
                let Some(close) = match_paren(code, open) else {
                    continue;
                };
                let arg = &code[open..close];
                if arg.contains("partial_cmp")
                    && !arg.contains(".unwrap()")
                    && !arg.contains(".expect(")
                {
                    let what = pat.trim_start_matches('.').trim_end_matches('(');
                    self.push(
                        Rule::FloatOrder,
                        off,
                        format!(
                            "`{what}` comparator uses `partial_cmp`; NaN keys make the \
                             order input-dependent — use `total_cmp`"
                        ),
                    );
                }
            }
        }
    }

    /// R9 — shared-state prep in crates slated for thread-sharding.
    pub fn rule_shared_state(&mut self) {
        let code = &self.masked.code;
        for &(pat, why) in SHARED_STATE_PATTERNS {
            for off in find_all(code, pat, true) {
                if self.in_test_region(off) {
                    continue;
                }
                self.push(
                    Rule::SharedState,
                    off,
                    format!(
                        "`{pat}` in a crate slated for thread-sharding: {why}; keep \
                         state owned (or annotate with lint:allow(shared_state))"
                    ),
                );
            }
        }
    }

    /// Apply suppressions and drain results into the caller's buffers.
    /// Returns the number of suppressed violations.
    pub fn finish(mut self, rel_path: &str, out: &mut Vec<Violation>) -> usize {
        let mut suppressed = 0usize;
        for (rule, line, message) in std::mem::take(&mut self.candidates) {
            let allow = self
                .allows
                .iter_mut()
                .find(|a| a.rule == rule && (a.line == line || a.covers == line));
            if let Some(a) = allow {
                a.used = true;
                suppressed += 1;
            } else {
                out.push(Violation::new(rule, rel_path, line, message));
            }
        }
        for (line, message) in self.syntax_errors {
            out.push(Violation::new(Rule::AllowSyntax, rel_path, line, message));
        }
        suppressed
    }
}

/// Names collected from one source file for the workspace-level R4
/// cross-checks, plus the file's suppression count.
pub struct ScanOutput {
    /// Suppressed violation count.
    pub suppressed: usize,
    /// Metric-name literals at obs call sites, with their lines.
    pub metrics: Vec<(String, usize)>,
    /// Span-name literals at tracer call sites, with their lines.
    pub spans: Vec<(String, usize)>,
}

/// Run every rule applicable to `file` given its crate's profile.
pub fn scan_file(
    spec: &CrateSpec,
    file: &SourceFile,
    masked: &Masked,
    out: &mut Vec<Violation>,
) -> ScanOutput {
    let mut scan = FileScan::new(masked);
    let lib_rules = spec.kind == CrateKind::Library && !file.is_bin;
    if lib_rules {
        scan.rule_panic();
        scan.rule_error_hygiene();
    }
    if spec.hot_path && !file.is_bin {
        scan.rule_determinism();
        scan.rule_shared_state();
    }
    scan.rule_alloc_hygiene();
    scan.rule_rng_discipline();
    scan.rule_float_order();
    scan.rule_unsafe_tokens();
    if file.is_lib_root {
        scan.rule_forbid_attr(&file.rel_path);
    }
    let metrics = scan.rule_obs_collect();
    let spans = scan.rule_span_collect();
    ScanOutput {
        suppressed: scan.finish(&file.rel_path, out),
        metrics,
        spans,
    }
}

/// The heading that separates the metric table from the span table in
/// the obs README. Metric rows live above it, span rows below.
pub const SPAN_TABLE_HEADING: &str = "## Span table";

/// Parse backticked names from `|`-delimited table rows: the first
/// cell of each row, backtick spans only, label blocks stripped.
/// Returns `name -> line`, with lines offset by `first_line` (1-based).
fn table_names(section: &str, first_line: usize) -> BTreeMap<String, usize> {
    let mut names = BTreeMap::new();
    for (idx, line) in section.lines().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            continue;
        }
        let Some(cell) = trimmed.split('|').nth(1) else {
            continue;
        };
        let mut rest = cell;
        while let Some(open) = rest.find('`') {
            let Some(close_rel) = rest[open + 1..].find('`') else {
                break;
            };
            let span = &rest[open + 1..open + 1 + close_rel];
            let name = span.split('{').next().unwrap_or(span).trim();
            if !name.is_empty() {
                names.entry(name.to_string()).or_insert(first_line + idx);
            }
            rest = &rest[open + 1 + close_rel + 1..];
        }
    }
    names
}

/// Split the obs README at [`SPAN_TABLE_HEADING`]: everything before
/// it holds the metric table, everything after it the span table (an
/// absent heading means no span table).
fn split_readme(readme: &str) -> (&str, &str, usize) {
    match readme.find(SPAN_TABLE_HEADING) {
        Some(pos) => {
            let line = readme[..pos].lines().count() + 1;
            (&readme[..pos], &readme[pos..], line)
        }
        None => (readme, "", 1),
    }
}

/// Parse the metric table of the obs README (rows above the span-table
/// heading). Returns `name -> line`.
pub fn readme_metric_names(readme: &str) -> BTreeMap<String, usize> {
    let (metrics, _, _) = split_readme(readme);
    table_names(metrics, 1)
}

/// Parse the span table of the obs README (rows below the span-table
/// heading). Returns `name -> line`, empty when there is no heading.
pub fn readme_span_names(readme: &str) -> BTreeMap<String, usize> {
    let (_, spans, first_line) = split_readme(readme);
    table_names(spans, first_line)
}

/// `[a-z0-9_.]+`, per the obs naming contract.
pub fn valid_metric_charset(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_' || c == b'.')
}

/// All occurrences of `pat` in `code`, optionally requiring a
/// non-identifier byte immediately before, and always requiring a
/// non-identifier byte immediately after the pattern's last
/// identifier character (so `HashMap` does not match `HashMapShim`).
fn find_all(code: &str, pat: &str, boundary_before: bool) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut start = 0usize;
    while let Some(rel) = code[start..].find(pat) {
        let off = start + rel;
        start = off + 1;
        if boundary_before && off > 0 && is_ident_byte(bytes[off - 1]) {
            continue;
        }
        let last = pat.as_bytes()[pat.len() - 1];
        if is_ident_byte(last) {
            let after = off + pat.len();
            if after < bytes.len() && is_ident_byte(bytes[after]) {
                continue;
            }
        }
        out.push(off);
    }
    out
}

/// The whitespace-separated word ending just before `off`, if any.
fn prev_word(code: &str, off: usize) -> Option<&str> {
    let head = code[..off].trim_end();
    let start = head
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|i| i + 1)
        .unwrap_or(0);
    let w = &head[start..];
    (!w.is_empty()).then_some(w)
}

/// Index of the `)` matching the `(` at `open`, or `None` if the file
/// ends first. Masked text: parens in strings/chars are blanked.
fn match_paren(code: &str, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, b) in code.as_bytes()[open..].iter().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + k);
                }
            }
            _ => {}
        }
    }
    None
}

/// The signature starting at a `pub fn ` match: text up to the first
/// `{` or `;` at zero bracket depth, or `None` if the file ends first.
fn signature_at(code: &str, off: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut depth = 0i64;
    for (k, &b) in bytes[off..].iter().enumerate() {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'<' if k > 0 && bytes[off + k - 1] != b'<' => depth += 1,
            b'>' if k > 0 && bytes[off + k - 1] != b'-' && bytes[off + k - 1] != b'=' => {
                depth -= 1;
            }
            b'{' | b';' if depth <= 0 => return Some(code[off..off + k].to_string()),
            _ => {}
        }
    }
    None
}

/// The return type of a signature: text after the first `->` that sits
/// at zero parenthesis depth (so `fn(u8) -> u8` parameters don't
/// confuse it).
fn return_type(sig: &str) -> Option<String> {
    let bytes = sig.as_bytes();
    let mut depth = 0i64;
    let mut k = 0usize;
    while k + 1 < bytes.len() {
        match bytes[k] {
            b'(' => depth += 1,
            b')' => depth -= 1,
            b'-' if depth == 0 && bytes[k + 1] == b'>' => {
                return Some(sig[k + 2..].trim().to_string());
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// If `ret` is a two-argument `Result` whose error type is stringly
/// (`String` or a `Box<dyn ... Error ...>` trait object), return the
/// offending error type.
fn stringly_error(ret: &str) -> Option<String> {
    let pos = find_all(ret, "Result", true)
        .into_iter()
        .find(|&p| ret[p + "Result".len()..].trim_start().starts_with('<'))?;
    let after = &ret[pos + "Result".len()..];
    let open = after.find('<')?;
    let body = &after[open + 1..];
    // Split the generic args at top-level commas.
    let mut depth = 0i64;
    let mut args = Vec::new();
    let mut cur = String::new();
    let bytes = body.as_bytes();
    let mut k = 0usize;
    while k < bytes.len() {
        let b = bytes[k];
        match b {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' if k > 0 && bytes[k - 1] == b'-' => {}
            b'>' | b')' | b']' => {
                if depth == 0 && b == b'>' {
                    break; // close of the Result's generics
                }
                depth -= 1;
            }
            b',' if depth == 0 => {
                args.push(cur.trim().to_string());
                cur.clear();
                k += 1;
                continue;
            }
            _ => {}
        }
        cur.push(b as char);
        k += 1;
    }
    if !cur.trim().is_empty() {
        args.push(cur.trim().to_string());
    }
    if args.len() < 2 {
        return None; // an alias like `serde_json::Result<T>` — typed already
    }
    let err = collapse_ws(&args[1]);
    let is_string = matches!(
        err.as_str(),
        "String" | "std::string::String" | "alloc::string::String"
    );
    let is_boxed_err = err.starts_with("Box<dyn") && err.contains("Error");
    (is_string || is_boxed_err).then_some(err)
}

fn collapse_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::mask;

    fn scan_candidates(src: &str, f: impl Fn(&mut FileScan<'_>)) -> Vec<(Rule, usize, String)> {
        let m = mask(src);
        let mut s = FileScan::new(&m);
        f(&mut s);
        s.candidates.clone()
    }

    #[test]
    fn panic_rule_fires_outside_tests_only() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn b() { y.unwrap(); } }\n";
        let v = scan_candidates(src, |s| s.rule_panic());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1, 1);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn a() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }";
        assert!(scan_candidates(src, |s| s.rule_panic()).is_empty());
    }

    #[test]
    fn expect_err_and_should_panic_do_not_fire() {
        let src = "fn a() { r.expect_err(\"no\"); } // #[should_panic] mentioned\n";
        assert!(scan_candidates(src, |s| s.rule_panic()).is_empty());
    }

    #[test]
    fn determinism_rule_catches_hashmap_but_not_btreemap() {
        let src = "use std::collections::{BTreeMap, HashMap};\nfn f(m: &HashMap<u8, u8>) {}\n";
        let v = scan_candidates(src, |s| s.rule_determinism());
        assert_eq!(v.len(), 2);
        let src2 = "use std::collections::BTreeMap;\nstruct MyHashMapLike;";
        assert!(scan_candidates(src2, |s| s.rule_determinism()).is_empty());
    }

    #[test]
    fn alloc_hygiene_fires_only_inside_zero_alloc_bodies() {
        let src = "\
// lint:zero_alloc
fn hot(out: &mut Vec<u8>) {
    out.push(1);
    let v = Vec::new();
}
fn cold() -> Vec<u8> {
    let mut v = Vec::new();
    v.push(1);
    v
}
";
        let v = scan_candidates(src, |s| s.rule_alloc_hygiene());
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].1, 3);
        assert_eq!(v[1].1, 4);
        assert!(v[0].2.contains("`hot`"));
    }

    #[test]
    fn alloc_hygiene_permits_with_capacity_and_test_fns() {
        let src = "\
// lint:zero_alloc
fn hot(buf: &mut [f64]) { buf[0] = 1.0; }
#[cfg(test)]
mod tests {
    // lint:zero_alloc
    fn t() { let mut v = Vec::new(); v.push(1); }
}
";
        assert!(scan_candidates(src, |s| s.rule_alloc_hygiene()).is_empty());
        let src2 = "// lint:zero_alloc\nfn pre() { let v = Vec::with_capacity(8); }\n";
        assert!(scan_candidates(src2, |s| s.rule_alloc_hygiene()).is_empty());
    }

    #[test]
    fn rng_discipline_catches_ambient_and_cloned_rngs() {
        let src = "\
fn a() { let mut r = rand::thread_rng(); }
fn b() { let r = SmallRng::from_entropy(); }
fn c(rng: &SmallRng) { let fork = rng.clone(); }
fn d(data: &[u8]) { let copy = data.clone(); }
fn e() { let r = SmallRng::seed_from_u64(7); }
";
        let v = scan_candidates(src, |s| s.rule_rng_discipline());
        assert_eq!(v.len(), 3, "{v:?}");
        assert_eq!(v[0].1, 1);
        assert_eq!(v[1].1, 2);
        assert_eq!(v[2].1, 3);
        assert!(v[2].2.contains("rng.clone()"));
    }

    #[test]
    fn float_order_flags_each_site_exactly_once() {
        let src = "\
fn a(xs: &mut [f64]) {
    xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
    xs.sort_by(|p, q| p.partial_cmp(q).unwrap_or(std::cmp::Ordering::Equal));
    xs.sort_by(f64::total_cmp);
    let m = xs.iter().cloned().fold(f64::NAN, f64::max);
}
";
        let v = scan_candidates(src, |s| s.rule_float_order());
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].1, 2); // the unwrap form, flagged at partial_cmp
        assert_eq!(v[1].1, 3); // the unwrap_or form, flagged at sort_by
    }

    #[test]
    fn float_order_skips_partial_ord_impls() {
        let src = "\
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
";
        assert!(scan_candidates(src, |s| s.rule_float_order()).is_empty());
    }

    #[test]
    fn shared_state_flags_interior_mutability_outside_tests() {
        let src = "\
use std::rc::Rc;
fn a() { let c = std::cell::RefCell::new(1); }
#[cfg(test)]
mod tests {
    fn t() { let c = std::cell::Cell::new(1); }
}
";
        let v = scan_candidates(src, |s| s.rule_shared_state());
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].1, 1);
        assert_eq!(v[1].1, 2);
    }

    #[test]
    fn allow_suppresses_same_and_next_line() {
        let src = "\
fn a() {
    // lint:allow(panic): documented invariant, validated upstream
    x.unwrap();
    y.expect(\"boom\"); // lint:allow(panic): second documented invariant
    z.unwrap();
}
";
        let m = mask(src);
        let mut s = FileScan::new(&m);
        s.rule_panic();
        let mut out = Vec::new();
        let suppressed = s.finish("f.rs", &mut out);
        assert_eq!(suppressed, 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 5);
    }

    #[test]
    fn malformed_allow_is_reported() {
        let src = "// lint:allow(panic) no colon reason\nfn a() {}\n";
        let m = mask(src);
        let s = FileScan::new(&m);
        let mut out = Vec::new();
        s.finish("f.rs", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "R0");
    }

    #[test]
    fn error_hygiene_flags_string_and_boxed_errors_only() {
        let src = "\
pub fn bad1(x: u8) -> Result<u8, String> { Ok(x) }
pub fn bad2() -> Result<(), Box<dyn std::error::Error>> { Ok(()) }
pub fn good(x: u8) -> Result<u8, MyError> { Ok(x) }
pub fn alias() -> serde_json::Result<String> { todo()
}
pub fn strings() -> Result<Vec<String>, MyError> { Ok(vec![]) }
";
        let v = scan_candidates(src, |s| s.rule_error_hygiene());
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].1, 1);
        assert_eq!(v[1].1, 2);
    }

    #[test]
    fn readme_table_parse_strips_labels_and_splits_spans() {
        let md = "\
| Metric | Kind | Meaning |
|---|---|---|
| `a.count` | counter | things |
| `dev.admits{device=\"k\"}` / `dev.drops{device=\"k\"}` | counter | per-device |
";
        let names = readme_metric_names(md);
        assert_eq!(
            names.keys().cloned().collect::<Vec<_>>(),
            vec!["a.count", "dev.admits", "dev.drops"]
        );
        assert_eq!(names["a.count"], 3);
    }

    #[test]
    fn obs_collect_reads_literal_names_and_charset() {
        let src = "\
fn f(r: &Registry) {
    r.counter(\"ok.name\").inc();
    r.gauge(\"Bad-Name\").set(1.0);
    r.counter(&labeled(\"dev.drops\", &[(\"device\", \"0\")])).inc();
    let dynamic = name();
    r.counter(&dynamic).inc();
}
";
        let m = mask(src);
        let mut s = FileScan::new(&m);
        let used = s.rule_obs_collect();
        let names: Vec<_> = used.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"ok.name"));
        assert!(names.contains(&"dev.drops"));
        assert_eq!(s.candidates.len(), 1); // Bad-Name charset
        assert!(s.candidates[0].2.contains("Bad-Name"));
    }

    #[test]
    fn span_collect_reads_literal_names_and_charset() {
        let src = "\
fn f(t: &Tracer, obs: &Obs) {
    let _a = t.span(\"qsim.run\");
    let _b = obs.tracer.span(\"Bad Span\");
    let _c = t.span(name); // dynamic: skipped
}
";
        let m = mask(src);
        let mut s = FileScan::new(&m);
        let used = s.rule_span_collect();
        let names: Vec<_> = used.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["qsim.run"]);
        assert_eq!(s.candidates.len(), 1);
        assert!(s.candidates[0].2.contains("Bad Span"));
    }

    #[test]
    fn readme_split_separates_metric_and_span_tables() {
        let md = "\
| Metric | Kind |
|---|---|
| `a.count` | counter |

## Span table

| Span | Where |
|---|---|
| `qsim.run` | simulator |
| `sa.trial` | search |
";
        let metrics = readme_metric_names(md);
        let spans = readme_span_names(md);
        assert_eq!(metrics.keys().cloned().collect::<Vec<_>>(), vec!["a.count"]);
        assert_eq!(
            spans.keys().cloned().collect::<Vec<_>>(),
            vec!["qsim.run", "sa.trial"]
        );
        // Span names must not leak into the metric check or vice versa.
        assert!(!metrics.contains_key("qsim.run"));
        assert!(!spans.contains_key("a.count"));
        assert_eq!(spans["qsim.run"], 9);
    }

    /// Every span name the tentpole wires through the stack must be
    /// charset-clean and documented in the workspace README span table.
    #[test]
    fn canonical_span_names_are_in_the_readme_span_table() {
        let readme =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../obs/README.md"))
                .expect("workspace obs README");
        let documented = readme_span_names(&readme);
        for name in [
            "qsim.run",
            "qsim.replication",
            "neural.forward",
            "neural.backward",
            "neural.matmul",
            "train.epoch",
            "train.step",
            "sa.trial",
            "sa.iteration",
            "sa.batch_eval",
            "datagen.sample",
            "datagen.shard",
        ] {
            assert!(valid_metric_charset(name), "{name} charset");
            assert!(
                documented.contains_key(name),
                "{name} missing from crates/obs/README.md span table"
            );
        }
    }

    /// The PR-5 hot-path metrics must stay in the canonical schema:
    /// collected from code by R4, charset-clean, and documented in the
    /// workspace obs README.
    #[test]
    fn hotpath_bench_metrics_are_in_the_canonical_schema() {
        let src = "\
fn f(r: &Registry, obs: &Obs) {
    r.gauge(\"sim.events_per_sec\").set(1.0);
    r.gauge(\"neural.matmul_ns\").set(2.0);
    obs.registry.counter(\"sa.batch_evals\").inc();
}
";
        let m = mask(src);
        let mut s = FileScan::new(&m);
        let used = s.rule_obs_collect();
        let names: Vec<_> = used.iter().map(|(n, _)| n.as_str()).collect();
        for name in ["sim.events_per_sec", "neural.matmul_ns", "sa.batch_evals"] {
            assert!(names.contains(&name), "{name} not collected");
            assert!(valid_metric_charset(name), "{name} charset");
        }
        assert!(s.candidates.is_empty(), "{:?}", s.candidates);

        let readme =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../obs/README.md"))
                .expect("workspace obs README");
        let documented = readme_metric_names(&readme);
        for name in ["sim.events_per_sec", "neural.matmul_ns", "sa.batch_evals"] {
            assert!(
                documented.contains_key(name),
                "{name} missing from crates/obs/README.md metric table"
            );
        }
    }
}
