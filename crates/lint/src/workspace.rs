//! Workspace layout: which crates exist, how each is classified, and
//! which files the rules apply to.
//!
//! Classification drives rule applicability:
//!
//! * **Library** crates promise panic-freedom (R1) and typed errors
//!   (R5) in their non-test `src/` code.
//! * **Harness** crates (the bench harness and the workspace-root
//!   suite binary glue) are exempt from R1/R5 — a figure-reproduction
//!   binary failing fast on a corrupt cache file is fine — but still
//!   subject to the unsafe ban (R3) and obs-schema checks (R4).
//! * **Hot-path** crates additionally promise determinism (R2):
//!   given a seed, no wall clock, ambient RNG or unordered-map
//!   iteration may influence results.
//!
//! Vendored shim crates under `vendor/` are out of scope: they mimic
//! external APIs and are audited separately (see `vendor/README.md`).

use crate::error::LintError;
use std::path::{Path, PathBuf};

/// How a crate's non-test library code is held to the rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKind {
    /// Full rule set: R1, R3, R4, R5 (and R2 if hot-path).
    Library,
    /// R3 + R4 only (fail-fast binaries and experiment harnesses).
    Harness,
}

/// One first-party crate to scan.
#[derive(Debug, Clone)]
pub struct CrateSpec {
    /// Package name as in its `Cargo.toml`.
    pub name: String,
    /// Crate directory relative to the workspace root (`"."` for the
    /// workspace-root package).
    pub rel_dir: PathBuf,
    /// Rule profile.
    pub kind: CrateKind,
    /// Whether R2 (determinism) applies.
    pub hot_path: bool,
}

/// The workspace to lint.
#[derive(Debug, Clone)]
pub struct WorkspaceSpec {
    /// Absolute (or cwd-relative) workspace root.
    pub root: PathBuf,
    /// Crates to scan.
    pub crates: Vec<CrateSpec>,
    /// Path (relative to `root`) of the obs README holding the
    /// canonical metric table, if R4 should run.
    pub obs_readme: Option<PathBuf>,
}

impl CrateSpec {
    fn new(name: &str, rel_dir: &str, kind: CrateKind, hot_path: bool) -> Self {
        CrateSpec {
            name: name.to_string(),
            rel_dir: PathBuf::from(rel_dir),
            kind,
            hot_path,
        }
    }
}

impl WorkspaceSpec {
    /// The ChainNet workspace layout, hard-coded. The six library
    /// crates carry the paper's correctness claims; `qsim`, `neural`,
    /// `placement` and `core` are the seed-reproducibility hot paths
    /// (label generation, training, search — Tables V/VI).
    pub fn chainnet(root: impl Into<PathBuf>) -> Self {
        use CrateKind::{Harness, Library};
        WorkspaceSpec {
            root: root.into(),
            crates: vec![
                CrateSpec::new("chainnet-obs", "crates/obs", Library, false),
                CrateSpec::new("chainnet-ckpt", "crates/ckpt", Library, false),
                CrateSpec::new("chainnet-qsim", "crates/qsim", Library, true),
                CrateSpec::new("chainnet-neural", "crates/neural", Library, true),
                CrateSpec::new("chainnet", "crates/core", Library, true),
                CrateSpec::new("chainnet-placement", "crates/placement", Library, true),
                CrateSpec::new("chainnet-datagen", "crates/datagen", Library, false),
                CrateSpec::new("chainnet-serve", "crates/serve", Library, false),
                CrateSpec::new("chainnet-lint", "crates/lint", Library, false),
                CrateSpec::new("chainnet-bench", "crates/bench", Harness, false),
                CrateSpec::new("chainnet-suite", ".", Harness, false),
            ],
            obs_readme: Some(PathBuf::from("crates/obs/README.md")),
        }
    }

    /// Discover a fixture workspace: every directory under
    /// `<root>/crates/` with a `src/` is treated as a hot-path
    /// library crate (the strictest profile), and
    /// `<root>/crates/obs/README.md` is used for R4 when present.
    /// Used by the violation-fixture integration tests and the
    /// `--fixture-root` CLI mode.
    pub fn discover(root: impl Into<PathBuf>) -> Result<Self, LintError> {
        let root = root.into();
        let crates_dir = root.join("crates");
        let mut crates = Vec::new();
        let entries = std::fs::read_dir(&crates_dir)
            .map_err(|e| LintError::io(&crates_dir, e))?
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| LintError::io(&crates_dir, e))?;
        let mut names: Vec<String> = entries
            .iter()
            .filter(|e| e.path().join("src").is_dir())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        for name in names {
            crates.push(CrateSpec::new(
                &name,
                &format!("crates/{name}"),
                CrateKind::Library,
                true,
            ));
        }
        if crates.is_empty() {
            return Err(LintError::BadWorkspace(format!(
                "no crates with a src/ directory under {}",
                crates_dir.display()
            )));
        }
        let obs_readme = root.join("crates/obs/README.md");
        Ok(WorkspaceSpec {
            root,
            crates,
            obs_readme: obs_readme
                .is_file()
                .then(|| PathBuf::from("crates/obs/README.md")),
        })
    }
}

/// A source file queued for scanning.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root (display form, `/`-separated).
    pub rel_path: String,
    /// Absolute path.
    pub abs_path: PathBuf,
    /// Whether this file is a binary entry point (`src/main.rs`,
    /// `src/bin/**`) — exempt from R1/R5 like harness code.
    pub is_bin: bool,
    /// Whether this is the crate's library root (`src/lib.rs`),
    /// which must carry `#![forbid(unsafe_code)]` (R3).
    pub is_lib_root: bool,
}

/// Collect the `.rs` files of one crate's `src/` tree, sorted by
/// relative path for stable reports.
pub fn crate_sources(root: &Path, spec: &CrateSpec) -> Result<Vec<SourceFile>, LintError> {
    let src_dir = root.join(&spec.rel_dir).join("src");
    let mut files = Vec::new();
    walk(&src_dir, &mut files)?;
    files.sort();
    let sources = files
        .into_iter()
        .map(|abs| {
            let rel_to_src = abs
                .strip_prefix(&src_dir)
                .unwrap_or(&abs)
                .to_string_lossy()
                .replace('\\', "/");
            let rel_dir = spec.rel_dir.to_string_lossy().replace('\\', "/");
            let rel_path = if rel_dir == "." {
                format!("src/{rel_to_src}")
            } else {
                format!("{rel_dir}/src/{rel_to_src}")
            };
            SourceFile {
                is_bin: rel_to_src == "main.rs" || rel_to_src.starts_with("bin/"),
                is_lib_root: rel_to_src == "lib.rs",
                rel_path,
                abs_path: abs,
            }
        })
        .collect();
    Ok(sources)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir).map_err(|e| LintError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::io(dir, e))?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
