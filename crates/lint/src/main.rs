//! CLI for `chainnet-lint`.
//!
//! ```console
//! $ cargo run -p chainnet-lint -- --workspace
//! $ cargo run -p chainnet-lint -- --workspace --root /path/to/repo --json report.json
//! $ cargo run -p chainnet-lint -- --fixture-root crates/lint/tests/fixtures/violations
//! $ cargo run -p chainnet-lint -- --sanitize all --cli target/sanitize/chainnet-cli \
//!       --out-dir target/sanitize-artifacts
//! ```
//!
//! Exit codes: `0` clean, `1` unsuppressed violations (or sanitizer
//! divergence), `2` usage or I/O error.

use chainnet_lint::{run, sanitize, WorkspaceSpec};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    workspace: bool,
    fixture_root: Option<PathBuf>,
    root: PathBuf,
    json_out: Option<PathBuf>,
    sanitize: Option<Vec<String>>,
    cli: Option<PathBuf>,
    out_dir: PathBuf,
}

const USAGE: &str = "\
usage: chainnet-lint (--workspace | --fixture-root <dir> | --sanitize <stage>) [options]

modes:
  --workspace           lint the ChainNet workspace layout (library
                        crates + bench/suite harnesses, obs README schema)
  --fixture-root <dir>  lint an arbitrary crates/ tree with every crate
                        held to the strictest (library + hot-path) profile
  --sanitize <stage>    runtime determinism sanitizer: run a CLI stage
                        twice with the same seed and diff the artifacts;
                        <stage> is simulate, train, optimize, or all

options:
  --root <dir>          workspace root for --workspace (default: .)
  --json <file>         also write the machine-readable JSON report
  --cli <path>          chainnet-cli binary for --sanitize (required;
                        build it with `--profile sanitize` so overflow
                        checks are live)
  --out-dir <dir>       sanitizer working/artifact directory
                        (default: target/sanitize-artifacts)
  --help                print this help
";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        fixture_root: None,
        root: PathBuf::from("."),
        json_out: None,
        sanitize: None,
        cli: None,
        out_dir: PathBuf::from("target/sanitize-artifacts"),
    };
    let mut i = 0usize;
    let value = |i: &mut usize, flag: &str| -> Result<PathBuf, String> {
        *i += 1;
        args.get(*i)
            .map(PathBuf::from)
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => opts.workspace = true,
            "--fixture-root" => opts.fixture_root = Some(value(&mut i, "--fixture-root")?),
            "--root" => opts.root = value(&mut i, "--root")?,
            "--json" => opts.json_out = Some(value(&mut i, "--json")?),
            "--sanitize" => {
                let stage = value(&mut i, "--sanitize")?.to_string_lossy().into_owned();
                let stages = if stage == "all" {
                    sanitize::STAGES.iter().map(|s| s.to_string()).collect()
                } else if sanitize::STAGES.contains(&stage.as_str()) {
                    vec![stage]
                } else {
                    return Err(format!(
                        "--sanitize expects one of simulate, train, optimize, all; got `{stage}`"
                    ));
                };
                opts.sanitize = Some(stages);
            }
            "--cli" => opts.cli = Some(value(&mut i, "--cli")?),
            "--out-dir" => opts.out_dir = value(&mut i, "--out-dir")?,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    let modes = usize::from(opts.workspace)
        + usize::from(opts.fixture_root.is_some())
        + usize::from(opts.sanitize.is_some());
    if modes != 1 {
        return Err(
            "exactly one of --workspace, --fixture-root or --sanitize is required".to_string(),
        );
    }
    if opts.sanitize.is_some() && opts.cli.is_none() {
        return Err("--sanitize requires --cli <path-to-chainnet-cli>".to_string());
    }
    Ok(opts)
}

fn run_sanitize(stages: &[String], opts: &Options) -> ExitCode {
    let cli = opts.cli.as_deref().expect("checked in parse_args");
    let reports = match sanitize::run(cli, stages, &opts.out_dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chainnet-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut clean = true;
    for stage in &reports {
        for check in &stage.checks {
            let verdict = if check.identical { "ok" } else { "DIVERGED" };
            eprintln!(
                "sanitize {}: {} [{}] {}{}",
                stage.stage,
                check.artifact,
                check.mode,
                verdict,
                if check.detail.is_empty() {
                    String::new()
                } else {
                    format!(" — {}", check.detail)
                }
            );
        }
        clean &= stage.identical;
    }
    eprintln!(
        "chainnet-lint --sanitize: {} stage(s), artifacts under {}",
        reports.len(),
        opts.out_dir.display()
    );
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("chainnet-lint: {msg}");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(stages) = &opts.sanitize {
        return run_sanitize(stages, &opts);
    }

    let spec = if let Some(fixture_root) = &opts.fixture_root {
        match WorkspaceSpec::discover(fixture_root) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("chainnet-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        if !opts.root.join("Cargo.toml").is_file() {
            eprintln!(
                "chainnet-lint: {} does not contain a Cargo.toml (use --root)",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
        WorkspaceSpec::chainnet(&opts.root)
    };

    let report = match run(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chainnet-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.json_out {
        let json = match report.to_json() {
            Ok(j) => j,
            Err(e) => {
                eprintln!("chainnet-lint: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("chainnet-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    eprint!("{}", report.render_human());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
