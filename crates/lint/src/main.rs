//! CLI for `chainnet-lint`.
//!
//! ```console
//! $ cargo run -p chainnet-lint -- --workspace
//! $ cargo run -p chainnet-lint -- --workspace --root /path/to/repo --json report.json
//! $ cargo run -p chainnet-lint -- --fixture-root crates/lint/tests/fixtures/violations
//! ```
//!
//! Exit codes: `0` clean, `1` unsuppressed violations, `2` usage or
//! I/O error.

use chainnet_lint::{run, WorkspaceSpec};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    workspace: bool,
    fixture_root: Option<PathBuf>,
    root: PathBuf,
    json_out: Option<PathBuf>,
}

const USAGE: &str = "\
usage: chainnet-lint (--workspace | --fixture-root <dir>) [options]

modes:
  --workspace           lint the ChainNet workspace layout (six library
                        crates + bench/suite harnesses, obs README schema)
  --fixture-root <dir>  lint an arbitrary crates/ tree with every crate
                        held to the strictest (library + hot-path) profile

options:
  --root <dir>          workspace root for --workspace (default: .)
  --json <file>         also write the machine-readable JSON report
  --help                print this help
";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        fixture_root: None,
        root: PathBuf::from("."),
        json_out: None,
    };
    let mut i = 0usize;
    let value = |i: &mut usize, flag: &str| -> Result<PathBuf, String> {
        *i += 1;
        args.get(*i)
            .map(PathBuf::from)
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => opts.workspace = true,
            "--fixture-root" => opts.fixture_root = Some(value(&mut i, "--fixture-root")?),
            "--root" => opts.root = value(&mut i, "--root")?,
            "--json" => opts.json_out = Some(value(&mut i, "--json")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    if opts.workspace == opts.fixture_root.is_some() {
        return Err("exactly one of --workspace or --fixture-root is required".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("chainnet-lint: {msg}");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let spec = if let Some(fixture_root) = &opts.fixture_root {
        match WorkspaceSpec::discover(fixture_root) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("chainnet-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        if !opts.root.join("Cargo.toml").is_file() {
            eprintln!(
                "chainnet-lint: {} does not contain a Cargo.toml (use --root)",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
        WorkspaceSpec::chainnet(&opts.root)
    };

    let report = match run(&spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chainnet-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.json_out {
        let json = match report.to_json() {
            Ok(j) => j,
            Err(e) => {
                eprintln!("chainnet-lint: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("chainnet-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    eprint!("{}", report.render_human());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
