//! Typed errors for the lint library (the lint holds itself to R5).

use std::fmt;
use std::path::Path;

/// Everything that can go wrong while scanning a workspace.
#[derive(Debug)]
pub enum LintError {
    /// Filesystem error while reading sources or the metric README.
    Io {
        /// The path being accessed.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The workspace root does not look like a lintable workspace.
    BadWorkspace(String),
    /// The JSON report could not be serialised.
    Report(serde_json::Error),
    /// The determinism sanitizer could not drive the CLI or parse an
    /// artifact (a *divergence* is not an error — it is a finding).
    Sanitize(String),
}

impl LintError {
    pub(crate) fn io(path: &Path, source: std::io::Error) -> Self {
        LintError::Io {
            path: path.display().to_string(),
            source,
        }
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, source } => write!(f, "io error at {path}: {source}"),
            LintError::BadWorkspace(msg) => write!(f, "bad workspace: {msg}"),
            LintError::Report(e) => write!(f, "report serialisation failed: {e}"),
            LintError::Sanitize(msg) => write!(f, "sanitize: {msg}"),
        }
    }
}

impl std::error::Error for LintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LintError::Io { source, .. } => Some(source),
            LintError::Report(e) => Some(e),
            LintError::BadWorkspace(_) | LintError::Sanitize(_) => None,
        }
    }
}
