//! Runtime determinism sanitizer (`chainnet-lint --sanitize <stage>`).
//!
//! The static rules (R2, R7, R8) ban the *sources* of nondeterminism
//! they can see; this module checks the *outcome*: it runs a CLI stage
//! twice with identical arguments and seed and diffs the artifacts.
//! CI builds the CLI under `[profile.sanitize]` (release +
//! `overflow-checks` + `debug-assertions`), so the gate simultaneously
//! proves two-run bit-identity and exercises the arithmetic that
//! release builds skip checking.
//!
//! Artifact comparison has two modes:
//!
//! * **exact** — primary results (the simulate result JSON, the
//!   trained `model.json`, the optimized `placement.json`) must match
//!   byte for byte;
//! * **normalized** — telemetry artifacts carry wall-clock values that
//!   legitimately differ between runs. Span traces are compared with
//!   `start_ns`/`end_ns` zeroed (ids, names, parentage and nesting
//!   must match); metrics snapshots are compared with wall-time
//!   entries (`*_seconds`, `*_ns`, `*per_sec`, `*wall*`) removed —
//!   every deterministic counter, gauge and histogram must match.
//!
//! On mismatch both runs' normalized artifacts stay on disk under the
//! output directory (CI uploads them), `sanitize_report.json` records
//! per-check verdicts, and the CLI exits non-zero.

use crate::error::LintError;
use serde::{Serialize, Value};
use std::path::{Path, PathBuf};
use std::process::Command;

/// The stages the sanitizer knows how to drive.
pub const STAGES: &[&str] = &["simulate", "train", "optimize"];

/// Verdict for one artifact comparison.
#[derive(Debug, Clone, Serialize)]
pub struct CheckReport {
    /// Artifact name (e.g. `stdout`, `model.json`, `trace.jsonl`).
    pub artifact: String,
    /// Comparison mode: `exact`, `normalized-trace`,
    /// `normalized-metrics` or `normalized-stdout`.
    pub mode: String,
    /// Whether the two runs matched under that mode.
    pub identical: bool,
    /// First point of divergence (empty when identical).
    pub detail: String,
}

/// Verdict for one stage (two seeded runs + all artifact checks).
#[derive(Debug, Clone, Serialize)]
pub struct StageReport {
    /// Stage name.
    pub stage: String,
    /// Whether every check passed.
    pub identical: bool,
    /// Per-artifact results.
    pub checks: Vec<CheckReport>,
}

/// Run the sanitizer for `stages` using the CLI binary at `cli`,
/// working under `out_dir` (created if absent). Returns one report per
/// stage; a stage whose *runs* fail (non-zero exit) is an `Err`, a
/// stage whose runs *diverge* is reported with `identical: false`.
///
/// # Errors
///
/// [`LintError::Sanitize`] when a CLI invocation fails or an artifact
/// cannot be read; [`LintError::Io`] on filesystem trouble.
pub fn run(cli: &Path, stages: &[String], out_dir: &Path) -> Result<Vec<StageReport>, LintError> {
    std::fs::create_dir_all(out_dir).map_err(|e| LintError::io(out_dir, e))?;
    let mut reports = Vec::new();
    for stage in stages {
        let dir = out_dir.join(stage.as_str());
        std::fs::create_dir_all(&dir).map_err(|e| LintError::io(&dir, e))?;
        let report = match stage.as_str() {
            "simulate" => sanitize_simulate(cli, &dir)?,
            "train" => sanitize_train(cli, &dir)?,
            "optimize" => sanitize_optimize(cli, &dir)?,
            other => {
                return Err(LintError::Sanitize(format!(
                    "unknown sanitize stage `{other}` (expected one of {STAGES:?})"
                )))
            }
        };
        reports.push(report);
    }
    let summary = serde_json::to_string_pretty(&reports).map_err(LintError::Report)?;
    let path = out_dir.join("sanitize_report.json");
    std::fs::write(&path, summary).map_err(|e| LintError::io(&path, e))?;
    Ok(reports)
}

/// Smoke seed shared by every stage: arbitrary but fixed, so failures
/// reproduce locally with the command lines from the report.
const SEED: &str = "11";

fn sanitize_simulate(cli: &Path, dir: &Path) -> Result<StageReport, LintError> {
    let problem = dir.join("problem.json");
    run_cli(cli, &["case-study", "--out", path_str(&problem)?])?;
    let system = dir.join("system.json");
    write_system_from_problem(&problem, &system)?;
    let mut stdouts = Vec::new();
    for run in ["run_a", "run_b"] {
        let rd = run_dir(dir, run)?;
        let stdout = run_cli(
            cli,
            &[
                "simulate",
                "--system",
                path_str(&system)?,
                "--horizon",
                "600",
                "--seed",
                SEED,
                "--trace",
                "64",
                "--metrics-out",
                path_str(&rd.join("metrics.json"))?,
                "--trace-out",
                path_str(&rd.join("trace.jsonl"))?,
            ],
        )?;
        let out = rd.join("stdout.json");
        std::fs::write(&out, &stdout).map_err(|e| LintError::io(&out, e))?;
        stdouts.push(stdout);
    }
    let mut checks = vec![check_exact("stdout.json", &stdouts[0], &stdouts[1])];
    checks.push(check_trace(dir)?);
    checks.push(check_metrics(dir)?);
    Ok(stage_report("simulate", checks))
}

fn sanitize_train(cli: &Path, dir: &Path) -> Result<StageReport, LintError> {
    let dataset = dir.join("dataset.json");
    run_cli(
        cli,
        &[
            "gen-dataset",
            "--out",
            path_str(&dataset)?,
            "--samples",
            "8",
            "--horizon",
            "400",
            "--seed",
            SEED,
        ],
    )?;
    let mut stdouts = Vec::new();
    let mut models = Vec::new();
    for run in ["run_a", "run_b"] {
        let rd = run_dir(dir, run)?;
        let model = rd.join("model.json");
        let stdout = run_cli(
            cli,
            &[
                "train",
                "--data",
                path_str(&dataset)?,
                "--out",
                path_str(&model)?,
                "--epochs",
                "2",
                "--seed",
                SEED,
                "--metrics-out",
                path_str(&rd.join("metrics.json"))?,
                "--trace-out",
                path_str(&rd.join("trace.jsonl"))?,
            ],
        )?;
        // The run directory appears in the "model saved to ..." line;
        // normalize it so the two stdouts are comparable.
        stdouts.push(stdout.replace(run, "RUN"));
        models.push(read(&model)?);
    }
    let mut checks = vec![
        check_exact("model.json", &models[0], &models[1]),
        CheckReport {
            mode: "normalized-stdout".into(),
            ..check_exact("stdout", &stdouts[0], &stdouts[1])
        },
    ];
    checks.push(check_trace(dir)?);
    checks.push(check_metrics(dir)?);
    Ok(stage_report("train", checks))
}

fn sanitize_optimize(cli: &Path, dir: &Path) -> Result<StageReport, LintError> {
    let problem = dir.join("problem.json");
    run_cli(cli, &["case-study", "--out", path_str(&problem)?])?;
    let mut placements = Vec::new();
    for run in ["run_a", "run_b"] {
        let rd = run_dir(dir, run)?;
        let placement = rd.join("placement.json");
        // Stdout carries elapsed wall seconds, so only the written
        // artifacts are compared for this stage.
        run_cli(
            cli,
            &[
                "optimize",
                "--problem",
                path_str(&problem)?,
                "--steps",
                "12",
                "--trials",
                "1",
                "--horizon",
                "300",
                "--seed",
                SEED,
                "--neighborhood",
                "3",
                "--out",
                path_str(&placement)?,
                "--metrics-out",
                path_str(&rd.join("metrics.json"))?,
                "--trace-out",
                path_str(&rd.join("trace.jsonl"))?,
            ],
        )?;
        placements.push(read(&placement)?);
    }
    let mut checks = vec![check_exact(
        "placement.json",
        &placements[0],
        &placements[1],
    )];
    checks.push(check_trace(dir)?);
    checks.push(check_metrics(dir)?);
    Ok(stage_report("optimize", checks))
}

fn stage_report(stage: &str, checks: Vec<CheckReport>) -> StageReport {
    StageReport {
        stage: stage.to_string(),
        identical: checks.iter().all(|c| c.identical),
        checks,
    }
}

fn run_dir(dir: &Path, run: &str) -> Result<PathBuf, LintError> {
    let rd = dir.join(run);
    std::fs::create_dir_all(&rd).map_err(|e| LintError::io(&rd, e))?;
    Ok(rd)
}

fn path_str(p: &Path) -> Result<&str, LintError> {
    p.to_str()
        .ok_or_else(|| LintError::Sanitize(format!("non-UTF-8 path {}", p.display())))
}

fn read(p: &Path) -> Result<String, LintError> {
    std::fs::read_to_string(p).map_err(|e| LintError::io(p, e))
}

/// Run the CLI with `args`, returning stdout. Non-zero exit is an
/// error — the sanitizer diffs successful runs, it does not classify
/// failures.
fn run_cli(cli: &Path, args: &[&str]) -> Result<String, LintError> {
    let output = Command::new(cli)
        .args(args)
        .output()
        .map_err(|e| LintError::io(cli, e))?;
    if !output.status.success() {
        return Err(LintError::Sanitize(format!(
            "`{} {}` exited with {}: {}",
            cli.display(),
            args.join(" "),
            output.status,
            String::from_utf8_lossy(&output.stderr).trim()
        )));
    }
    String::from_utf8(output.stdout)
        .map_err(|_| LintError::Sanitize(format!("`{}` wrote non-UTF-8 stdout", cli.display())))
}

/// Byte-exact comparison with a first-divergence line diagnostic.
fn check_exact(artifact: &str, a: &str, b: &str) -> CheckReport {
    let detail = if a == b {
        String::new()
    } else {
        first_diff(a, b)
    };
    CheckReport {
        artifact: artifact.to_string(),
        mode: "exact".to_string(),
        identical: a == b,
        detail,
    }
}

fn first_diff(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("first diff at line {}: `{la}` vs `{lb}`", i + 1);
        }
    }
    format!(
        "runs differ in length: {} vs {} lines",
        a.lines().count(),
        b.lines().count()
    )
}

/// Compare the two runs' span traces with wall-clock fields zeroed.
/// The normalized forms are written next to the originals so a CI
/// failure uploads exactly what was compared.
fn check_trace(dir: &Path) -> Result<CheckReport, LintError> {
    let mut normalized = Vec::new();
    for run in ["run_a", "run_b"] {
        let path = dir.join(run).join("trace.jsonl");
        let norm = normalize_trace(&read(&path)?)?;
        let norm_path = dir.join(run).join("trace.normalized.jsonl");
        std::fs::write(&norm_path, &norm).map_err(|e| LintError::io(&norm_path, e))?;
        normalized.push(norm);
    }
    let mut check = check_exact("trace.jsonl", &normalized[0], &normalized[1]);
    check.mode = "normalized-trace".to_string();
    Ok(check)
}

/// Zero `start_ns`/`end_ns` on every span line; everything else (ids,
/// parentage, names, order) must be bit-stable across seeded runs.
fn normalize_trace(raw: &str) -> Result<String, LintError> {
    let mut out = String::new();
    for line in raw.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| LintError::Sanitize(format!("unparseable trace line `{line}`: {e}")))?;
        let Value::Map(entries) = value else {
            return Err(LintError::Sanitize(format!(
                "trace line is not an object: `{line}`"
            )));
        };
        let scrubbed: Vec<(String, Value)> = entries
            .into_iter()
            .map(|(k, v)| {
                if k == "start_ns" || k == "end_ns" {
                    (k, Value::UInt(0))
                } else {
                    (k, v)
                }
            })
            .collect();
        out.push_str(&serde_json::to_string(&Value::Map(scrubbed)).map_err(LintError::Report)?);
        out.push('\n');
    }
    Ok(out)
}

/// Compare the two runs' metrics snapshots with wall-time entries
/// dropped; deterministic counters/gauges/histograms must match.
fn check_metrics(dir: &Path) -> Result<CheckReport, LintError> {
    let mut normalized = Vec::new();
    for run in ["run_a", "run_b"] {
        let path = dir.join(run).join("metrics.json");
        let norm = normalize_metrics(&read(&path)?)?;
        let norm_path = dir.join(run).join("metrics.normalized.json");
        std::fs::write(&norm_path, &norm).map_err(|e| LintError::io(&norm_path, e))?;
        normalized.push(norm);
    }
    let mut check = check_exact("metrics.json", &normalized[0], &normalized[1]);
    check.mode = "normalized-metrics".to_string();
    Ok(check)
}

/// Whether a metric name measures wall time or wall-clock-derived
/// rates — the only values allowed to differ between seeded runs.
fn is_wall_time_metric(name: &str) -> bool {
    name.ends_with("_seconds")
        || name.ends_with("_ns")
        || name.contains("per_sec")
        || name.contains("wall")
}

fn normalize_metrics(raw: &str) -> Result<String, LintError> {
    let value: Value = serde_json::from_str(raw)
        .map_err(|e| LintError::Sanitize(format!("unparseable metrics snapshot: {e}")))?;
    let Value::Map(sections) = value else {
        return Err(LintError::Sanitize(
            "metrics snapshot is not an object".into(),
        ));
    };
    let scrubbed: Vec<(String, Value)> = sections
        .into_iter()
        .map(|(section, v)| {
            let v = match v {
                Value::Map(entries) => Value::Map(
                    entries
                        .into_iter()
                        .filter(|(name, _)| !is_wall_time_metric(name))
                        .collect(),
                ),
                other => other,
            };
            (section, v)
        })
        .collect();
    serde_json::to_string_pretty(&Value::Map(scrubbed)).map_err(LintError::Report)
}

/// Derive a `SystemModel` JSON for the simulate smoke from the
/// case-study `PlacementProblem` JSON: same devices and chains, each
/// chain's fragments placed on devices `0..len` (distinct devices per
/// chain, which is all `simulate` validates).
fn write_system_from_problem(problem: &Path, system: &Path) -> Result<(), LintError> {
    let value: Value = serde_json::from_str(&read(problem)?)
        .map_err(|e| LintError::Sanitize(format!("unparseable problem JSON: {e}")))?;
    let chains = value
        .get("chains")
        .and_then(Value::as_seq)
        .ok_or_else(|| LintError::Sanitize("problem JSON has no `chains` array".into()))?;
    let assignment: Vec<Value> = chains
        .iter()
        .map(|chain| {
            let len = chain
                .get("fragments")
                .and_then(Value::as_seq)
                .map(<[Value]>::len)
                .unwrap_or(0);
            Value::Seq((0..len as u64).map(Value::UInt).collect())
        })
        .collect();
    let devices = value
        .get("devices")
        .cloned()
        .ok_or_else(|| LintError::Sanitize("problem JSON has no `devices` array".into()))?;
    let chains = value.get("chains").cloned().unwrap_or(Value::Null);
    let model = Value::Map(vec![
        ("devices".to_string(), devices),
        ("chains".to_string(), chains),
        (
            "placement".to_string(),
            Value::Map(vec![("assignment".to_string(), Value::Seq(assignment))]),
        ),
    ]);
    let text = serde_json::to_string_pretty(&model).map_err(LintError::Report)?;
    std::fs::write(system, text).map_err(|e| LintError::io(system, e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_normalization_zeroes_only_wall_fields() {
        let raw = r#"{"id":1,"parent":0,"name":"qsim.run","tid":1,"start_ns":123,"end_ns":456}
{"id":2,"parent":1,"name":"train.epoch","tid":1,"start_ns":789,"end_ns":999}
"#;
        let norm = normalize_trace(raw).unwrap();
        assert!(norm.contains("\"start_ns\":0"));
        assert!(norm.contains("\"end_ns\":0"));
        assert!(norm.contains("\"name\":\"qsim.run\""));
        assert!(norm.contains("\"id\":2"));
        assert!(!norm.contains("123"));
    }

    #[test]
    fn metrics_normalization_drops_wall_time_entries() {
        let raw = r#"{
  "counters": {"events.total": 10},
  "gauges": {"qsim.run_wall_seconds": 0.5, "train.grad_norm": 1.25,
             "sim.events_per_sec": 9000.0, "neural.matmul_ns": 17.0},
  "histograms": {}
}"#;
        let norm = normalize_metrics(raw).unwrap();
        assert!(norm.contains("events.total"));
        assert!(norm.contains("train.grad_norm"));
        assert!(!norm.contains("run_wall_seconds"));
        assert!(!norm.contains("events_per_sec"));
        assert!(!norm.contains("matmul_ns"));
    }

    #[test]
    fn wall_time_metric_predicate() {
        for name in [
            "qsim.run_wall_seconds",
            "train.epoch_seconds",
            "neural.matmul_ns",
            "sim.events_per_sec",
            "datagen.samples_per_sec",
        ] {
            assert!(is_wall_time_metric(name), "{name}");
        }
        for name in ["train.grad_norm", "qsim.device.queue_depth", "events.total"] {
            assert!(!is_wall_time_metric(name), "{name}");
        }
    }

    #[test]
    fn system_from_problem_places_each_chain_on_distinct_devices() {
        let dir = std::env::temp_dir().join(format!("chainnet_sanitize_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let problem = dir.join("p.json");
        let system = dir.join("s.json");
        std::fs::write(
            &problem,
            r#"{
  "devices": [{"memory": 10.0, "rate": 1.0}, {"memory": 8.0, "rate": 2.0}],
  "chains": [
    {"arrival_rate": 0.5, "fragments": [{"a": 1.0}, {"a": 2.0}]},
    {"arrival_rate": 0.25, "fragments": [{"a": 3.0}]}
  ]
}"#,
        )
        .unwrap();
        write_system_from_problem(&problem, &system).unwrap();
        let text = std::fs::read_to_string(&system).unwrap();
        let v: Value = serde_json::from_str(&text).unwrap();
        let assignment = v.get("placement").unwrap().get("assignment").unwrap();
        let rows = assignment.as_seq().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].as_seq().unwrap().len(), 2);
        assert_eq!(rows[1].as_seq().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exact_check_reports_first_divergence() {
        let c = check_exact("x", "a\nb\n", "a\nc\n");
        assert!(!c.identical);
        assert!(c.detail.contains("line 2"));
        assert!(check_exact("x", "same", "same").identical);
    }
}
