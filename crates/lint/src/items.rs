//! Item-tree analyzer: a brace/attribute-aware itemizer over
//! [`Masked`](crate::tokenizer::Masked) source.
//!
//! PR 3's rules were flat token scans — they could say *that* a banned
//! pattern appears but not *where* in the item structure. The region
//! rules (R6 `alloc_hygiene`, and the `#[cfg(test)]` exemption every
//! rule relies on) need scopes: which `fn` a call site belongs to,
//! whether that `fn` (or an enclosing `mod`/`impl`) carries
//! `#[cfg(test)]`, and the exact byte range of a function body.
//!
//! The itemizer is a single forward pass over the masked text (no
//! external parser — the build is offline). Masking makes the scan
//! safe: string and comment bodies are blanked, so every brace the
//! itemizer sees is a code brace. It recognises:
//!
//! * `mod` / `trait` items (named, recursed into),
//! * `impl` blocks (recursed into),
//! * `fn` items (leaf; the body byte range is recorded),
//! * any other attribute-carrying construct (`struct`, `const`,
//!   `use`, ... — consumed as an opaque item so its attributes attach),
//! * outer attributes `#[...]`, with `#[cfg(test)]` detection and
//!   inheritance from enclosing items,
//! * the `// lint:zero_alloc` annotation that marks a function body as
//!   an allocation-free region (rule R6).
//!
//! Known limitation (documented, irrelevant to this workspace): a brace
//! expression inside a const-generic argument (`Foo<{ N + 1 }>`) would
//! be taken for an item body.

use crate::tokenizer::{is_ident_byte, Masked};
use std::collections::BTreeSet;

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { ... }` or `mod name;`
    Mod,
    /// `impl ... { ... }`
    Impl,
    /// `fn name(...) { ... }` or a bodyless trait-method declaration.
    Fn,
    /// `trait Name { ... }`
    Trait,
    /// An attribute-carrying construct the itemizer does not model
    /// structurally (`struct`, `enum`, `const`, `use`, ...).
    Other,
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name (`mod`/`fn`/`trait` identifier; for `impl` the header
    /// text up to the body; empty for [`ItemKind::Other`]).
    pub name: String,
    /// Half-open byte span of the whole item, attributes included.
    pub span: (usize, usize),
    /// Half-open byte span *inside* the body braces, when the item has
    /// a brace body (`None` for `mod x;` and bodyless `fn` decls).
    pub body: Option<(usize, usize)>,
    /// Whether this item is `#[cfg(test)]`, directly or inherited from
    /// an enclosing item.
    pub cfg_test: bool,
    /// Whether this `fn` is annotated `// lint:zero_alloc` (always
    /// `false` for non-functions).
    pub zero_alloc: bool,
    /// Child items (populated for `mod` / `impl` / `trait` bodies).
    pub children: Vec<Item>,
}

/// The per-file item tree.
#[derive(Debug, Clone, Default)]
pub struct ItemTree {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl ItemTree {
    /// Itemize one masked file.
    pub fn build(masked: &Masked) -> ItemTree {
        // Lines carrying a `// lint:zero_alloc` annotation comment.
        let zero_alloc_lines: BTreeSet<usize> = masked
            .comments
            .iter()
            .filter(|c| {
                let t = c.text.trim_start();
                !t.starts_with('/') && !t.starts_with('!') && t.starts_with("lint:zero_alloc")
            })
            .map(|c| c.line)
            .collect();
        let mut parser = Parser {
            code: masked.code.as_bytes(),
            masked,
            zero_alloc_lines,
        };
        let end = masked.code.len();
        let mut items = Vec::new();
        parser.parse_region(0, end, false, &mut items);
        ItemTree { items }
    }

    /// Byte ranges covered by `#[cfg(test)]` items (children included
    /// by span containment).
    pub fn test_regions(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        fn walk(items: &[Item], out: &mut Vec<(usize, usize)>) {
            for it in items {
                if it.cfg_test {
                    out.push(it.span);
                } else {
                    walk(&it.children, out);
                }
            }
        }
        walk(&self.items, &mut out);
        out
    }

    /// `(body_span, fn_name)` for every `// lint:zero_alloc` function,
    /// in source order, test functions excluded.
    pub fn zero_alloc_bodies(&self) -> Vec<((usize, usize), String)> {
        let mut out = Vec::new();
        fn walk(items: &[Item], out: &mut Vec<((usize, usize), String)>) {
            for it in items {
                if it.zero_alloc && !it.cfg_test {
                    if let Some(body) = it.body {
                        out.push((body, it.name.clone()));
                    }
                }
                walk(&it.children, out);
            }
        }
        walk(&self.items, &mut out);
        out
    }

    /// Visit every item depth-first.
    pub fn for_each(&self, f: &mut impl FnMut(&Item)) {
        fn walk(items: &[Item], f: &mut impl FnMut(&Item)) {
            for it in items {
                f(it);
                walk(&it.children, f);
            }
        }
        walk(&self.items, f);
    }
}

/// Qualifier keywords that may precede an item keyword without ending
/// the pending-attribute attachment.
const QUALIFIERS: &[&str] = &["pub", "const", "unsafe", "async", "extern", "default"];

struct Parser<'a> {
    code: &'a [u8],
    masked: &'a Masked,
    zero_alloc_lines: BTreeSet<usize>,
}

impl Parser<'_> {
    /// Parse the items of `[start, end)` into `out`.
    fn parse_region(
        &mut self,
        start: usize,
        end: usize,
        inherited_test: bool,
        out: &mut Vec<Item>,
    ) {
        let b = self.code;
        let mut i = start;
        // Pending outer attributes: span start and whether cfg(test).
        let mut attr_start: Option<usize> = None;
        let mut attr_test = false;

        while i < end {
            let c = b[i];
            if c == b'#' && i + 1 < end && b[i + 1] == b'[' {
                // Outer attribute: record, attach to the next item.
                let close = match_bracket(b, i + 1, end);
                let text: String = self.masked.code[i..close.min(end)]
                    .split_whitespace()
                    .collect();
                if text.contains("cfg(test)") {
                    attr_test = true;
                }
                attr_start.get_or_insert(i);
                i = close;
                continue;
            }
            if c == b'#' && i + 2 < end && b[i + 1] == b'!' && b[i + 2] == b'[' {
                // Inner attribute: belongs to the enclosing scope.
                i = match_bracket(b, i + 2, end);
                continue;
            }
            if is_ident_byte(c) && !c.is_ascii_digit() {
                let word_end = scan_ident(b, i, end);
                let word = &self.masked.code[i..word_end];
                match word {
                    "mod" | "trait" => {
                        let kind = if word == "mod" {
                            ItemKind::Mod
                        } else {
                            ItemKind::Trait
                        };
                        i = self.parse_named_item(
                            kind,
                            i,
                            word_end,
                            end,
                            attr_start.take(),
                            std::mem::take(&mut attr_test),
                            inherited_test,
                            out,
                        );
                    }
                    "impl" => {
                        i = self.parse_impl(
                            i,
                            word_end,
                            end,
                            attr_start.take(),
                            std::mem::take(&mut attr_test),
                            inherited_test,
                            out,
                        );
                    }
                    "fn" => {
                        // An item fn has a name; `fn(u8) -> u8` (a
                        // fn-pointer type) does not.
                        let name_start = skip_ws(b, word_end, end);
                        if name_start < end
                            && is_ident_byte(b[name_start])
                            && !b[name_start].is_ascii_digit()
                        {
                            i = self.parse_fn(
                                i,
                                name_start,
                                end,
                                attr_start.take(),
                                std::mem::take(&mut attr_test),
                                inherited_test,
                                out,
                            );
                        } else {
                            i = word_end;
                        }
                    }
                    _ if QUALIFIERS.contains(&word) => {
                        // Qualifiers keep pending attributes pending.
                        i = word_end;
                    }
                    _ => {
                        if attr_start.is_some() {
                            // An attributed construct we don't model:
                            // consume it so the attribute attaches
                            // (this is what exempts `#[cfg(test)]`
                            // structs, consts and use-items).
                            let span_start = attr_start.take().unwrap_or(i);
                            let test = std::mem::take(&mut attr_test);
                            let (item_end, body) = consume_construct(b, i, end);
                            out.push(Item {
                                kind: ItemKind::Other,
                                name: String::new(),
                                span: (span_start, item_end),
                                body,
                                cfg_test: inherited_test || test,
                                zero_alloc: false,
                                children: Vec::new(),
                            });
                            i = item_end;
                        } else {
                            i = word_end;
                        }
                    }
                }
                continue;
            }
            i += 1;
        }
    }

    /// Parse `mod name { ... }` / `mod name;` / `trait Name ... { ... }`
    /// starting at the keyword; returns the index past the item.
    #[allow(clippy::too_many_arguments)]
    fn parse_named_item(
        &mut self,
        kind: ItemKind,
        kw_start: usize,
        kw_end: usize,
        end: usize,
        attr_start: Option<usize>,
        attr_test: bool,
        inherited_test: bool,
        out: &mut Vec<Item>,
    ) -> usize {
        let b = self.code;
        let name_start = skip_ws(b, kw_end, end);
        let name_end = scan_ident(b, name_start, end);
        let name = self.masked.code[name_start..name_end].to_string();
        let span_start = attr_start.unwrap_or(kw_start);
        let cfg_test = inherited_test || attr_test;
        match find_body_or_semi(b, name_end, end) {
            BodyOrSemi::Body(open, close) => {
                let mut children = Vec::new();
                self.parse_region(open + 1, close, cfg_test, &mut children);
                out.push(Item {
                    kind,
                    name,
                    span: (span_start, (close + 1).min(end)),
                    body: Some((open + 1, close)),
                    cfg_test,
                    zero_alloc: false,
                    children,
                });
                (close + 1).min(end)
            }
            BodyOrSemi::Semi(pos) => {
                out.push(Item {
                    kind,
                    name,
                    span: (span_start, (pos + 1).min(end)),
                    body: None,
                    cfg_test,
                    zero_alloc: false,
                    children: Vec::new(),
                });
                (pos + 1).min(end)
            }
            BodyOrSemi::Eof => end,
        }
    }

    /// Parse `impl ... { ... }` starting at the keyword.
    #[allow(clippy::too_many_arguments)]
    fn parse_impl(
        &mut self,
        kw_start: usize,
        kw_end: usize,
        end: usize,
        attr_start: Option<usize>,
        attr_test: bool,
        inherited_test: bool,
        out: &mut Vec<Item>,
    ) -> usize {
        let b = self.code;
        let span_start = attr_start.unwrap_or(kw_start);
        let cfg_test = inherited_test || attr_test;
        match find_body_or_semi(b, kw_end, end) {
            BodyOrSemi::Body(open, close) => {
                let name: String = self.masked.code[kw_end..open]
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ");
                let mut children = Vec::new();
                self.parse_region(open + 1, close, cfg_test, &mut children);
                out.push(Item {
                    kind: ItemKind::Impl,
                    name,
                    span: (span_start, (close + 1).min(end)),
                    body: Some((open + 1, close)),
                    cfg_test,
                    zero_alloc: false,
                    children,
                });
                (close + 1).min(end)
            }
            // `impl Trait` in type position ends at `;` — not a real
            // impl block, recorded as an empty-bodied node.
            BodyOrSemi::Semi(pos) => {
                out.push(Item {
                    kind: ItemKind::Impl,
                    name: String::new(),
                    span: (span_start, (pos + 1).min(end)),
                    body: None,
                    cfg_test,
                    zero_alloc: false,
                    children: Vec::new(),
                });
                (pos + 1).min(end)
            }
            BodyOrSemi::Eof => end,
        }
    }

    /// Parse an item `fn` whose name starts at `name_start`.
    #[allow(clippy::too_many_arguments)]
    fn parse_fn(
        &mut self,
        kw_start: usize,
        name_start: usize,
        end: usize,
        attr_start: Option<usize>,
        attr_test: bool,
        inherited_test: bool,
        out: &mut Vec<Item>,
    ) -> usize {
        let b = self.code;
        let name_end = scan_ident(b, name_start, end);
        let name = self.masked.code[name_start..name_end].to_string();
        let span_start = attr_start.unwrap_or(kw_start);
        let cfg_test = inherited_test || attr_test;
        // `// lint:zero_alloc` on the line above the item (or trailing
        // on the item's first line) marks the body allocation-free.
        let first_line = self.masked.line_of(span_start);
        let zero_alloc = self.zero_alloc_lines.contains(&(first_line - 1))
            || self.zero_alloc_lines.contains(&first_line);
        let (item_end, body) = match find_body_or_semi(b, name_end, end) {
            BodyOrSemi::Body(open, close) => ((close + 1).min(end), Some((open + 1, close))),
            BodyOrSemi::Semi(pos) => ((pos + 1).min(end), None),
            BodyOrSemi::Eof => (end, None),
        };
        out.push(Item {
            kind: ItemKind::Fn,
            name,
            span: (span_start, item_end),
            body,
            cfg_test,
            zero_alloc,
            children: Vec::new(),
        });
        item_end
    }
}

/// Skip ASCII whitespace.
fn skip_ws(b: &[u8], mut i: usize, end: usize) -> usize {
    while i < end && b[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// End of the identifier starting at `i`.
fn scan_ident(b: &[u8], mut i: usize, end: usize) -> usize {
    while i < end && is_ident_byte(b[i]) {
        i += 1;
    }
    i
}

/// Index just past the `]` matching the `[` at `open` (or `end`).
fn match_bracket(b: &[u8], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        match b[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end
}

/// Index of the `}` matching the `{` at `open` (or `end`).
fn match_brace(b: &[u8], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end
}

enum BodyOrSemi {
    /// `(open_brace, close_brace)` indices.
    Body(usize, usize),
    /// Index of the terminating `;`.
    Semi(usize),
    Eof,
}

/// From `i`, find the item's `{` body or terminating `;` at zero
/// paren/bracket depth (angle brackets never contain `{` or `;` in a
/// signature, so they need no tracking).
fn find_body_or_semi(b: &[u8], i: usize, end: usize) -> BodyOrSemi {
    let mut depth = 0i64;
    let mut k = i;
    while k < end {
        match b[k] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth <= 0 => return BodyOrSemi::Body(k, match_brace(b, k, end)),
            b';' if depth <= 0 => return BodyOrSemi::Semi(k),
            _ => {}
        }
        k += 1;
    }
    BodyOrSemi::Eof
}

/// Consume an unmodeled construct: everything through the first `;` or
/// brace block at zero depth. Returns `(end, body_span)`.
fn consume_construct(b: &[u8], i: usize, end: usize) -> (usize, Option<(usize, usize)>) {
    match find_body_or_semi(b, i, end) {
        BodyOrSemi::Body(open, close) => ((close + 1).min(end), Some((open + 1, close))),
        BodyOrSemi::Semi(pos) => ((pos + 1).min(end), None),
        BodyOrSemi::Eof => (end, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::mask;

    fn tree(src: &str) -> ItemTree {
        ItemTree::build(&mask(src))
    }

    #[test]
    fn finds_mod_impl_fn_with_spans() {
        let src = "\
mod alpha {
    struct S;
    impl S {
        fn method(&self) -> u8 { 1 }
    }
    fn free() {}
}
fn top(x: u8) -> u8 { x }
";
        let t = tree(src);
        assert_eq!(t.items.len(), 2);
        let m = &t.items[0];
        assert_eq!(m.kind, ItemKind::Mod);
        assert_eq!(m.name, "alpha");
        assert!(!m.cfg_test);
        let imp = m
            .children
            .iter()
            .find(|c| c.kind == ItemKind::Impl)
            .expect("impl child");
        assert_eq!(imp.children.len(), 1);
        assert_eq!(imp.children[0].name, "method");
        assert!(imp.children[0].body.is_some());
        let top = &t.items[1];
        assert_eq!(top.kind, ItemKind::Fn);
        assert_eq!(top.name, "top");
        let (bs, be) = top.body.unwrap();
        assert_eq!(&src[bs..be], " x ");
    }

    #[test]
    fn cfg_test_is_inherited_by_children() {
        let src = "\
#[cfg(test)]
mod tests {
    fn helper() {}
    mod inner { fn deep() {} }
}
fn live() {}
";
        let t = tree(src);
        let tests = &t.items[0];
        assert!(tests.cfg_test);
        assert!(tests.children.iter().all(|c| c.cfg_test));
        assert!(tests.children[1].children[0].cfg_test);
        assert!(!t.items[1].cfg_test);
        let regions = t.test_regions();
        assert_eq!(regions.len(), 1);
        let live_off = src.find("fn live").unwrap();
        assert!(regions[0].0 < regions[0].1);
        assert!(live_off >= regions[0].1);
    }

    #[test]
    fn attrs_attach_through_qualifiers() {
        let src = "#[cfg(test)]\npub const fn check() -> u8 { 0 }\nfn other() {}\n";
        let t = tree(src);
        assert_eq!(t.items[0].name, "check");
        assert!(t.items[0].cfg_test);
        assert!(t.items[0].span.0 == 0, "span starts at the attribute");
        assert!(!t.items[1].cfg_test);
    }

    #[test]
    fn cfg_test_struct_and_use_are_items_too() {
        let src = "\
#[cfg(test)]
use std::time::Instant;
#[cfg(test)]
struct Probe { calls: usize }
fn live() {}
";
        let t = tree(src);
        assert_eq!(t.items.len(), 3);
        assert!(t.items[0].cfg_test);
        assert_eq!(t.items[0].kind, ItemKind::Other);
        assert!(t.items[1].cfg_test);
        assert!(!t.items[2].cfg_test);
        assert_eq!(t.test_regions().len(), 2);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "struct F { cb: fn(u8) -> u8 }\nfn real(cb: fn(u8) -> u8) -> u8 { cb(1) }\n";
        let t = tree(src);
        let fns: Vec<_> = {
            let mut v = Vec::new();
            t.for_each(&mut |it| {
                if it.kind == ItemKind::Fn {
                    v.push(it.name.clone());
                }
            });
            v
        };
        assert_eq!(fns, vec!["real"]);
    }

    #[test]
    fn trait_decls_have_bodyless_fn_children() {
        let src =
            "trait Eval {\n    fn score(&self) -> f64;\n    fn name(&self) -> &str { \"x\" }\n}\n";
        let t = tree(src);
        let tr = &t.items[0];
        assert_eq!(tr.kind, ItemKind::Trait);
        assert_eq!(tr.children.len(), 2);
        assert!(tr.children[0].body.is_none());
        assert!(tr.children[1].body.is_some());
    }

    #[test]
    fn zero_alloc_annotation_marks_the_fn() {
        let src = "\
// lint:zero_alloc
fn hot(buf: &mut [u8]) { buf[0] = 1; }

// lint:zero_alloc: reason text is allowed after the marker
#[inline]
fn hot2() {}

fn cold() {}

#[cfg(test)]
mod tests {
    // lint:zero_alloc
    fn test_hot() {}
}
";
        let t = tree(src);
        assert!(t.items[0].zero_alloc);
        assert!(t.items[1].zero_alloc, "annotation above attributes");
        assert!(!t.items[2].zero_alloc);
        // Test code never contributes zero-alloc regions.
        let bodies = t.zero_alloc_bodies();
        assert_eq!(bodies.len(), 2);
        assert_eq!(bodies[0].1, "hot");
        assert_eq!(bodies[1].1, "hot2");
    }

    #[test]
    fn braces_in_strings_do_not_confuse_the_itemizer() {
        let src = "fn a() { let s = \"{ not a brace }\"; }\nfn b() { let c = '{'; }\n";
        let t = tree(src);
        assert_eq!(t.items.len(), 2);
        assert_eq!(t.items[0].name, "a");
        assert_eq!(t.items[1].name, "b");
        assert!(t.items[0].span.1 <= t.items[1].span.0);
    }

    #[test]
    fn sibling_spans_are_ordered_and_disjoint() {
        let src = "\
mod m1 { fn a() {} fn b() {} }
#[cfg(test)]
mod m2 { fn c() {} }
impl Foo { fn d(&self) {} }
fn e() {}
";
        let t = tree(src);
        fn check(items: &[Item]) {
            for w in items.windows(2) {
                assert!(w[0].span.1 <= w[1].span.0, "{w:?}");
            }
            for it in items {
                assert!(it.span.0 < it.span.1);
                if let Some((bs, be)) = it.body {
                    assert!(it.span.0 <= bs && be <= it.span.1);
                }
                for c in &it.children {
                    let (bs, be) = it.body.expect("parent body");
                    assert!(bs <= c.span.0 && c.span.1 <= be);
                }
                check(&it.children);
            }
        }
        check(&t.items);
    }
}
