#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

//! `chainnet-lint` — the workspace's static-analysis gate.
//!
//! The ChainNet reproduction rests on invariants `rustc` cannot check:
//! label generation and the Table V/VI results replay only if the
//! simulator, trainer and SA search are deterministic given a seed;
//! the resilience layer promises panic-free library crates with typed
//! errors; and the observability layer promises a consistent,
//! documented metric namespace. This crate makes those promises
//! machine-checked on every commit:
//!
//! * **R1 `panic`** — no `.unwrap()` / `.expect(` / `panic!` /
//!   `todo!` / `unimplemented!` in library code (tests, benches,
//!   examples and binary entry points are exempt);
//! * **R2 `determinism`** — no `Instant::now` / `SystemTime::now` /
//!   `thread_rng` / `HashMap` / `HashSet` in the hot-path crates
//!   (`qsim`, `neural`, `placement`, `core`);
//! * **R3 `unsafe`** — `#![forbid(unsafe_code)]` on every crate root
//!   and no `unsafe` token anywhere first-party;
//! * **R4 `obs_schema`** — metric names at obs call sites and span
//!   names at tracer call sites match the `[a-z0-9_.]` charset and
//!   agree, both directions, with the metric and span tables in
//!   `crates/obs/README.md`;
//! * **R5 `error_hygiene`** — public `Result` APIs in library crates
//!   use the crate's typed error, not `String` or `Box<dyn Error>`.
//!
//! A violation is suppressed only by an inline annotation on the same
//! or the preceding line:
//!
//! ```text
//! // lint:allow(determinism): wall-clock budget watchdog, results
//! // are not derived from this read
//! let start_wall = Instant::now();
//! ```
//!
//! Malformed annotations (unknown rule, missing reason) are themselves
//! violations, so a typo cannot silently disable a rule. See
//! `docs/lint_rules.md` for the full contract.
//!
//! Scanning is a hand-rolled masking pass (no external parser — the
//! build is offline, see `vendor/README.md`): comment and string
//! bodies are blanked before any pattern matching, so a banned token
//! in a doc comment or an error message never false-positives.

pub mod error;
pub mod items;
pub mod report;
pub mod rules;
pub mod sanitize;
pub mod tokenizer;
pub mod workspace;

pub use error::LintError;
pub use report::{Report, Rule, Violation};
pub use workspace::{CrateKind, CrateSpec, WorkspaceSpec};

use std::collections::BTreeMap;

/// Lint every crate in `spec`. Violations are ordered by
/// `(file, line, rule)`; the report is JSON-serialisable.
pub fn run(spec: &WorkspaceSpec) -> Result<Report, LintError> {
    let mut report = Report::default();
    // metric/span name -> every (file, line) that registers it
    let mut used_metrics: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
    let mut used_spans: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();

    for crate_spec in &spec.crates {
        for file in workspace::crate_sources(&spec.root, crate_spec)? {
            let src = std::fs::read_to_string(&file.abs_path)
                .map_err(|e| LintError::io(&file.abs_path, e))?;
            let masked = tokenizer::mask(&src);
            let scanned = rules::scan_file(crate_spec, &file, &masked, &mut report.violations);
            report.suppressed += scanned.suppressed;
            report.files_scanned += 1;
            for (name, line) in scanned.metrics {
                used_metrics
                    .entry(name)
                    .or_default()
                    .push((file.rel_path.clone(), line));
            }
            for (name, line) in scanned.spans {
                used_spans
                    .entry(name)
                    .or_default()
                    .push((file.rel_path.clone(), line));
            }
        }
    }

    // R4 cross-check: code vs the obs README metric and span tables.
    if let Some(readme_rel) = &spec.obs_readme {
        let readme_path = spec.root.join(readme_rel);
        let readme =
            std::fs::read_to_string(&readme_path).map_err(|e| LintError::io(&readme_path, e))?;
        let readme_disp = readme_rel.to_string_lossy().replace('\\', "/");
        let checks = [
            ("metric", rules::readme_metric_names(&readme), &used_metrics),
            ("span", rules::readme_span_names(&readme), &used_spans),
        ];
        for (kind, documented, used) in &checks {
            for (name, sites) in *used {
                if !documented.contains_key(name) {
                    for (file, line) in sites {
                        report.violations.push(Violation::new(
                            Rule::ObsSchema,
                            file,
                            *line,
                            format!("{kind} `{name}` is not documented in {readme_disp}"),
                        ));
                    }
                }
            }
            for (name, line) in documented {
                if !rules::valid_metric_charset(name) {
                    report.violations.push(Violation::new(
                        Rule::ObsSchema,
                        &readme_disp,
                        *line,
                        format!("documented {kind} `{name}` violates the [a-z0-9_.] charset"),
                    ));
                } else if !used.contains_key(name) {
                    report.violations.push(Violation::new(
                        Rule::ObsSchema,
                        &readme_disp,
                        *line,
                        format!("documented {kind} `{name}` is registered nowhere in code"),
                    ));
                }
            }
        }
    }

    report.finish();
    Ok(report)
}
