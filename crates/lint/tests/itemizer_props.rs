//! Property tests for the item-tree analyzer: on randomly generated
//! (well-formed) source, sibling spans are ordered and disjoint,
//! children nest strictly inside their parent's body, and body spans
//! sit inside item spans. Braces hidden in strings and comments must
//! never distort the tree.

use chainnet_lint::items::{Item, ItemTree};
use chainnet_lint::tokenizer::mask;
use proptest::prelude::*;

/// Statement filler for function bodies; some lines hide braces in
/// masked positions to try to desynchronise the itemizer.
const STMTS: &[&str] = &[
    "let a = 1;\n",
    "let s = \"} } {\";\n",
    "// unmatched in a comment: { { {\n",
    "let r = r#\"raw } { \"#;\n",
    "if a > 0 { let _ = a; }\n",
    "let c = '{';\n",
    "let arr = [1, 2, 3];\n",
];

#[derive(Debug, Clone)]
enum Node {
    Fn {
        name: usize,
        stmts: Vec<usize>,
        cfg_test: bool,
        zero_alloc: bool,
    },
    Mod {
        name: usize,
        cfg_test: bool,
        children: Vec<Node>,
    },
    Impl {
        name: usize,
        children: Vec<Node>,
    },
}

/// One generator instruction: (op, name, flag_a, flag_b). Op 0 emits a
/// fn; 1 opens a mod; 2 opens an impl; 3 closes the innermost open
/// container. The vendored proptest shim has no recursive strategies,
/// so nesting is driven by this flat op stream instead.
type Op = (u8, usize, bool, bool);

fn build_forest(ops: &[Op]) -> Vec<Node> {
    const MAX_DEPTH: usize = 4;
    let mut roots: Vec<Node> = Vec::new();
    let mut stack: Vec<Node> = Vec::new();

    fn attach(stack: &mut [Node], roots: &mut Vec<Node>, node: Node) {
        match stack.last_mut() {
            Some(Node::Mod { children, .. }) | Some(Node::Impl { children, .. }) => {
                children.push(node)
            }
            _ => roots.push(node),
        }
    }

    for &(op, name, flag_a, flag_b) in ops {
        match op {
            0 => {
                let stmts = (0..name % 4).map(|i| (name + i) % STMTS.len()).collect();
                let node = Node::Fn {
                    name,
                    stmts,
                    cfg_test: flag_a,
                    zero_alloc: flag_b,
                };
                attach(&mut stack, &mut roots, node);
            }
            1 if stack.len() < MAX_DEPTH => stack.push(Node::Mod {
                name,
                cfg_test: flag_a,
                children: Vec::new(),
            }),
            2 if stack.len() < MAX_DEPTH => stack.push(Node::Impl {
                name,
                children: Vec::new(),
            }),
            _ => {
                if let Some(done) = stack.pop() {
                    attach(&mut stack, &mut roots, done);
                }
            }
        }
    }
    while let Some(done) = stack.pop() {
        attach(&mut stack, &mut roots, done);
    }
    roots
}

fn render(node: &Node, out: &mut String) {
    match node {
        Node::Fn {
            name,
            stmts,
            cfg_test,
            zero_alloc,
        } => {
            if *cfg_test {
                out.push_str("#[cfg(test)]\n");
            }
            if *zero_alloc {
                out.push_str("// lint:zero_alloc\n");
            }
            out.push_str(&format!("fn f{name}() {{\n"));
            for s in stmts {
                out.push_str(STMTS[*s]);
            }
            out.push_str("}\n");
        }
        Node::Mod {
            name,
            cfg_test,
            children,
        } => {
            if *cfg_test {
                out.push_str("#[cfg(test)]\n");
            }
            out.push_str(&format!("mod m{name} {{\n"));
            for c in children {
                render(c, out);
            }
            out.push_str("}\n");
        }
        Node::Impl { name, children } => {
            out.push_str(&format!("impl T{name} {{\n"));
            for c in children {
                render(c, out);
            }
            out.push_str("}\n");
        }
    }
}

/// Check the structural invariants of a sibling list, recursively.
fn check_items(items: &[Item], bound: (usize, usize), src_len: usize) -> Result<(), String> {
    let mut prev_end = bound.0;
    for item in items {
        let (start, end) = item.span;
        if start < prev_end {
            return Err(format!(
                "sibling spans overlap or are unordered: {:?} starts before {prev_end}",
                item.span
            ));
        }
        if end > bound.1 || end > src_len || start >= end {
            return Err(format!("span {:?} escapes bound {bound:?}", item.span));
        }
        prev_end = end;
        if let Some(body) = item.body {
            if body.0 < start || body.1 > end {
                return Err(format!("body {body:?} outside item span {:?}", item.span));
            }
            check_items(&item.children, body, src_len)?;
        } else if !item.children.is_empty() {
            return Err(format!("bodyless item {:?} has children", item.name));
        }
    }
    Ok(())
}

fn count_nodes(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .map(|n| match n {
            Node::Fn { .. } => 1,
            Node::Mod { children, .. } | Node::Impl { children, .. } => 1 + count_nodes(children),
        })
        .sum()
}

fn count_items(items: &[Item]) -> usize {
    items.iter().map(|i| 1 + count_items(&i.children)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn spans_tile_and_nest(ops in proptest::collection::vec((0u8..4, 0usize..32, proptest::bool::ANY, proptest::bool::ANY), 0..32)) {
        let nodes = build_forest(&ops);
        let mut src = String::new();
        for n in &nodes {
            render(n, &mut src);
        }
        let masked = mask(&src);
        let tree = ItemTree::build(&masked);
        // Every generated node is modeled, none invented.
        let (got, want) = (count_items(&tree.items), count_nodes(&nodes));
        prop_assert!(got == want, "item count {got} != {want} in:\n{src}");
        if let Err(msg) = check_items(&tree.items, (0, src.len()), src.len()) {
            prop_assert!(false, "{msg}\nin:\n{src}");
        }
    }

    #[test]
    fn test_regions_cover_all_cfg_test_items(ops in proptest::collection::vec((0u8..4, 0usize..32, proptest::bool::ANY, proptest::bool::ANY), 0..32)) {
        let nodes = build_forest(&ops);
        let mut src = String::new();
        for n in &nodes {
            render(n, &mut src);
        }
        let masked = mask(&src);
        let tree = ItemTree::build(&masked);
        let regions = tree.test_regions();
        // Regions are ordered and disjoint.
        for w in regions.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlapping test regions {:?} in:\n{}", regions, src);
        }
        // Every cfg_test item's span is inside some region.
        let mut ok = true;
        tree.for_each(&mut |item| {
            if item.cfg_test
                && !regions.iter().any(|&(s, e)| s <= item.span.0 && item.span.1 <= e)
            {
                ok = false;
            }
        });
        prop_assert!(ok, "cfg_test item not covered by test_regions in:\n{src}");
    }
}
