#![forbid(unsafe_code)]
//! Fixture crate where every would-be violation carries a well-formed
//! `lint:allow` annotation — must contribute zero violations and a
//! positive suppressed count.

pub fn allowed_panics(x: Option<u8>) -> u8 {
    // lint:allow(panic): fixture — invariant documented here
    let a = x.unwrap();
    let b = x.expect("boom"); // lint:allow(panic): fixture — trailing annotation form
    a.max(b)
}

pub fn allowed_clock() -> std::time::Instant {
    // lint:allow(determinism): fixture — watchdog-style wall-clock read
    std::time::Instant::now()
}

// lint:allow(error_hygiene): fixture — legacy API kept for compatibility
pub fn allowed_stringly() -> Result<(), String> {
    Ok(())
}
