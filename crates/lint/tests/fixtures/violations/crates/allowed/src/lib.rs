#![forbid(unsafe_code)]
//! Fixture crate where every would-be violation carries a well-formed
//! `lint:allow` annotation — must contribute zero violations and a
//! positive suppressed count.

pub fn allowed_panics(x: Option<u8>) -> u8 {
    // lint:allow(panic): fixture — invariant documented here
    let a = x.unwrap();
    let b = x.expect("boom"); // lint:allow(panic): fixture — trailing annotation form
    a.max(b)
}

pub fn allowed_clock() -> std::time::Instant {
    // lint:allow(determinism): fixture — watchdog-style wall-clock read
    std::time::Instant::now()
}

// lint:allow(error_hygiene): fixture — legacy API kept for compatibility
pub fn allowed_stringly() -> Result<(), String> {
    Ok(())
}

// lint:zero_alloc
pub fn allowed_alloc() -> Vec<u8> {
    // lint:allow(alloc_hygiene): fixture — a multi-line reason keeps
    // its coverage through the rest of the comment block
    let mut v = Vec::new();
    v.push(1); // lint:allow(alloc_hygiene): fixture — trailing form
    v
}

pub fn allowed_rng() -> StdRng {
    // lint:allow(rng_discipline): fixture — entropy seeding behind explicit opt-in
    StdRng::from_entropy()
}

pub fn allowed_float(xs: &mut [f64]) {
    // lint:allow(panic): fixture — comparator is total on this data
    // lint:allow(float_order): fixture — stacked annotations each
    // cover the first code line after the comment block
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

// lint:allow(shared_state): fixture — single-threaded scratch cache
pub fn allowed_shared() -> std::rc::Rc<u8> {
    // lint:allow(shared_state): fixture — same cache, constructor site
    std::rc::Rc::new(7)
}
