//! Fixture crate that violates every rule. Never compiled — only
//! scanned by the chainnet-lint integration tests. The crate root
//! deliberately lacks `#![forbid(unsafe_code)]` (R3).

use std::collections::HashMap; // R2: unordered map in a hot-path crate
use std::time::Instant;

pub struct Registry;

pub fn r1_panics(x: Option<u8>) -> u8 {
    let a = x.unwrap(); // R1
    let b = x.expect("boom"); // R1
    if a > b {
        panic!("nope"); // R1
    }
    todo!() // R1
}

pub fn r1_unimplemented() {
    unimplemented!() // R1
}

pub fn r2_nondeterminism(m: &HashMap<u8, u8>) -> usize {
    let _t = Instant::now(); // R2
    let _rng = thread_rng(); // R7: ambient RNG (owned by rng_discipline)
    m.len()
}

pub fn r3_unsafe_token(p: *const u8) -> u8 {
    unsafe { *p } // R3
}

pub fn r4_metrics(r: &Registry) {
    r.counter("code.only_metric").inc(); // R4: not in the README table
    r.gauge("Bad-Name").set(1.0); // R4: charset violation
}

pub fn r5_stringly() -> Result<(), String> {
    // R5
    Err("stringly".to_string())
}

pub fn r5_boxed() -> Result<(), Box<dyn std::error::Error>> {
    // R5
    Ok(())
}

// lint:zero_alloc
pub fn r6_allocating_hot_loop(xs: &[u64]) -> u64 {
    let mut buf = Vec::new(); // R6
    buf.push(xs.len() as u64); // R6
    let doubled: Vec<u64> = xs.iter().map(|x| x * 2).collect(); // R6
    let label = format!("{}", doubled.len()); // R6
    buf[0] + label.len() as u64
}

pub fn r6_unannotated_fn_allocates_freely() -> Vec<u8> {
    // Negative case: no `lint:zero_alloc` marker, so R6 stays silent.
    let mut v = Vec::new();
    v.push(1);
    v
}

pub fn r7_entropy_and_cloned_rng(base_rng: &StdRng) {
    let _rng = StdRng::from_entropy(); // R7
    let _fork = base_rng.clone(); // R7: cloned RNG duplicates the stream
}

pub fn r8_float_order(xs: &mut [f64]) -> Option<f64> {
    // lint:allow(panic): fixture — R8 still fires alongside the allowed R1
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); // R8: one site
    xs.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)) // R8: one site
}

pub fn r8_total_cmp_is_clean(xs: &mut [f64]) {
    // Negative case: total order comparator, R8 stays silent.
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub static mut R9_COUNTER: u64 = 0; // R9

pub fn r9_interior_mutability() {
    let _rc = std::rc::Rc::new(1u8); // R9
    let _cell = std::cell::RefCell::new(2u8); // R9
}

// lint:allow(panic) missing the colon-reason — R0 malformed annotation
pub fn r0_bad_annotation() {}

pub fn masked_patterns_do_not_fire() -> &'static str {
    // None of the banned tokens below may produce a violation: they
    // sit in comments and string literals. `.unwrap()` / panic! /
    // Instant::now / HashMap / unsafe (comment mentions).
    "contains .unwrap() and .expect( and panic! and Instant::now and HashMap and unsafe"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u8> = Some(1);
        v.unwrap();
        std::time::Instant::now();
        panic!("tests may panic");
    }

    // lint:zero_alloc
    #[test]
    fn zero_alloc_marker_is_inert_in_tests() {
        // R6 ignores `#[cfg(test)]` items even when annotated, and R8
        // and R9 are likewise test-exempt.
        let mut v = Vec::new();
        v.push(std::rc::Rc::new(1.5f64));
        let mut xs = [2.0f64, 1.0];
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
