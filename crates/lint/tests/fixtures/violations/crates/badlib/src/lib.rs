//! Fixture crate that violates every rule. Never compiled — only
//! scanned by the chainnet-lint integration tests. The crate root
//! deliberately lacks `#![forbid(unsafe_code)]` (R3).

use std::collections::HashMap; // R2: unordered map in a hot-path crate
use std::time::Instant;

pub struct Registry;

pub fn r1_panics(x: Option<u8>) -> u8 {
    let a = x.unwrap(); // R1
    let b = x.expect("boom"); // R1
    if a > b {
        panic!("nope"); // R1
    }
    todo!() // R1
}

pub fn r1_unimplemented() {
    unimplemented!() // R1
}

pub fn r2_nondeterminism(m: &HashMap<u8, u8>) -> usize {
    let _t = Instant::now(); // R2
    let _rng = thread_rng(); // R2
    m.len()
}

pub fn r3_unsafe_token(p: *const u8) -> u8 {
    unsafe { *p } // R3
}

pub fn r4_metrics(r: &Registry) {
    r.counter("code.only_metric").inc(); // R4: not in the README table
    r.gauge("Bad-Name").set(1.0); // R4: charset violation
}

pub fn r5_stringly() -> Result<(), String> {
    // R5
    Err("stringly".to_string())
}

pub fn r5_boxed() -> Result<(), Box<dyn std::error::Error>> {
    // R5
    Ok(())
}

// lint:allow(panic) missing the colon-reason — R0 malformed annotation
pub fn r0_bad_annotation() {}

pub fn masked_patterns_do_not_fire() -> &'static str {
    // None of the banned tokens below may produce a violation: they
    // sit in comments and string literals. `.unwrap()` / panic! /
    // Instant::now / HashMap / unsafe (comment mentions).
    "contains .unwrap() and .expect( and panic! and Instant::now and HashMap and unsafe"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u8> = Some(1);
        v.unwrap();
        std::time::Instant::now();
        panic!("tests may panic");
    }
}
