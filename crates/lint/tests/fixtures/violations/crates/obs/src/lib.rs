#![forbid(unsafe_code)]
//! Fixture obs crate: registers one properly documented metric.

pub struct Registry;

pub fn documented_metric(r: &Registry) {
    r.counter("ok.documented").inc();
}
