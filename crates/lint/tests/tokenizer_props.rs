//! Property test: the masking tokenizer never lets a banned pattern
//! that appears only inside string literals, doc comments or block
//! comments produce a rule violation, no matter how the fragments are
//! interleaved.

use chainnet_lint::rules::FileScan;
use chainnet_lint::tokenizer::mask;
use proptest::prelude::*;

/// Source fragments that *mention* every banned pattern but only in
/// masked positions (comments, strings, raw strings, char literals).
const MASKED_FRAGMENTS: &[&str] = &[
    "// line comment with .unwrap() and panic! and todo!\n",
    "/// doc comment: .expect(\"x\") and unimplemented! here\n",
    "//! inner doc: Instant::now() SystemTime::now thread_rng\n",
    "/* block with .unwrap() and HashMap and unsafe */\n",
    "/* nested /* .expect( SystemTime::now */ HashSet */\n",
    "let s = \".unwrap() panic! todo! unimplemented! unsafe\";\n",
    "let e = \"escaped quote \\\" then .expect( and more\";\n",
    "let r = r#\"raw \"quoted\" .unwrap() Instant::now\"#;\n",
    "let r2 = r\"raw no-hash thread_rng HashMap\";\n",
    "let b = b\"byte string with panic! inside\";\n",
    "let multi = \"line one\n.unwrap() on line two\npanic! on three\";\n",
    "let cs = c\"panic! .unwrap() inside a c-string\";\n",
    "let crs = cr#\"raw c \"quoted\" .expect( thread_rng from_entropy\"#;\n",
    "let cb = c\"RefCell Rc static mut partial_cmp\";\n",
];

/// Benign code fragments (no banned patterns at all) used as filler,
/// including the look-alikes that must never fire.
const CLEAN_FRAGMENTS: &[&str] = &[
    "fn helper<'a>(x: &'a str) -> usize { x.len() }\n",
    "let v = items.iter().map(|i| i + 1).collect::<Vec<_>>();\n",
    "let d = value.unwrap_or_default();\n",
    "let e = value.unwrap_or_else(|| 3);\n",
    "let f = result.expect_err;\n",
    "let c = 'x'; let q = '\\''; let bs = '\\\\';\n",
    "let map = std::collections::BTreeMap::<u8, u8>::new();\n",
    "struct MyHashMapAdapter;\n",
    "if depth > 0 { depth -= 1; }\n",
    "let r#unsafe = 1; let shadow = r#unsafe + 1;\n",
    "let r#fn = 2; let keyword_named = r#fn * 2;\n",
    "let xs = [2.0f64, 1.0]; let _s = xs[0].total_cmp(&xs[1]);\n",
];

fn assemble(choices: &[(bool, usize)]) -> String {
    let mut src = String::from("pub fn generated() {\n");
    for &(masked, idx) in choices {
        if masked {
            src.push_str(MASKED_FRAGMENTS[idx % MASKED_FRAGMENTS.len()]);
        } else {
            src.push_str(CLEAN_FRAGMENTS[idx % CLEAN_FRAGMENTS.len()]);
        }
    }
    src.push_str("}\n");
    src
}

/// Count the violations the region-insensitive rules produce
/// (panic, determinism, RNG, float-order, shared-state, unsafe).
fn violation_count(src: &str) -> usize {
    let masked = mask(src);
    let mut scan = FileScan::new(&masked);
    scan.rule_panic();
    scan.rule_determinism();
    scan.rule_rng_discipline();
    scan.rule_float_order();
    scan.rule_shared_state();
    scan.rule_unsafe_tokens();
    let mut out = Vec::new();
    scan.finish("generated.rs", &mut out);
    out.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any interleaving of masked-position mentions and clean filler
    /// must produce zero violations.
    #[test]
    fn no_false_positives_in_masked_positions(
        choices in proptest::collection::vec((proptest::bool::ANY, 0usize..64), 0..24)
    ) {
        let src = assemble(&choices);
        let n = violation_count(&src);
        prop_assert!(n == 0, "false positives in:\n{src}");
    }

    /// Sanity (detector is alive): appending one *real* violation to
    /// any generated body yields exactly one more violation.
    #[test]
    fn real_violation_still_detected(
        choices in proptest::collection::vec((proptest::bool::ANY, 0usize..64), 0..16)
    ) {
        let mut src = assemble(&choices);
        src.push_str("pub fn tail(v: Option<u8>) -> u8 { v.unwrap() }\n");
        let n = violation_count(&src);
        prop_assert!(n == 1, "expected exactly 1 violation in:\n{src}");
    }
}
