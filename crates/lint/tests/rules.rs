//! Integration tests: every rule R1–R9 fires on the bundled violation
//! fixtures and is suppressed by `lint:allow`; the binary exits
//! non-zero on the fixtures, zero on the real workspace.

use chainnet_lint::{run, Report, WorkspaceSpec};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_report() -> Report {
    let spec = WorkspaceSpec::discover(fixture_root()).expect("fixture layout");
    run(&spec).expect("lint run")
}

fn count(report: &Report, rule: &str, file_frag: &str) -> usize {
    report
        .violations
        .iter()
        .filter(|v| v.rule == rule && v.file.contains(file_frag))
        .count()
}

#[test]
fn r1_panic_fires_on_fixture() {
    let r = fixture_report();
    // unwrap, expect, panic!, todo!, unimplemented! — one violation each.
    assert_eq!(count(&r, "R1", "badlib"), 5, "{}", r.render_human());
}

#[test]
fn r2_determinism_fires_on_fixture() {
    let r = fixture_report();
    // HashMap (import + parameter), Instant::now. Ambient RNG moved
    // to R7 (rng_discipline) and no longer counts here.
    assert_eq!(count(&r, "R2", "badlib"), 3, "{}", r.render_human());
}

#[test]
fn r3_unsafe_fires_on_fixture() {
    let r = fixture_report();
    // Missing crate-root attribute + an `unsafe` block.
    assert_eq!(count(&r, "R3", "badlib"), 2, "{}", r.render_human());
}

#[test]
fn r4_obs_schema_fires_on_fixture() {
    let r = fixture_report();
    // Undocumented `code.only_metric` + charset-violating `Bad-Name`.
    assert_eq!(count(&r, "R4", "badlib"), 2, "{}", r.render_human());
    // Documented-but-unregistered `doc.only_metric` flags the README.
    assert_eq!(count(&r, "R4", "README.md"), 1, "{}", r.render_human());
    // The properly documented metric is clean.
    assert_eq!(count(&r, "R4", "crates/obs/src"), 0, "{}", r.render_human());
}

#[test]
fn r5_error_hygiene_fires_on_fixture() {
    let r = fixture_report();
    // Result<_, String> and Result<_, Box<dyn Error>>.
    assert_eq!(count(&r, "R5", "badlib"), 2, "{}", r.render_human());
}

#[test]
fn r6_alloc_hygiene_fires_only_in_zero_alloc_bodies() {
    let r = fixture_report();
    // Vec::new, .push, .collect, format! inside the one annotated fn;
    // the unannotated fn and the annotated #[cfg(test)] fn are free.
    assert_eq!(count(&r, "R6", "badlib"), 4, "{}", r.render_human());
}

#[test]
fn r7_rng_discipline_fires_on_fixture() {
    let r = fixture_report();
    // thread_rng, from_entropy, base_rng.clone().
    assert_eq!(count(&r, "R7", "badlib"), 3, "{}", r.render_human());
}

#[test]
fn r8_float_order_fires_once_per_site() {
    let r = fixture_report();
    // One unwrap-form sort_by, one unwrap_or-form max_by; the
    // total_cmp sort and the #[cfg(test)] sort are clean.
    assert_eq!(count(&r, "R8", "badlib"), 2, "{}", r.render_human());
}

#[test]
fn r9_shared_state_fires_on_fixture() {
    let r = fixture_report();
    // static mut, Rc::new, RefCell::new; the Rc in #[cfg(test)] is
    // exempt and `RefCell` does not double-count as `Cell`.
    assert_eq!(count(&r, "R9", "badlib"), 3, "{}", r.render_human());
}

#[test]
fn malformed_allow_is_flagged() {
    let r = fixture_report();
    assert_eq!(count(&r, "R0", "badlib"), 1, "{}", r.render_human());
}

#[test]
fn lint_allow_suppresses_and_test_code_is_exempt() {
    let r = fixture_report();
    // The `allowed` crate carries a well-formed annotation per site.
    let allowed: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.file.contains("allowed"))
        .collect();
    assert!(allowed.is_empty(), "{allowed:?}");
    // panic, determinism, error_hygiene, alloc_hygiene ×2,
    // rng_discipline, float_order (stacked with a panic allow), and
    // shared_state ×2 annotations were all honored, plus the R8
    // fixture's own panic allow in badlib.
    assert!(r.suppressed >= 11, "suppressed = {}", r.suppressed);
    // badlib's #[cfg(test)] module uses unwrap/Instant/panic! freely;
    // the counts asserted above prove none of those fired.
}

#[test]
fn binary_exits_nonzero_on_fixtures_and_writes_json() {
    let json_path = std::env::temp_dir().join("chainnet_lint_fixture_report.json");
    let out = Command::new(env!("CARGO_BIN_EXE_chainnet-lint"))
        .arg("--fixture-root")
        .arg(fixture_root())
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("run chainnet-lint");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let json = std::fs::read_to_string(&json_path).expect("json report written");
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let violations = parsed
        .get("violations")
        .and_then(|v| v.as_seq())
        .expect("violations array");
    assert!(!violations.is_empty());
    for v in violations {
        assert!(v.get("file").and_then(|f| f.as_str()).is_some());
        assert!(v.get("line").and_then(|l| l.as_u64()).is_some());
        assert!(v.get("rule").and_then(|r| r.as_str()).is_some());
        assert!(v.get("message").and_then(|m| m.as_str()).is_some());
    }
    let _ = std::fs::remove_file(&json_path);
}

#[test]
fn binary_rejects_bad_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_chainnet-lint"))
        .arg("--workspace")
        .arg("--nonsense")
        .output()
        .expect("run chainnet-lint");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn real_workspace_is_clean() {
    // The acceptance gate: the final tree must lint clean. Running it
    // here makes `cargo test` enforce the gate even without the CI job.
    let out = Command::new(env!("CARGO_BIN_EXE_chainnet-lint"))
        .arg("--workspace")
        .arg("--root")
        .arg(workspace_root())
        .output()
        .expect("run chainnet-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace has lint violations:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
