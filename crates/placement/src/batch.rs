//! Parallel batch optimization: solve many placement problems at once
//! across threads, each with its own evaluator instance. This is the
//! workhorse behind paper-scale sweeps ("100 randomly generated placement
//! problems", Section VIII-C1).

use crate::evaluator::Evaluator;
use crate::problem::PlacementProblem;
use crate::sa::{SaConfig, SaResult, SimulatedAnnealing};
use chainnet_qsim::{QsimError, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Solve every problem with its own evaluator, in parallel.
///
/// `make_evaluator(i)` builds a fresh evaluator for problem `i` — a
/// simulator config or a clone of a trained surrogate — so no state is
/// shared across threads. Results keep problem order. Problems whose
/// initial placement cannot be constructed produce an `Err` entry.
///
/// Work is distributed by a lock-free atomic index and each finished
/// `(index, result)` pair flows back over a channel to be reassembled in
/// problem order on the calling thread — workers never contend on a
/// shared results collection.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn optimize_batch<F, E>(
    problems: &[PlacementProblem],
    make_evaluator: F,
    sa_config: SaConfig,
    trials: usize,
    threads: usize,
) -> Vec<Result<SaResult>>
where
    F: Fn(usize) -> E + Sync,
    E: Evaluator,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<SaResult>>> = Vec::new();
    slots.resize_with(problems.len(), || None);

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, Result<SaResult>)>();
        for _ in 0..threads.max(1).min(problems.len().max(1)) {
            let tx = tx.clone();
            let next = &next;
            let make_evaluator = &make_evaluator;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(problem) = problems.get(i) else {
                    return;
                };
                let outcome = problem.initial_placement().map(|initial| {
                    let mut evaluator = make_evaluator(i);
                    let sa = SimulatedAnnealing::new(
                        sa_config.with_seed(sa_config.seed.wrapping_add(i as u64)),
                    );
                    sa.optimize(problem, &initial, &mut evaluator, trials)
                });
                // The receiver outlives every worker inside this scope;
                // a send can only fail after a receiver-side panic, which
                // already aborts the batch when the scope joins.
                let _ = tx.send((i, outcome));
            });
        }
        drop(tx);
        // Reassemble in problem order as results stream in; each index
        // arrives exactly once.
        for (i, outcome) in rx {
            slots[i] = Some(outcome);
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                Err(QsimError::InvalidModel(
                    "batch worker terminated early".into(),
                ))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SimEvaluator;
    use chainnet_qsim::model::{Device, Fragment, ServiceChain};
    use chainnet_qsim::sim::SimConfig;

    fn problems(n: usize) -> Vec<PlacementProblem> {
        (0..n)
            .map(|i| {
                let devices = vec![
                    Device::new(5.0, 0.3 + 0.05 * i as f64).unwrap(),
                    Device::new(30.0, 2.0).unwrap(),
                    Device::new(30.0, 2.0).unwrap(),
                ];
                let chains = vec![ServiceChain::new(
                    0.8,
                    vec![
                        Fragment::new(1.0, 1.0).unwrap(),
                        Fragment::new(1.0, 1.0).unwrap(),
                    ],
                )
                .unwrap()];
                PlacementProblem::new(devices, chains).unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_solves_all_problems_in_order() {
        let ps = problems(4);
        let results = optimize_batch(
            &ps,
            |i| SimEvaluator::new(SimConfig::new(200.0, i as u64)),
            SaConfig::paper_default().with_max_steps(8),
            1,
            2,
        );
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            let r = r.as_ref().expect("solved");
            assert!(
                r.best_objective >= r.initial_objective,
                "problem {i} regressed"
            );
        }
    }

    #[test]
    fn batch_matches_sequential_results() {
        let ps = problems(3);
        let cfg = SaConfig::paper_default().with_max_steps(6).with_seed(11);
        let parallel = optimize_batch(
            &ps,
            |i| SimEvaluator::new(SimConfig::new(150.0, 40 + i as u64)),
            cfg,
            1,
            3,
        );
        let sequential = optimize_batch(
            &ps,
            |i| SimEvaluator::new(SimConfig::new(150.0, 40 + i as u64)),
            cfg,
            1,
            1,
        );
        for (p, s) in parallel.iter().zip(&sequential) {
            let (p, s) = (p.as_ref().unwrap(), s.as_ref().unwrap());
            assert_eq!(p.best_placement, s.best_placement);
            assert_eq!(p.best_objective, s.best_objective);
        }
    }

    #[test]
    fn infeasible_problem_reports_error_without_poisoning_batch() {
        let mut ps = problems(2);
        // An impossible problem: fragment memory exceeds every device.
        let devices = vec![
            Device::new(0.5, 1.0).unwrap(),
            Device::new(0.5, 1.0).unwrap(),
        ];
        let chains = vec![ServiceChain::new(0.5, vec![Fragment::new(1.0, 1.0).unwrap()]).unwrap()];
        ps.push(PlacementProblem::new(devices, chains).unwrap());
        let results = optimize_batch(
            &ps,
            |i| SimEvaluator::new(SimConfig::new(100.0, i as u64)),
            SaConfig::paper_default().with_max_steps(4),
            1,
            2,
        );
        assert!(results[0].is_ok());
        assert!(results[1].is_ok());
        assert!(results[2].is_err());
    }
}
