//! Placement problems: the optimization instances of Eq. 2, and the
//! ranking-score initial placement of Section VIII-C2.

use chainnet_qsim::model::{Device, Placement, ServiceChain, SystemModel};
use chainnet_qsim::{QsimError, Result};
use serde::{Deserialize, Serialize};

/// A placement problem: devices and service chains to be deployed, without
/// a placement chosen yet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementProblem {
    /// Available edge devices (`D` of them).
    pub devices: Vec<Device>,
    /// Service chains to deploy (`C` of them).
    pub chains: Vec<ServiceChain>,
}

impl PlacementProblem {
    /// Create a problem.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidModel`] if devices or chains are empty,
    /// or if some chain has more fragments than there are devices (each
    /// fragment of a chain must run on a separate device).
    pub fn new(devices: Vec<Device>, chains: Vec<ServiceChain>) -> Result<Self> {
        if devices.is_empty() {
            return Err(QsimError::InvalidModel("no devices".into()));
        }
        if chains.is_empty() {
            return Err(QsimError::InvalidModel("no chains".into()));
        }
        for (i, c) in chains.iter().enumerate() {
            if c.len() > devices.len() {
                return Err(QsimError::InvalidModel(format!(
                    "chain {i} has {} fragments but only {} devices exist",
                    c.len(),
                    devices.len()
                )));
            }
        }
        Ok(Self { devices, chains })
    }

    /// Number of devices `D`.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Number of chains `C`.
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// Total offered rate `λ_total`.
    pub fn total_arrival_rate(&self) -> f64 {
        self.chains.iter().map(|c| c.arrival_rate).sum()
    }

    /// Bind a placement to this problem, validating structure.
    ///
    /// # Errors
    ///
    /// Same as [`SystemModel::new`].
    pub fn bind(&self, placement: Placement) -> Result<SystemModel> {
        SystemModel::new(self.devices.clone(), self.chains.clone(), placement)
    }

    /// Whether `placement` satisfies the Eq. 2 memory constraint and the
    /// one-device-per-fragment-of-a-chain rule.
    pub fn is_feasible(&self, placement: &Placement) -> bool {
        // Distinct devices within each chain.
        for i in 0..placement.num_chains() {
            let route = placement.chain_route(i);
            let mut seen = route.to_vec();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != route.len() {
                return false;
            }
        }
        match self.bind(placement.clone()) {
            Ok(model) => model.memory_feasible(),
            Err(_) => false,
        }
    }

    /// The ranking-score initial placement (Section VIII-C2): devices are
    /// ranked with unused devices first, then by remaining memory; each
    /// fragment is assigned to the top-ranked device (excluding devices
    /// already used by its own chain), updating scores as we go. The
    /// intent is a vanilla deployment that spreads load across as many
    /// devices as possible.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::InvalidPlacement`] if no feasible assignment
    /// exists for some fragment under the greedy rule.
    pub fn initial_placement(&self) -> Result<Placement> {
        let d = self.devices.len();
        let mut remaining: Vec<f64> = self.devices.iter().map(|dev| dev.memory).collect();
        let mut used = vec![false; d];
        let mut assignment: Vec<Vec<usize>> = Vec::with_capacity(self.chains.len());

        for (i, chain) in self.chains.iter().enumerate() {
            let mut route: Vec<usize> = Vec::with_capacity(chain.len());
            for (j, frag) in chain.fragments.iter().enumerate() {
                // Rank: unused first, then larger remaining memory; require
                // enough memory for the fragment and no reuse within chain.
                let best = (0..d)
                    .filter(|k| !route.contains(k))
                    .filter(|&k| remaining[k] >= frag.mem)
                    .max_by(|&a, &b| {
                        let key = |k: usize| (!used[k], remaining[k]);
                        let (ua, ra) = key(a);
                        let (ub, rb) = key(b);
                        ua.cmp(&ub).then(ra.total_cmp(&rb))
                    });
                let Some(k) = best else {
                    return Err(QsimError::InvalidPlacement(format!(
                        "no device can host fragment {j} of chain {i}"
                    )));
                };
                remaining[k] -= frag.mem;
                used[k] = true;
                route.push(k);
            }
            assignment.push(route);
        }
        Ok(Placement::new(assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainnet_qsim::model::Fragment;

    fn problem(nd: usize, lens: &[usize]) -> PlacementProblem {
        let devices = (0..nd)
            .map(|k| Device::new(10.0 + k as f64, 1.0).unwrap())
            .collect();
        let chains = lens
            .iter()
            .map(|&l| {
                ServiceChain::new(
                    0.5,
                    (0..l).map(|_| Fragment::new(1.0, 1.0).unwrap()).collect(),
                )
                .unwrap()
            })
            .collect();
        PlacementProblem::new(devices, chains).unwrap()
    }

    #[test]
    fn initial_placement_is_feasible() {
        let p = problem(6, &[3, 2, 4]);
        let init = p.initial_placement().unwrap();
        assert!(p.is_feasible(&init));
    }

    #[test]
    fn initial_placement_spreads_across_devices() {
        // 4 devices, one 2-fragment chain: both fragments land on distinct
        // unused devices.
        let p = problem(4, &[2]);
        let init = p.initial_placement().unwrap();
        let route = init.chain_route(0);
        assert_ne!(route[0], route[1]);
    }

    #[test]
    fn initial_placement_prefers_unused_devices() {
        let p = problem(5, &[2, 2]);
        let init = p.initial_placement().unwrap();
        // With 5 devices and 4 fragments, the greedy rule touches 4
        // distinct devices before reusing any.
        let used = init.used_devices();
        assert_eq!(used.len(), 4);
    }

    #[test]
    fn feasibility_rejects_duplicate_device_in_chain() {
        let p = problem(3, &[2]);
        let bad = Placement::new(vec![vec![0, 0]]);
        assert!(!p.is_feasible(&bad));
    }

    #[test]
    fn feasibility_rejects_memory_overflow() {
        let devices = vec![
            Device::new(1.5, 1.0).unwrap(),
            Device::new(10.0, 1.0).unwrap(),
        ];
        let chains = vec![
            ServiceChain::new(0.5, vec![Fragment::new(1.0, 1.0).unwrap()]).unwrap(),
            ServiceChain::new(0.5, vec![Fragment::new(1.0, 1.0).unwrap()]).unwrap(),
        ];
        let p = PlacementProblem::new(devices, chains).unwrap();
        // Both fragments on device 0: 2.0 > 1.5.
        let bad = Placement::new(vec![vec![0], vec![0]]);
        assert!(!p.is_feasible(&bad));
        let ok = Placement::new(vec![vec![0], vec![1]]);
        assert!(p.is_feasible(&ok));
    }

    #[test]
    fn rejects_chain_longer_than_device_count() {
        let devices = vec![Device::new(10.0, 1.0).unwrap()];
        let chains = vec![ServiceChain::new(
            0.5,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
            ],
        )
        .unwrap()];
        assert!(PlacementProblem::new(devices, chains).is_err());
    }

    #[test]
    fn initial_placement_errors_when_memory_exhausted() {
        let devices = vec![
            Device::new(0.5, 1.0).unwrap(),
            Device::new(0.5, 1.0).unwrap(),
        ];
        let chains = vec![ServiceChain::new(0.5, vec![Fragment::new(1.0, 1.0).unwrap()]).unwrap()];
        let p = PlacementProblem::new(devices, chains).unwrap();
        assert!(p.initial_placement().is_err());
    }
}
