//! Objective-function evaluators: the search maximizes total throughput
//! `X_total(p)` (Eq. 2), estimated either by queueing simulation (the
//! paper's baseline search) or by a GNN surrogate (ChainNet's search).

use crate::problem::PlacementProblem;
use chainnet::graph::PlacementGraph;
use chainnet::model::Surrogate;
use chainnet_qsim::approx::{solve, ApproxConfig};
use chainnet_qsim::model::Placement;
use chainnet_qsim::sim::{SimConfig, Simulator};

/// Estimates `X_total(p)` for candidate placements.
pub trait Evaluator {
    /// Human-readable evaluator name ("simulation", model name, …).
    fn name(&self) -> &str;

    /// Estimated total throughput of `placement` for `problem`.
    ///
    /// Infeasible placements are never passed here: the search only
    /// proposes feasible candidates.
    fn total_throughput(&mut self, problem: &PlacementProblem, placement: &Placement) -> f64;

    /// Number of objective evaluations performed so far.
    fn evaluations(&self) -> u64;
}

/// Ground-truth evaluator backed by the discrete-event simulator. The
/// same seed is reused for every evaluation so the objective is a
/// deterministic function of the placement.
#[derive(Debug, Clone)]
pub struct SimEvaluator {
    config: SimConfig,
    count: u64,
}

impl SimEvaluator {
    /// Create a simulator-backed evaluator.
    pub fn new(config: SimConfig) -> Self {
        Self { config, count: 0 }
    }

    /// The simulation configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }
}

impl Evaluator for SimEvaluator {
    fn name(&self) -> &str {
        "simulation"
    }

    fn total_throughput(&mut self, problem: &PlacementProblem, placement: &Placement) -> f64 {
        self.count += 1;
        let model = problem
            .bind(placement.clone())
            .expect("search proposes structurally valid placements");
        Simulator::new()
            .run(&model, &self.config)
            .expect("simulation of a valid model succeeds")
            .total_throughput
    }

    fn evaluations(&self) -> u64 {
        self.count
    }
}

/// Surrogate evaluator backed by any trained [`Surrogate`] (ChainNet, GIN
/// or GAT): builds the placement graph with the model's feature mode and
/// sums the predicted per-chain throughputs.
#[derive(Debug, Clone)]
pub struct GnnEvaluator<S> {
    model: S,
    count: u64,
}

impl<S: Surrogate> GnnEvaluator<S> {
    /// Wrap a trained surrogate model.
    pub fn new(model: S) -> Self {
        Self { model, count: 0 }
    }

    /// Access the wrapped model.
    pub fn model(&self) -> &S {
        &self.model
    }

    /// Unwrap the model.
    pub fn into_model(self) -> S {
        self.model
    }
}

impl<S: Surrogate> Evaluator for GnnEvaluator<S> {
    fn name(&self) -> &str {
        self.model.name()
    }

    fn total_throughput(&mut self, problem: &PlacementProblem, placement: &Placement) -> f64 {
        self.count += 1;
        let model = problem
            .bind(placement.clone())
            .expect("search proposes structurally valid placements");
        let graph = PlacementGraph::from_model(&model, self.model.config().feature_mode);
        self.model
            .predict(&graph)
            .iter()
            .map(|p| p.throughput)
            .sum()
    }

    fn evaluations(&self) -> u64 {
        self.count
    }
}

/// Analytic evaluator backed by the fixed-point decomposition
/// approximation ([`chainnet_qsim::approx`]): orders of magnitude faster
/// than simulation, coarser than a trained surrogate. Useful as a
/// zero-training baseline for the search.
#[derive(Debug, Clone, Default)]
pub struct ApproxEvaluator {
    config: ApproxConfig,
    count: u64,
}

impl ApproxEvaluator {
    /// Create an analytic evaluator.
    pub fn new(config: ApproxConfig) -> Self {
        Self { config, count: 0 }
    }
}

impl Evaluator for ApproxEvaluator {
    fn name(&self) -> &str {
        "decomposition"
    }

    fn total_throughput(&mut self, problem: &PlacementProblem, placement: &Placement) -> f64 {
        self.count += 1;
        let model = problem
            .bind(placement.clone())
            .expect("search proposes structurally valid placements");
        solve(&model, &self.config).total_throughput
    }

    fn evaluations(&self) -> u64 {
        self.count
    }
}

/// Loss probability of a placement given its total throughput (Eq. 18).
pub fn loss_probability(total_arrival_rate: f64, total_throughput: f64) -> f64 {
    ((total_arrival_rate - total_throughput) / total_arrival_rate).clamp(0.0, 1.0)
}

/// Relative loss reduction of an optimized placement vs. the initial one
/// (Eq. 19). Returns 0 when the initial placement already has zero loss.
/// Clamped to `[-1, 1]`: with simulated (noisy) throughputs the raw ratio
/// can explode when the initial loss is tiny, which would let a single
/// lightly-loaded problem dominate a mean.
pub fn relative_loss_reduction(
    total_arrival_rate: f64,
    initial_throughput: f64,
    optimized_throughput: f64,
) -> f64 {
    let denom = total_arrival_rate - initial_throughput;
    if denom <= 0.0 {
        0.0
    } else {
        ((optimized_throughput - initial_throughput) / denom).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainnet::config::ModelConfig;
    use chainnet::model::ChainNet;
    use chainnet_qsim::model::{Device, Fragment, ServiceChain};

    fn problem() -> PlacementProblem {
        let devices = vec![
            Device::new(10.0, 1.0).unwrap(),
            Device::new(10.0, 2.0).unwrap(),
        ];
        let chains = vec![ServiceChain::new(
            0.5,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
            ],
        )
        .unwrap()];
        PlacementProblem::new(devices, chains).unwrap()
    }

    #[test]
    fn sim_evaluator_counts_and_estimates() {
        let p = problem();
        let placement = Placement::new(vec![vec![0, 1]]);
        let mut ev = SimEvaluator::new(SimConfig::new(5_000.0, 1));
        let x = ev.total_throughput(&p, &placement);
        assert!(x > 0.0 && x <= 0.55);
        assert_eq!(ev.evaluations(), 1);
    }

    #[test]
    fn sim_evaluator_is_deterministic() {
        let p = problem();
        let placement = Placement::new(vec![vec![0, 1]]);
        let mut ev = SimEvaluator::new(SimConfig::new(2_000.0, 7));
        let a = ev.total_throughput(&p, &placement);
        let b = ev.total_throughput(&p, &placement);
        assert_eq!(a, b);
    }

    #[test]
    fn gnn_evaluator_wraps_surrogate() {
        let p = problem();
        let placement = Placement::new(vec![vec![0, 1]]);
        let net = ChainNet::new(ModelConfig::small(), 9);
        let mut ev = GnnEvaluator::new(net);
        let x = ev.total_throughput(&p, &placement);
        assert!((0.0..=0.5 + 1e-9).contains(&x));
        assert_eq!(ev.evaluations(), 1);
        assert_eq!(ev.name(), "ChainNet");
    }

    #[test]
    fn approx_evaluator_ranks_like_simulation() {
        let p = problem();
        let good = Placement::new(vec![vec![1, 0]]); // fast device first
        let bad = Placement::new(vec![vec![0, 1]]);
        let mut approx = ApproxEvaluator::default();
        let (xa_good, xa_bad) = (
            approx.total_throughput(&p, &good),
            approx.total_throughput(&p, &bad),
        );
        assert_eq!(approx.evaluations(), 2);
        // Both stations underloaded: throughput near lambda either way,
        // but the evaluator must stay within the offered rate.
        assert!(xa_good <= 0.5 + 1e-9 && xa_bad <= 0.5 + 1e-9);
        assert!(xa_good > 0.0 && xa_bad > 0.0);
    }

    #[test]
    fn loss_probability_formula() {
        assert!((loss_probability(2.0, 1.5) - 0.25).abs() < 1e-12);
        assert_eq!(loss_probability(2.0, 2.5), 0.0); // clamped
    }

    #[test]
    fn relative_reduction_formula() {
        // Initial X = 1.0 of λ = 2.0 (loss 0.5); optimized X = 1.8
        // (loss 0.1): reduction = (1.8 - 1.0) / (2.0 - 1.0) = 0.8.
        assert!((relative_loss_reduction(2.0, 1.0, 1.8) - 0.8).abs() < 1e-12);
        assert_eq!(relative_loss_reduction(2.0, 2.0, 2.0), 0.0);
    }
}
