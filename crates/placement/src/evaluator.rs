//! Objective-function evaluators: the search maximizes total throughput
//! `X_total(p)` (Eq. 2), estimated either by queueing simulation (the
//! paper's baseline search) or by a GNN surrogate (ChainNet's search).

use crate::error::PlacementError;
use crate::problem::PlacementProblem;
use chainnet::graph::PlacementGraph;
use chainnet::model::Surrogate;
use chainnet_obs::{Obs, Tracer};
use chainnet_qsim::approx::{solve, ApproxConfig};
use chainnet_qsim::model::Placement;
use chainnet_qsim::sim::{SimConfig, Simulator};
use chainnet_qsim::QsimError;

/// Estimates `X_total(p)` for candidate placements.
pub trait Evaluator {
    /// Human-readable evaluator name ("simulation", model name, …).
    fn name(&self) -> &str;

    /// Estimated total throughput of `placement` for `problem`.
    ///
    /// Infeasible placements are never passed here: the search only
    /// proposes feasible candidates.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] when the estimate cannot be produced
    /// — a structurally invalid binding, a simulation failure, or a
    /// non-finite prediction. Search drivers treat a failed candidate
    /// as rejected and keep going; wrap evaluators in a
    /// [`ResilientEvaluator`] to retry and fall back instead.
    fn total_throughput(
        &mut self,
        problem: &PlacementProblem,
        placement: &Placement,
    ) -> Result<f64, PlacementError>;

    /// Number of objective evaluations performed so far.
    fn evaluations(&self) -> u64;

    /// Install a span tracer for self-profiling. Evaluators that do
    /// interesting work record phase spans (`neural.forward`,
    /// `neural.matmul`) under the driver's `sa.*` spans; the default is
    /// a no-op, and tracing never changes any computed value. Wrappers
    /// forward the tracer to their inner evaluators.
    fn set_tracer(&mut self, _tracer: Tracer) {}
}

/// An [`Evaluator`] that can score a whole set of candidate placements at
/// once. The neighborhood SA driver
/// ([`SimulatedAnnealing::optimize_neighborhood_observed`](crate::sa::SimulatedAnnealing::optimize_neighborhood_observed))
/// hands it every candidate of a step in one call, letting surrogate
/// backends amortize a single batched forward pass over the neighborhood.
///
/// The provided default simply loops over
/// [`Evaluator::total_throughput`]; [`GnnEvaluator`] overrides it with
/// [`Surrogate::predict_batch`], which is bit-identical to the loop, so
/// callers may treat the two paths as interchangeable.
pub trait BatchEvaluator: Evaluator {
    /// Estimate `X_total` for each placement, in input order. Per-candidate
    /// failures are per-slot `Err`s; one bad candidate never poisons the
    /// rest of the batch.
    fn total_throughput_batch(
        &mut self,
        problem: &PlacementProblem,
        placements: &[Placement],
    ) -> Vec<Result<f64, PlacementError>> {
        placements
            .iter()
            .map(|p| self.total_throughput(problem, p))
            .collect()
    }
}

impl BatchEvaluator for SimEvaluator {}
impl BatchEvaluator for ApproxEvaluator {}

/// Ground-truth evaluator backed by the discrete-event simulator. The
/// same seed is reused for every evaluation so the objective is a
/// deterministic function of the placement.
#[derive(Debug, Clone)]
pub struct SimEvaluator {
    config: SimConfig,
    count: u64,
}

impl SimEvaluator {
    /// Create a simulator-backed evaluator.
    pub fn new(config: SimConfig) -> Self {
        Self { config, count: 0 }
    }

    /// The simulation configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }
}

impl Evaluator for SimEvaluator {
    fn name(&self) -> &str {
        "simulation"
    }

    /// # Errors
    ///
    /// Structural binding errors propagate. A run that exhausts its
    /// simulation budget degrades gracefully: the best-effort partial
    /// statistics still rank candidates, so their truncated throughput
    /// is returned instead of an error.
    fn total_throughput(
        &mut self,
        problem: &PlacementProblem,
        placement: &Placement,
    ) -> Result<f64, PlacementError> {
        self.count += 1;
        let model = problem.bind(placement.clone())?;
        match Simulator::new().run(&model, &self.config) {
            Ok(result) => Ok(result.total_throughput),
            Err(QsimError::BudgetExceeded { partial, .. }) => Ok(partial.total_throughput),
            Err(e) => Err(e.into()),
        }
    }

    fn evaluations(&self) -> u64 {
        self.count
    }
}

/// Surrogate evaluator backed by any trained [`Surrogate`] (ChainNet, GIN
/// or GAT): builds the placement graph with the model's feature mode and
/// sums the predicted per-chain throughputs.
#[derive(Debug, Clone)]
pub struct GnnEvaluator<S> {
    model: S,
    count: u64,
    tracer: Tracer,
}

impl<S: Surrogate> GnnEvaluator<S> {
    /// Wrap a trained surrogate model.
    pub fn new(model: S) -> Self {
        Self {
            model,
            count: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Access the wrapped model.
    pub fn model(&self) -> &S {
        &self.model
    }

    /// Unwrap the model.
    pub fn into_model(self) -> S {
        self.model
    }
}

impl<S: Surrogate> Evaluator for GnnEvaluator<S> {
    fn name(&self) -> &str {
        self.model.name()
    }

    /// # Errors
    ///
    /// Structural binding errors propagate, and a non-finite prediction
    /// (a diverged or corrupted surrogate) is reported as
    /// [`PlacementError::NonFiniteObjective`] rather than poisoning the
    /// search's best-so-far bookkeeping.
    fn total_throughput(
        &mut self,
        problem: &PlacementProblem,
        placement: &Placement,
    ) -> Result<f64, PlacementError> {
        self.count += 1;
        let model = problem.bind(placement.clone())?;
        let graph = PlacementGraph::from_model(&model, self.model.config().feature_mode);
        let fwd_span = self.tracer.span("neural.forward");
        let preds = self.model.predict(&graph);
        fwd_span.close();
        let total: f64 = preds.iter().map(|p| p.throughput).sum();
        if total.is_finite() {
            Ok(total)
        } else {
            Err(PlacementError::NonFiniteObjective {
                evaluator: self.model.name().to_string(),
                value: total,
            })
        }
    }

    fn evaluations(&self) -> u64 {
        self.count
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

impl<S: Surrogate> BatchEvaluator for GnnEvaluator<S> {
    /// One batched surrogate forward pass over the whole candidate set
    /// (bit-identical to the per-candidate loop — see
    /// [`Surrogate::predict_batch`]). Candidates that fail to bind get a
    /// per-slot error; the rest are still evaluated together.
    // lint:zero_alloc
    fn total_throughput_batch(
        &mut self,
        problem: &PlacementProblem,
        placements: &[Placement],
    ) -> Vec<Result<f64, PlacementError>> {
        self.count += placements.len() as u64;
        let mode = self.model.config().feature_mode;
        let mut graphs = Vec::with_capacity(placements.len());
        let bind_errs: Vec<Option<PlacementError>> = placements
            .iter()
            // lint:allow(alloc_hygiene): bind takes the placement by
            // value, so one small assignment-vec clone per candidate
            // is the API minimum
            .map(|p| match problem.bind(p.clone()) {
                Ok(model) => {
                    // lint:allow(alloc_hygiene): graphs is pre-reserved
                    // to placements.len() above; this push cannot
                    // reallocate
                    graphs.push(PlacementGraph::from_model(&model, mode));
                    None
                }
                Err(e) => Some(e.into()),
            })
            // lint:allow(alloc_hygiene): one bind-error vec per batch,
            // amortized over the whole candidate set
            .collect();
        // The stacked blocked-matmul kernel phase of batched inference.
        let matmul_span = self.tracer.span("neural.matmul");
        let batch_preds = self.model.predict_batch(&graphs);
        matmul_span.close();
        let mut totals = batch_preds
            .into_iter()
            .map(|preds| preds.iter().map(|p| p.throughput).sum::<f64>());
        bind_errs
            .into_iter()
            .map(|err| match err {
                Some(e) => Err(e),
                None => {
                    // One prediction per bound graph, in order; a missing
                    // slot cannot happen but degrades to a typed error.
                    let total = totals.next().unwrap_or(f64::NAN);
                    if total.is_finite() {
                        Ok(total)
                    } else {
                        Err(PlacementError::NonFiniteObjective {
                            // lint:allow(alloc_hygiene): cold error
                            // path — a non-finite objective aborts the
                            // search anyway
                            evaluator: self.model.name().to_string(),
                            value: total,
                        })
                    }
                }
            })
            // lint:allow(alloc_hygiene): the batch's result vec — the
            // function's return value, one allocation per batch
            .collect()
    }
}

/// Analytic evaluator backed by the fixed-point decomposition
/// approximation ([`chainnet_qsim::approx`]): orders of magnitude faster
/// than simulation, coarser than a trained surrogate. Useful as a
/// zero-training baseline for the search.
#[derive(Debug, Clone, Default)]
pub struct ApproxEvaluator {
    config: ApproxConfig,
    count: u64,
}

impl ApproxEvaluator {
    /// Create an analytic evaluator.
    pub fn new(config: ApproxConfig) -> Self {
        Self { config, count: 0 }
    }
}

impl Evaluator for ApproxEvaluator {
    fn name(&self) -> &str {
        "decomposition"
    }

    /// # Errors
    ///
    /// Structural binding errors propagate; a non-finite fixed point
    /// (the decomposition failing to converge to a number) is reported
    /// as [`PlacementError::NonFiniteObjective`].
    fn total_throughput(
        &mut self,
        problem: &PlacementProblem,
        placement: &Placement,
    ) -> Result<f64, PlacementError> {
        self.count += 1;
        let model = problem.bind(placement.clone())?;
        let total = solve(&model, &self.config).total_throughput;
        if total.is_finite() {
            Ok(total)
        } else {
            Err(PlacementError::NonFiniteObjective {
                evaluator: "decomposition".to_string(),
                value: total,
            })
        }
    }

    fn evaluations(&self) -> u64 {
        self.count
    }
}

/// Graceful-degradation wrapper: evaluate with `primary`, retry once on
/// failure, then fall back to `fallback` (typically an analytic or
/// simulator evaluator backing a possibly-corrupt surrogate). Fallback
/// evaluations are counted and, with an enabled [`Obs`], recorded on the
/// `sa.fallback_evals` counter.
#[derive(Debug, Clone)]
pub struct ResilientEvaluator<P, F> {
    primary: P,
    fallback: F,
    obs: Obs,
    name: String,
    retries: u64,
    fallback_evals: u64,
}

impl<P: Evaluator, F: Evaluator> ResilientEvaluator<P, F> {
    /// Wrap `primary` with a `fallback`, without telemetry.
    pub fn new(primary: P, fallback: F) -> Self {
        Self::new_observed(primary, fallback, Obs::disabled())
    }

    /// Like [`ResilientEvaluator::new`], recording `sa.fallback_evals`
    /// into `obs` whenever the fallback is consulted.
    pub fn new_observed(primary: P, fallback: F, obs: Obs) -> Self {
        let name = format!("resilient({} -> {})", primary.name(), fallback.name());
        Self {
            primary,
            fallback,
            obs,
            name,
            retries: 0,
            fallback_evals: 0,
        }
    }

    /// The wrapped primary evaluator.
    pub fn primary(&self) -> &P {
        &self.primary
    }

    /// The wrapped fallback evaluator.
    pub fn fallback(&self) -> &F {
        &self.fallback
    }

    /// How many times a failed primary evaluation succeeded on retry.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// How many evaluations were answered by the fallback.
    pub fn fallback_evals(&self) -> u64 {
        self.fallback_evals
    }
}

impl<P: Evaluator, F: Evaluator> Evaluator for ResilientEvaluator<P, F> {
    fn name(&self) -> &str {
        &self.name
    }

    /// # Errors
    ///
    /// Fails only when the primary fails twice *and* the fallback also
    /// fails for the same candidate.
    fn total_throughput(
        &mut self,
        problem: &PlacementProblem,
        placement: &Placement,
    ) -> Result<f64, PlacementError> {
        if let Ok(x) = self.primary.total_throughput(problem, placement) {
            return Ok(x);
        }
        // Retry once: transient failures (e.g. a wall-clock budget trip
        // under load) can clear; deterministic ones fail fast again.
        if let Ok(x) = self.primary.total_throughput(problem, placement) {
            self.retries += 1;
            return Ok(x);
        }
        self.fallback_evals += 1;
        if self.obs.is_enabled() {
            self.obs.registry.counter("sa.fallback_evals").inc();
        }
        self.fallback.total_throughput(problem, placement)
    }

    fn evaluations(&self) -> u64 {
        self.primary.evaluations() + self.fallback.evaluations()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.primary.set_tracer(tracer.clone());
        self.fallback.set_tracer(tracer);
    }
}

// Batch calls go through the default per-candidate loop so the
// retry-then-fall-back policy applies to each candidate individually.
impl<P: Evaluator, F: Evaluator> BatchEvaluator for ResilientEvaluator<P, F> {}

/// Loss probability of a placement given its total throughput (Eq. 18).
pub fn loss_probability(total_arrival_rate: f64, total_throughput: f64) -> f64 {
    ((total_arrival_rate - total_throughput) / total_arrival_rate).clamp(0.0, 1.0)
}

/// Relative loss reduction of an optimized placement vs. the initial one
/// (Eq. 19). Returns 0 when the initial placement already has zero loss.
/// Clamped to `[-1, 1]`: with simulated (noisy) throughputs the raw ratio
/// can explode when the initial loss is tiny, which would let a single
/// lightly-loaded problem dominate a mean.
pub fn relative_loss_reduction(
    total_arrival_rate: f64,
    initial_throughput: f64,
    optimized_throughput: f64,
) -> f64 {
    let denom = total_arrival_rate - initial_throughput;
    if denom <= 0.0 {
        0.0
    } else {
        ((optimized_throughput - initial_throughput) / denom).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainnet::config::ModelConfig;
    use chainnet::model::ChainNet;
    use chainnet_qsim::model::{Device, Fragment, ServiceChain};

    fn problem() -> PlacementProblem {
        let devices = vec![
            Device::new(10.0, 1.0).unwrap(),
            Device::new(10.0, 2.0).unwrap(),
        ];
        let chains = vec![ServiceChain::new(
            0.5,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
            ],
        )
        .unwrap()];
        PlacementProblem::new(devices, chains).unwrap()
    }

    #[test]
    fn sim_evaluator_counts_and_estimates() {
        let p = problem();
        let placement = Placement::new(vec![vec![0, 1]]);
        let mut ev = SimEvaluator::new(SimConfig::new(5_000.0, 1));
        let x = ev.total_throughput(&p, &placement).unwrap();
        assert!(x > 0.0 && x <= 0.55);
        assert_eq!(ev.evaluations(), 1);
    }

    #[test]
    fn sim_evaluator_is_deterministic() {
        let p = problem();
        let placement = Placement::new(vec![vec![0, 1]]);
        let mut ev = SimEvaluator::new(SimConfig::new(2_000.0, 7));
        let a = ev.total_throughput(&p, &placement).unwrap();
        let b = ev.total_throughput(&p, &placement).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sim_evaluator_degrades_to_partial_stats_on_budget_trip() {
        let p = problem();
        let placement = Placement::new(vec![vec![0, 1]]);
        // A tiny event cap trips on every run; the evaluator still
        // produces a usable (truncated-window) estimate.
        let mut ev = SimEvaluator::new(SimConfig::new(1_000_000.0, 1).with_max_events(2_000));
        let x = ev.total_throughput(&p, &placement).unwrap();
        assert!(x.is_finite() && x >= 0.0);
    }

    #[test]
    fn gnn_evaluator_wraps_surrogate() {
        let p = problem();
        let placement = Placement::new(vec![vec![0, 1]]);
        let net = ChainNet::new(ModelConfig::small(), 9);
        let mut ev = GnnEvaluator::new(net);
        let x = ev.total_throughput(&p, &placement).unwrap();
        assert!((0.0..=0.5 + 1e-9).contains(&x));
        assert_eq!(ev.evaluations(), 1);
        assert_eq!(ev.name(), "ChainNet");
    }

    #[test]
    fn gnn_batch_matches_sequential_bitwise() {
        let p = problem();
        let placements = vec![
            Placement::new(vec![vec![0, 1]]),
            Placement::new(vec![vec![1, 0]]),
        ];
        let net = ChainNet::new(ModelConfig::small(), 9);
        let mut seq = GnnEvaluator::new(net.clone());
        let mut bat = GnnEvaluator::new(net);
        let batched = bat.total_throughput_batch(&p, &placements);
        for (placement, b) in placements.iter().zip(&batched) {
            let s = seq.total_throughput(&p, placement).unwrap();
            assert_eq!(s.to_bits(), b.as_ref().unwrap().to_bits());
        }
        // Batched calls count one evaluation per candidate.
        assert_eq!(bat.evaluations(), 2);
    }

    #[test]
    fn gnn_batch_isolates_unbindable_candidates() {
        let p = problem();
        let placements = vec![
            Placement::new(vec![vec![0, 1]]),
            // Device index out of range: cannot bind.
            Placement::new(vec![vec![0, 7]]),
            Placement::new(vec![vec![1, 0]]),
        ];
        let mut ev = GnnEvaluator::new(ChainNet::new(ModelConfig::small(), 9));
        let out = ev.total_throughput_batch(&p, &placements);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
        assert_eq!(ev.evaluations(), 3);
    }

    #[test]
    fn default_batch_impl_loops_over_candidates() {
        let p = problem();
        let placements = vec![
            Placement::new(vec![vec![0, 1]]),
            Placement::new(vec![vec![1, 0]]),
        ];
        let mut ev = SimEvaluator::new(SimConfig::new(1_000.0, 3));
        let batched = ev.total_throughput_batch(&p, &placements);
        let mut fresh = SimEvaluator::new(SimConfig::new(1_000.0, 3));
        for (placement, b) in placements.iter().zip(&batched) {
            let s = fresh.total_throughput(&p, placement).unwrap();
            assert_eq!(s, *b.as_ref().unwrap());
        }
        assert_eq!(ev.evaluations(), 2);
    }

    #[test]
    fn approx_evaluator_ranks_like_simulation() {
        let p = problem();
        let good = Placement::new(vec![vec![1, 0]]); // fast device first
        let bad = Placement::new(vec![vec![0, 1]]);
        let mut approx = ApproxEvaluator::default();
        let (xa_good, xa_bad) = (
            approx.total_throughput(&p, &good).unwrap(),
            approx.total_throughput(&p, &bad).unwrap(),
        );
        assert_eq!(approx.evaluations(), 2);
        // Both stations underloaded: throughput near lambda either way,
        // but the evaluator must stay within the offered rate.
        assert!(xa_good <= 0.5 + 1e-9 && xa_bad <= 0.5 + 1e-9);
        assert!(xa_good > 0.0 && xa_bad > 0.0);
    }

    /// Always fails, as a rigged "corrupted surrogate" stand-in.
    struct AlwaysFails {
        count: u64,
    }

    impl Evaluator for AlwaysFails {
        fn name(&self) -> &str {
            "always-fails"
        }
        fn total_throughput(
            &mut self,
            _problem: &PlacementProblem,
            _placement: &Placement,
        ) -> Result<f64, PlacementError> {
            self.count += 1;
            Err(PlacementError::NonFiniteObjective {
                evaluator: "always-fails".into(),
                value: f64::NAN,
            })
        }
        fn evaluations(&self) -> u64 {
            self.count
        }
    }

    #[test]
    fn resilient_evaluator_falls_back_after_one_retry() {
        let p = problem();
        let placement = Placement::new(vec![vec![0, 1]]);
        let obs = chainnet_obs::Obs::enabled();
        let mut ev = ResilientEvaluator::new_observed(
            AlwaysFails { count: 0 },
            SimEvaluator::new(SimConfig::new(1_000.0, 3)),
            obs.clone(),
        );
        let x = ev.total_throughput(&p, &placement).unwrap();
        assert!(x.is_finite() && x > 0.0);
        // Primary tried twice (initial + one retry), fallback once.
        assert_eq!(ev.primary().evaluations(), 2);
        assert_eq!(ev.fallback().evaluations(), 1);
        assert_eq!(ev.fallback_evals(), 1);
        assert_eq!(ev.retries(), 0);
        assert_eq!(obs.registry.snapshot().counters["sa.fallback_evals"], 1);
        assert!(ev.name().contains("always-fails") && ev.name().contains("simulation"));
    }

    #[test]
    fn resilient_evaluator_passes_healthy_primary_through() {
        let p = problem();
        let placement = Placement::new(vec![vec![0, 1]]);
        let mut plain = SimEvaluator::new(SimConfig::new(1_000.0, 5));
        let expected = plain.total_throughput(&p, &placement).unwrap();
        let mut ev = ResilientEvaluator::new(
            SimEvaluator::new(SimConfig::new(1_000.0, 5)),
            ApproxEvaluator::default(),
        );
        let x = ev.total_throughput(&p, &placement).unwrap();
        assert_eq!(x, expected);
        assert_eq!(ev.fallback_evals(), 0);
        assert_eq!(ev.fallback().evaluations(), 0);
    }

    #[test]
    fn loss_probability_formula() {
        assert!((loss_probability(2.0, 1.5) - 0.25).abs() < 1e-12);
        assert_eq!(loss_probability(2.0, 2.5), 0.0); // clamped
    }

    #[test]
    fn relative_reduction_formula() {
        // Initial X = 1.0 of λ = 2.0 (loss 0.5); optimized X = 1.8
        // (loss 0.1): reduction = (1.8 - 1.0) / (2.0 - 1.0) = 0.8.
        assert!((relative_loss_reduction(2.0, 1.0, 1.8) - 0.8).abs() < 1e-12);
        assert_eq!(relative_loss_reduction(2.0, 2.0, 2.0), 0.0);
    }
}
