//! Alternative search strategies used as ablations for the paper's choice
//! of simulated annealing (Section VII motivates SA by its ability to
//! escape local optima): pure random search and greedy hill climbing over
//! the same move neighborhood.

use crate::evaluator::Evaluator;
use crate::problem::PlacementProblem;
use crate::sa::{SaConfig, SimulatedAnnealing};
use chainnet_qsim::model::Placement;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Outcome of a baseline search strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyResult {
    /// Best placement found.
    pub best_placement: Placement,
    /// Its objective value under the evaluator.
    pub best_objective: f64,
    /// Objective of the initial placement.
    pub initial_objective: f64,
    /// Objective evaluations consumed.
    pub evaluations: u64,
    /// Candidate evaluations that failed and were skipped.
    #[serde(default)]
    pub eval_failures: u64,
}

/// Pure random search: each step proposes a random feasible neighbor of
/// the *initial* placement chain (i.e. an independent random walk restart
/// from the best-so-far is never taken; candidates are accepted only into
/// the best-so-far record).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RandomSearch {
    config: SaConfig,
}

impl RandomSearch {
    /// Create a random search reusing the SA move generator / budget.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    /// Run the search. Failed candidate evaluations are skipped (the
    /// walk does not move onto an unevaluable point) and counted in
    /// [`StrategyResult::eval_failures`].
    pub fn optimize(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        evaluator: &mut dyn Evaluator,
    ) -> StrategyResult {
        let mover = SimulatedAnnealing::new(self.config);
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let initial_objective = evaluator
            .total_throughput(problem, initial)
            .unwrap_or(f64::NEG_INFINITY);
        let mut best = initial.clone();
        let mut best_obj = initial_objective;
        let mut eval_failures = 0u64;
        // Random walk: wander from the current point regardless of value,
        // remembering the best. This is SA at infinite temperature.
        let mut current = initial.clone();
        for _ in 0..self.config.max_steps {
            if let Some(candidate) = mover.propose(problem, &current, &mut rng) {
                let Ok(obj) = evaluator.total_throughput(problem, &candidate) else {
                    eval_failures += 1;
                    continue;
                };
                if obj > best_obj {
                    best = candidate.clone();
                    best_obj = obj;
                }
                current = candidate;
            }
        }
        StrategyResult {
            best_placement: best,
            best_objective: best_obj,
            initial_objective,
            evaluations: evaluator.evaluations(),
            eval_failures,
        }
    }
}

/// Greedy hill climbing: accept a candidate only if it improves the
/// current objective (SA at zero temperature).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HillClimb {
    config: SaConfig,
}

impl HillClimb {
    /// Create a hill climber reusing the SA move generator / budget.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    /// Run the search. Failed candidate evaluations are treated as
    /// non-improving (skipped) and counted in
    /// [`StrategyResult::eval_failures`].
    pub fn optimize(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        evaluator: &mut dyn Evaluator,
    ) -> StrategyResult {
        let mover = SimulatedAnnealing::new(self.config);
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let initial_objective = evaluator
            .total_throughput(problem, initial)
            .unwrap_or(f64::NEG_INFINITY);
        let mut current = initial.clone();
        let mut current_obj = initial_objective;
        let mut eval_failures = 0u64;
        for _ in 0..self.config.max_steps {
            if let Some(candidate) = mover.propose(problem, &current, &mut rng) {
                let Ok(obj) = evaluator.total_throughput(problem, &candidate) else {
                    eval_failures += 1;
                    continue;
                };
                if obj > current_obj {
                    current = candidate;
                    current_obj = obj;
                }
            }
        }
        StrategyResult {
            best_placement: current,
            best_objective: current_obj,
            initial_objective,
            evaluations: evaluator.evaluations(),
            eval_failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SimEvaluator;
    use chainnet_qsim::model::{Device, Fragment, ServiceChain};
    use chainnet_qsim::sim::SimConfig;

    fn lopsided_problem() -> PlacementProblem {
        let devices = vec![
            Device::new(3.0, 0.2).unwrap(),
            Device::new(50.0, 3.0).unwrap(),
            Device::new(50.0, 3.0).unwrap(),
        ];
        let chains = vec![ServiceChain::new(
            1.0,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
            ],
        )
        .unwrap()];
        PlacementProblem::new(devices, chains).unwrap()
    }

    #[test]
    fn random_search_never_regresses() {
        let p = lopsided_problem();
        let bad = Placement::new(vec![vec![0, 1]]);
        let mut ev = SimEvaluator::new(SimConfig::new(800.0, 1));
        let rs = RandomSearch::new(SaConfig::paper_default().with_max_steps(20));
        let res = rs.optimize(&p, &bad, &mut ev);
        assert!(res.best_objective >= res.initial_objective);
        assert!(p.is_feasible(&res.best_placement));
    }

    #[test]
    fn hill_climb_improves_bad_start() {
        let p = lopsided_problem();
        let bad = Placement::new(vec![vec![0, 1]]);
        let mut ev = SimEvaluator::new(SimConfig::new(800.0, 2));
        let hc = HillClimb::new(SaConfig::paper_default().with_max_steps(30));
        let res = hc.optimize(&p, &bad, &mut ev);
        assert!(res.best_objective > res.initial_objective);
        assert!(!res.best_placement.chain_route(0).contains(&0));
    }

    #[test]
    fn strategies_count_evaluations() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let mut ev = SimEvaluator::new(SimConfig::new(200.0, 3));
        let rs = RandomSearch::new(SaConfig::paper_default().with_max_steps(10));
        let res = rs.optimize(&p, &init, &mut ev);
        // 1 initial + at most 10 candidates.
        assert!(res.evaluations >= 1 && res.evaluations <= 11);
    }

    #[test]
    fn strategies_are_deterministic() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let cfg = SaConfig::paper_default().with_max_steps(12).with_seed(9);
        let run = |seed: u64| {
            let mut ev = SimEvaluator::new(SimConfig::new(300.0, seed));
            HillClimb::new(cfg).optimize(&p, &init, &mut ev)
        };
        assert_eq!(run(4), run(4));
    }
}
