#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

//! Loss-aware placement optimization: the simulated-annealing search of
//! Section VII of the ChainNet paper, generic over an objective evaluator
//! (queueing simulation or a trained GNN surrogate).
//!
//! # Quick start
//!
//! ```
//! use chainnet_placement::evaluator::SimEvaluator;
//! use chainnet_placement::problem::PlacementProblem;
//! use chainnet_placement::sa::{SaConfig, SimulatedAnnealing};
//! use chainnet_qsim::model::{Device, Fragment, ServiceChain};
//! use chainnet_qsim::sim::SimConfig;
//!
//! # fn main() -> Result<(), chainnet_qsim::QsimError> {
//! let devices = vec![
//!     Device::new(10.0, 0.5)?,
//!     Device::new(10.0, 2.0)?,
//!     Device::new(10.0, 2.0)?,
//! ];
//! let chains = vec![ServiceChain::new(
//!     0.8,
//!     vec![Fragment::new(1.0, 1.0)?, Fragment::new(1.0, 1.0)?],
//! )?];
//! let problem = PlacementProblem::new(devices, chains)?;
//! let initial = problem.initial_placement()?;
//!
//! let mut evaluator = SimEvaluator::new(SimConfig::new(1_000.0, 0));
//! let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(10));
//! let result = sa.optimize(&problem, &initial, &mut evaluator, 1);
//! assert!(result.best_objective >= result.initial_objective);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod error;
pub mod evaluator;
pub mod problem;
pub mod sa;
pub mod strategies;

pub use batch::optimize_batch;
pub use error::PlacementError;
pub use evaluator::{
    loss_probability, relative_loss_reduction, ApproxEvaluator, BatchEvaluator, Evaluator,
    GnnEvaluator, ResilientEvaluator, SimEvaluator,
};
pub use problem::PlacementProblem;
pub use sa::{
    SaCheckpoint, SaConfig, SaImprovement, SaResult, SaTrial, SimulatedAnnealing,
    TerminationReason, SA_CKPT_SCHEMA,
};
pub use strategies::{HillClimb, RandomSearch, StrategyResult};
