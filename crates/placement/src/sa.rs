//! Simulated-annealing placement search (Section VII): fragment-relocation
//! moves with swap-back of displaced fragments, geometric cooling, and
//! multi-trial restarts from a common initial placement.

use crate::evaluator::Evaluator;
use crate::problem::PlacementProblem;
use chainnet_obs::Obs;
use chainnet_qsim::model::Placement;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Telemetry record emitted once per completed trial on the `sa` component.
#[derive(Debug, Clone, Copy, Serialize)]
struct SaTrialEvent {
    kind: &'static str,
    trial: usize,
    proposals: u64,
    accepted: u64,
    improvements: usize,
    best_objective: f64,
    elapsed_secs: f64,
}

/// Configuration of the annealing search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Search steps per trial (100 in the paper's experiments).
    pub max_steps: usize,
    /// Initial temperature `τ_0`.
    pub initial_temp: f64,
    /// Geometric cooling rate `γ ∈ (0, 1)` (0.9 in the paper).
    pub cooling: f64,
    /// RNG seed; trial `t` uses `seed + t`.
    pub seed: u64,
    /// Attempts at generating a feasible candidate before a step is
    /// skipped (counts as a non-improving step).
    pub max_move_attempts: usize,
    /// Hard cap on objective evaluations across the whole search; when
    /// hit, the search stops mid-trial and returns the best-so-far with
    /// [`TerminationReason::MaxEvaluations`]. `None` (default) is
    /// unlimited.
    #[serde(default)]
    pub max_evaluations: Option<u64>,
    /// Wall-clock deadline in seconds for the whole search; when hit,
    /// the search stops mid-trial and returns the best-so-far with
    /// [`TerminationReason::WallClock`]. `None` (default) is unlimited.
    #[serde(default)]
    pub max_wall_secs: Option<f64>,
}

impl SaConfig {
    /// The paper's search settings: 100 steps, cooling 0.9.
    pub fn paper_default() -> Self {
        Self {
            max_steps: 100,
            initial_temp: 0.5,
            cooling: 0.9,
            seed: 0,
            max_move_attempts: 32,
            max_evaluations: None,
            max_wall_secs: None,
        }
    }

    /// Override the seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the step budget (builder-style).
    #[must_use]
    pub fn with_max_steps(mut self, steps: usize) -> Self {
        self.max_steps = steps;
        self
    }

    /// Cap total objective evaluations (builder-style).
    #[must_use]
    pub fn with_max_evaluations(mut self, evals: u64) -> Self {
        self.max_evaluations = Some(evals);
        self
    }

    /// Set a wall-clock deadline in seconds (builder-style). Non-finite
    /// or non-positive values are ignored.
    #[must_use]
    pub fn with_max_wall_secs(mut self, secs: f64) -> Self {
        self.max_wall_secs = Some(secs);
        self
    }
}

impl Default for SaConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Why a multi-trial search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TerminationReason {
    /// Every requested trial ran to its full step count.
    #[default]
    Completed,
    /// The [`SaConfig::max_evaluations`] cap was reached.
    MaxEvaluations,
    /// The [`SaConfig::max_wall_secs`] deadline passed.
    WallClock,
}

impl std::fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Completed => "completed",
            Self::MaxEvaluations => "evaluation cap reached",
            Self::WallClock => "wall-clock deadline reached",
        })
    }
}

/// One recorded search step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaStep {
    /// 0-based step index within the trial.
    pub step: usize,
    /// Objective of the candidate proposed this step.
    pub candidate_objective: f64,
    /// Objective of the current decision after the accept/reject choice.
    pub current_objective: f64,
    /// Best objective seen so far in this trial.
    pub best_objective: f64,
    /// Whether the candidate was accepted.
    pub accepted: bool,
    /// Wall-clock seconds since the trial started.
    pub elapsed_secs: f64,
}

/// A new best-so-far decision found during a trial, with the step index
/// and wall-clock instant it appeared (used by the post-processed curves
/// of Figs. 14c-d and 15).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaImprovement {
    /// 0-based step index within the trial.
    pub step: usize,
    /// Seconds since the trial started.
    pub elapsed_secs: f64,
    /// The new best placement.
    pub placement: Placement,
    /// Its objective value under the search evaluator.
    pub objective: f64,
}

/// The outcome of one trial (one cooling trajectory).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaTrial {
    /// Per-step trajectory (Fig. 14a plots these curves).
    pub steps: Vec<SaStep>,
    /// Every strict improvement of the best-so-far decision, in order.
    pub improvements: Vec<SaImprovement>,
    /// Best placement found in this trial.
    pub best_placement: Placement,
    /// Its objective value.
    pub best_objective: f64,
    /// Wall-clock seconds the trial took.
    pub elapsed_secs: f64,
    /// Candidate evaluations that failed (the candidate was treated as
    /// rejected and the search continued).
    #[serde(default)]
    pub eval_failures: u64,
}

/// The outcome of a multi-trial search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaResult {
    /// All trials, in execution order.
    pub trials: Vec<SaTrial>,
    /// Best placement across trials.
    pub best_placement: Placement,
    /// Its objective value.
    pub best_objective: f64,
    /// Objective of the shared initial placement.
    pub initial_objective: f64,
    /// Total objective evaluations consumed.
    pub evaluations: u64,
    /// Total wall-clock seconds.
    pub elapsed_secs: f64,
    /// Why the search stopped. Budget-bounded searches still return the
    /// best decision found so far.
    #[serde(default)]
    pub termination_reason: TerminationReason,
}

/// The simulated-annealing search driver.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimulatedAnnealing {
    config: SaConfig,
}

impl SimulatedAnnealing {
    /// Create a driver with the given configuration.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    /// The search configuration.
    pub fn config(&self) -> &SaConfig {
        &self.config
    }

    /// Generate a candidate move per Section VII: relocate one random
    /// fragment of a random chain to a device not already used by that
    /// chain, swapping back `b` random displaced fragments. Returns `None`
    /// if no feasible candidate is found within the attempt budget.
    pub fn propose(
        &self,
        problem: &PlacementProblem,
        placement: &Placement,
        rng: &mut SmallRng,
    ) -> Option<Placement> {
        let d = problem.num_devices();
        'attempts: for _ in 0..self.config.max_move_attempts {
            let c = rng.gen_range(0..placement.num_chains());
            let j = rng.gen_range(0..placement.chain_len(c));
            let k = placement.device_of(c, j);
            let route = placement.chain_route(c);
            let candidates: Vec<usize> = (0..d).filter(|k2| !route.contains(k2)).collect();
            let Some(&k2) = candidates.as_slice().choose(rng) else {
                continue;
            };
            let mut next = placement.clone();
            next.set_device(c, j, k2);

            // Fragments of *other* chains currently on k2 may be swapped
            // back to k.
            let others: Vec<(usize, usize)> = placement
                .iter()
                .filter(|&(i, _, kk)| kk == k2 && i != c)
                .map(|(i, jj, _)| (i, jj))
                .collect();
            if !others.is_empty() {
                let b = rng.gen_range(0..=others.len());
                let mut shuffled = others;
                shuffled.shuffle(rng);
                for &(i, jj) in shuffled.iter().take(b) {
                    // Swapping would duplicate a device within chain i?
                    if next.chain_route(i).contains(&k) {
                        continue 'attempts;
                    }
                    next.set_device(i, jj, k);
                }
            }
            if problem.is_feasible(&next) {
                return Some(next);
            }
        }
        None
    }

    /// Run one trial from `initial` (assumed feasible), consuming
    /// objective evaluations from `evaluator`.
    ///
    /// A failed candidate evaluation is treated as a rejected move
    /// (recorded with a `-inf` candidate objective and counted in
    /// [`SaTrial::eval_failures`]); the trial keeps going.
    pub fn run_trial(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        initial_objective: f64,
        evaluator: &mut dyn Evaluator,
        trial_seed: u64,
    ) -> SaTrial {
        self.run_trial_budgeted(
            problem,
            initial,
            initial_objective,
            evaluator,
            trial_seed,
            None,
        )
        .0
    }

    /// [`run_trial`](Self::run_trial) that additionally stops early when
    /// the search-wide budget (deadline / evaluation cap, measured from
    /// `budget`'s start instant) is exhausted. Returns the trial —
    /// best-so-far even when truncated — and the reason it stopped
    /// early, if any.
    fn run_trial_budgeted(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        initial_objective: f64,
        evaluator: &mut dyn Evaluator,
        trial_seed: u64,
        budget: Option<(Instant, Option<f64>, Option<u64>)>,
    ) -> (SaTrial, Option<TerminationReason>) {
        // lint:allow(determinism): wall-clock budget watchdog (bounds runtime; never feeds results)
        let start = Instant::now();
        let mut rng = SmallRng::seed_from_u64(trial_seed);
        let mut current = initial.clone();
        let mut current_obj = initial_objective;
        let mut best = current.clone();
        let mut best_obj = current_obj;
        let mut temp = self.config.initial_temp;
        let mut steps = Vec::with_capacity(self.config.max_steps);
        let mut improvements = Vec::new();
        let mut eval_failures = 0u64;
        let mut stopped: Option<TerminationReason> = None;

        for step in 0..self.config.max_steps {
            if let Some((search_start, deadline, max_evals)) = budget {
                if let Some(secs) = deadline.filter(|s| s.is_finite() && *s >= 0.0) {
                    if search_start.elapsed().as_secs_f64() >= secs {
                        stopped = Some(TerminationReason::WallClock);
                        break;
                    }
                }
                if let Some(cap) = max_evals {
                    if evaluator.evaluations() >= cap {
                        stopped = Some(TerminationReason::MaxEvaluations);
                        break;
                    }
                }
            }
            let (candidate_objective, accepted) = match self.propose(problem, &current, &mut rng) {
                Some(candidate) => match evaluator.total_throughput(problem, &candidate) {
                    Ok(obj) => {
                        let accept = obj > current_obj || {
                            let p = ((obj - current_obj) / temp.max(1e-12)).exp();
                            rng.gen::<f64>() < p
                        };
                        if accept {
                            current = candidate;
                            current_obj = obj;
                            if obj > best_obj {
                                best = current.clone();
                                best_obj = obj;
                                improvements.push(SaImprovement {
                                    step,
                                    elapsed_secs: start.elapsed().as_secs_f64(),
                                    placement: best.clone(),
                                    objective: best_obj,
                                });
                            }
                        }
                        (obj, accept)
                    }
                    Err(_) => {
                        // Graceful degradation: an unevaluable candidate
                        // is simply rejected; the decision state and the
                        // best-so-far record stay intact.
                        eval_failures += 1;
                        (f64::NEG_INFINITY, false)
                    }
                },
                None => (current_obj, false),
            };
            temp *= self.config.cooling;
            steps.push(SaStep {
                step,
                candidate_objective,
                current_objective: current_obj,
                best_objective: best_obj,
                accepted,
                elapsed_secs: start.elapsed().as_secs_f64(),
            });
        }
        (
            SaTrial {
                steps,
                improvements,
                best_placement: best,
                best_objective: best_obj,
                elapsed_secs: start.elapsed().as_secs_f64(),
                eval_failures,
            },
            stopped,
        )
    }

    /// Run `trials` independent trials from the same initial placement
    /// (the paper's multi-start scheme) and keep the best decision.
    pub fn optimize(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        evaluator: &mut dyn Evaluator,
        trials: usize,
    ) -> SaResult {
        self.optimize_observed(problem, initial, evaluator, trials, &Obs::disabled())
    }

    /// [`optimize`](Self::optimize) with search telemetry recorded into
    /// `obs`: `sa.proposals` / `sa.accepted` / `sa.trials` / `sa.evaluations`
    /// counters, `sa.accept_rate` / `sa.best_objective` / `sa.temperature` /
    /// `sa.evals_per_sec` gauges, and one `sa_trial` event per trial.
    /// Metrics are aggregated after each trial, so the hot accept/reject
    /// loop is untouched.
    pub fn optimize_observed(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        evaluator: &mut dyn Evaluator,
        trials: usize,
        obs: &Obs,
    ) -> SaResult {
        // lint:allow(determinism): wall-clock budget watchdog (bounds runtime; never feeds results)
        let start = Instant::now();
        // Graceful degradation: if even the initial placement cannot be
        // evaluated, the search still runs — any successfully evaluated
        // candidate beats `-inf` and becomes the best-so-far.
        let initial_objective = evaluator
            .total_throughput(problem, initial)
            .unwrap_or(f64::NEG_INFINITY);
        let budget = Some((
            start,
            self.config.max_wall_secs,
            self.config.max_evaluations,
        ));
        let mut termination_reason = TerminationReason::Completed;
        let mut result_trials = Vec::with_capacity(trials);
        let mut best = initial.clone();
        let mut best_obj = initial_objective;
        let mut proposals_total = 0u64;
        let mut accepted_total = 0u64;
        for t in 0..trials {
            let (trial, stopped) = self.run_trial_budgeted(
                problem,
                initial,
                initial_objective,
                evaluator,
                self.config.seed.wrapping_add(t as u64),
                budget,
            );
            if trial.best_objective > best_obj {
                best = trial.best_placement.clone();
                best_obj = trial.best_objective;
            }
            if obs.is_enabled() {
                let proposals = trial.steps.len() as u64;
                let accepted = trial.steps.iter().filter(|s| s.accepted).count() as u64;
                proposals_total += proposals;
                accepted_total += accepted;
                obs.registry.counter("sa.trials").inc();
                obs.registry.counter("sa.proposals").add(proposals);
                obs.registry.counter("sa.accepted").add(accepted);
                if trial.eval_failures > 0 {
                    obs.registry
                        .counter("sa.eval_failures")
                        .add(trial.eval_failures);
                }
                if proposals_total > 0 {
                    obs.registry
                        .gauge("sa.accept_rate")
                        .set(accepted_total as f64 / proposals_total as f64);
                }
                obs.registry.gauge("sa.best_objective").set(best_obj);
                obs.registry.gauge("sa.temperature").set(
                    self.config.initial_temp * self.config.cooling.powi(trial.steps.len() as i32),
                );
                obs.events.emit(
                    "sa",
                    &SaTrialEvent {
                        kind: "sa_trial",
                        trial: t,
                        proposals,
                        accepted,
                        improvements: trial.improvements.len(),
                        best_objective: trial.best_objective,
                        elapsed_secs: trial.elapsed_secs,
                    },
                );
            }
            result_trials.push(trial);
            if let Some(reason) = stopped {
                termination_reason = reason;
                break;
            }
        }
        let elapsed_secs = start.elapsed().as_secs_f64();
        let evaluations = evaluator.evaluations();
        if obs.is_enabled() {
            obs.registry.counter("sa.evaluations").add(evaluations);
            if elapsed_secs > 0.0 {
                obs.registry
                    .gauge("sa.evals_per_sec")
                    .set(evaluations as f64 / elapsed_secs);
            }
        }
        SaResult {
            trials: result_trials,
            best_placement: best,
            best_objective: best_obj,
            initial_objective,
            evaluations,
            elapsed_secs,
            termination_reason,
        }
    }

    /// Run trials until `budget_secs` of wall clock is exhausted (the
    /// fixed-time comparison of Section VIII-C4a). At least one trial
    /// always completes.
    pub fn optimize_for(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        evaluator: &mut dyn Evaluator,
        budget_secs: f64,
    ) -> SaResult {
        // lint:allow(determinism): wall-clock budget watchdog (bounds runtime; never feeds results)
        let start = Instant::now();
        let initial_objective = evaluator
            .total_throughput(problem, initial)
            .unwrap_or(f64::NEG_INFINITY);
        let mut result_trials = Vec::new();
        let mut best = initial.clone();
        let mut best_obj = initial_objective;
        let mut t = 0u64;
        loop {
            let trial = self.run_trial(
                problem,
                initial,
                initial_objective,
                evaluator,
                self.config.seed.wrapping_add(t),
            );
            t += 1;
            if trial.best_objective > best_obj {
                best = trial.best_placement.clone();
                best_obj = trial.best_objective;
            }
            result_trials.push(trial);
            if start.elapsed().as_secs_f64() >= budget_secs {
                break;
            }
        }
        SaResult {
            trials: result_trials,
            best_placement: best,
            best_objective: best_obj,
            initial_objective,
            evaluations: evaluator.evaluations(),
            elapsed_secs: start.elapsed().as_secs_f64(),
            // Exhausting the requested time budget *is* this entry
            // point's normal completion.
            termination_reason: TerminationReason::Completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SimEvaluator;
    use chainnet_qsim::model::{Device, Fragment, ServiceChain};
    use chainnet_qsim::sim::SimConfig;

    /// A problem with one obviously bad and one obviously good device.
    fn lopsided_problem() -> PlacementProblem {
        let devices = vec![
            Device::new(3.0, 0.2).unwrap(),  // slow, tiny buffer
            Device::new(50.0, 3.0).unwrap(), // fast, large buffer
            Device::new(50.0, 3.0).unwrap(),
        ];
        let chains = vec![ServiceChain::new(
            1.0,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
            ],
        )
        .unwrap()];
        PlacementProblem::new(devices, chains).unwrap()
    }

    #[test]
    fn proposals_stay_feasible() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default());
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            if let Some(cand) = sa.propose(&p, &init, &mut rng) {
                assert!(p.is_feasible(&cand));
            }
        }
    }

    #[test]
    fn proposals_change_the_placement() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default());
        let mut rng = SmallRng::seed_from_u64(2);
        let cand = sa.propose(&p, &init, &mut rng).unwrap();
        assert_ne!(cand, init);
    }

    #[test]
    fn search_improves_a_bad_start() {
        let p = lopsided_problem();
        // Worst start: both fragments forced through the slow device pair.
        let bad = Placement::new(vec![vec![0, 1]]);
        assert!(p.is_feasible(&bad));
        let mut ev = SimEvaluator::new(SimConfig::new(2_000.0, 3));
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(40).with_seed(4));
        let res = sa.optimize(&p, &bad, &mut ev, 2);
        assert!(
            res.best_objective > res.initial_objective,
            "best {} vs initial {}",
            res.best_objective,
            res.initial_objective
        );
        // The slow device 0 should be avoided in the best placement.
        assert!(!res.best_placement.chain_route(0).contains(&0));
    }

    #[test]
    fn best_objective_is_monotone_within_trial() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let mut ev = SimEvaluator::new(SimConfig::new(1_000.0, 5));
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(30));
        let res = sa.optimize(&p, &init, &mut ev, 1);
        let steps = &res.trials[0].steps;
        for w in steps.windows(2) {
            assert!(w[1].best_objective >= w[0].best_objective);
        }
    }

    #[test]
    fn trial_count_and_steps_respected() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let mut ev = SimEvaluator::new(SimConfig::new(500.0, 6));
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(10));
        let res = sa.optimize(&p, &init, &mut ev, 3);
        assert_eq!(res.trials.len(), 3);
        assert!(res.trials.iter().all(|t| t.steps.len() == 10));
        // 1 initial + up to 30 candidate evaluations.
        assert!(res.evaluations <= 31);
    }

    #[test]
    fn fixed_time_runs_at_least_one_trial() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let mut ev = SimEvaluator::new(SimConfig::new(200.0, 7));
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(5));
        let res = sa.optimize_for(&p, &init, &mut ev, 0.0);
        assert_eq!(res.trials.len(), 1);
    }

    #[test]
    fn observed_search_matches_plain_and_records_metrics() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(12));
        let mut ev1 = SimEvaluator::new(SimConfig::new(500.0, 9));
        let mut ev2 = SimEvaluator::new(SimConfig::new(500.0, 9));
        let plain = sa.optimize(&p, &init, &mut ev1, 2);
        let obs = Obs::enabled();
        let observed = sa.optimize_observed(&p, &init, &mut ev2, 2, &obs);
        // Instrumentation must not perturb the search.
        assert_eq!(plain.best_placement, observed.best_placement);
        assert_eq!(plain.best_objective, observed.best_objective);
        assert_eq!(plain.evaluations, observed.evaluations);
        let snap = obs.registry.snapshot();
        assert_eq!(snap.counters["sa.trials"], 2);
        assert_eq!(snap.counters["sa.proposals"], 24);
        assert_eq!(snap.counters["sa.evaluations"], observed.evaluations);
        let accepted = snap.counters["sa.accepted"];
        assert!(accepted <= 24);
        assert_eq!(snap.gauges["sa.accept_rate"], accepted as f64 / 24.0);
        assert_eq!(snap.gauges["sa.best_objective"], observed.best_objective);
        let expected_temp = 0.5 * 0.9f64.powi(12);
        assert!((snap.gauges["sa.temperature"] - expected_temp).abs() < 1e-12);
    }

    #[test]
    fn search_with_budget_exceeding_needs_runs_to_completion() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let cfg = SaConfig::paper_default()
            .with_max_steps(8)
            .with_max_evaluations(10_000)
            .with_max_wall_secs(3_600.0);
        let mut ev = SimEvaluator::new(SimConfig::new(200.0, 1));
        let res = SimulatedAnnealing::new(cfg).optimize(&p, &init, &mut ev, 2);
        assert_eq!(res.termination_reason, TerminationReason::Completed);
        assert_eq!(res.trials.len(), 2);
    }

    #[test]
    fn evaluation_cap_stops_early_with_best_so_far() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let cfg = SaConfig::paper_default()
            .with_max_steps(50)
            .with_max_evaluations(7);
        let mut ev = SimEvaluator::new(SimConfig::new(200.0, 2));
        let res = SimulatedAnnealing::new(cfg).optimize(&p, &init, &mut ev, 5);
        assert_eq!(res.termination_reason, TerminationReason::MaxEvaluations);
        // The cap is checked before each candidate: at most one overshoot.
        assert!(res.evaluations <= 8, "evaluations {}", res.evaluations);
        assert!(res.trials.len() < 5);
        assert!(res.best_objective >= res.initial_objective);
        assert!(p.is_feasible(&res.best_placement));
    }

    #[test]
    fn wall_clock_deadline_stops_early_with_best_so_far() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let cfg = SaConfig::paper_default()
            .with_max_steps(50)
            .with_max_wall_secs(0.0);
        let mut ev = SimEvaluator::new(SimConfig::new(200.0, 3));
        let res = SimulatedAnnealing::new(cfg).optimize(&p, &init, &mut ev, 3);
        assert_eq!(res.termination_reason, TerminationReason::WallClock);
        // Deadline already passed: only the initial evaluation happened,
        // and the initial placement is returned as best-so-far.
        assert_eq!(res.evaluations, 1);
        assert_eq!(res.best_placement, init);
    }

    #[test]
    fn search_survives_a_nan_rigged_surrogate_via_fallback() {
        use crate::evaluator::{GnnEvaluator, ResilientEvaluator};
        use chainnet::config::ModelConfig;
        use chainnet::graph::PlacementGraph;
        use chainnet::model::{ChainNet, PerfPrediction, Surrogate};
        use chainnet_obs::Obs;

        /// A surrogate whose predictions are rigged to NaN.
        struct NanRigged(ChainNet);
        impl Surrogate for NanRigged {
            fn name(&self) -> &str {
                "nan-rigged"
            }
            fn config(&self) -> &ModelConfig {
                self.0.config()
            }
            fn params(&self) -> &chainnet_neural::params::ParamStore {
                self.0.params()
            }
            fn params_mut(&mut self) -> &mut chainnet_neural::params::ParamStore {
                self.0.params_mut()
            }
            fn loss_on_graph(
                &self,
                tape: &mut chainnet_neural::tape::Tape,
                graph: &PlacementGraph,
                targets: &[chainnet::data::ChainTargets],
            ) -> chainnet_neural::tape::Var {
                self.0.loss_on_graph(tape, graph, targets)
            }
            fn predict(&self, graph: &PlacementGraph) -> Vec<PerfPrediction> {
                self.0
                    .predict(graph)
                    .into_iter()
                    .map(|mut p| {
                        p.throughput = f64::NAN;
                        p
                    })
                    .collect()
            }
        }

        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let obs = Obs::enabled();
        let rigged = GnnEvaluator::new(NanRigged(ChainNet::new(ModelConfig::small(), 7)));
        let mut ev = ResilientEvaluator::new_observed(
            rigged,
            SimEvaluator::new(SimConfig::new(500.0, 4)),
            obs.clone(),
        );
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(10));
        let res = sa.optimize_observed(&p, &init, &mut ev, 1, &obs);
        // The search completed on fallback evaluations alone: the best
        // decision is valid and every evaluation was answered.
        assert_eq!(res.termination_reason, TerminationReason::Completed);
        assert!(res.best_objective.is_finite());
        assert!(res.best_objective > 0.0);
        assert!(p.is_feasible(&res.best_placement));
        assert!(ev.fallback_evals() > 0);
        let snap = obs.registry.snapshot();
        assert!(snap.counters["sa.fallback_evals"] > 0);
        // Every candidate was answered by the fallback, so the SA loop
        // itself saw no failures.
        assert_eq!(res.trials[0].eval_failures, 0);
    }

    #[test]
    fn search_skips_failing_candidates_without_a_fallback() {
        use crate::error::PlacementError;

        /// Fails on every candidate except the very first evaluation.
        struct FailAfterFirst {
            count: u64,
        }
        impl Evaluator for FailAfterFirst {
            fn name(&self) -> &str {
                "fail-after-first"
            }
            fn total_throughput(
                &mut self,
                _problem: &PlacementProblem,
                _placement: &Placement,
            ) -> Result<f64, PlacementError> {
                self.count += 1;
                if self.count == 1 {
                    Ok(0.5)
                } else {
                    Err(PlacementError::NonFiniteObjective {
                        evaluator: "fail-after-first".into(),
                        value: f64::NAN,
                    })
                }
            }
            fn evaluations(&self) -> u64 {
                self.count
            }
        }

        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let mut ev = FailAfterFirst { count: 0 };
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(10));
        let res = sa.optimize(&p, &init, &mut ev, 1);
        // All candidates failed: the initial placement survives as best.
        assert_eq!(res.best_placement, init);
        assert_eq!(res.best_objective, 0.5);
        assert!(res.trials[0].eval_failures > 0);
        assert!(res.trials[0].steps.iter().all(|s| !s.accepted));
    }

    #[test]
    fn same_seed_reproduces_search() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(15));
        let mut ev1 = SimEvaluator::new(SimConfig::new(500.0, 8));
        let mut ev2 = SimEvaluator::new(SimConfig::new(500.0, 8));
        let a = sa.optimize(&p, &init, &mut ev1, 1);
        let b = sa.optimize(&p, &init, &mut ev2, 1);
        assert_eq!(a.best_placement, b.best_placement);
        assert_eq!(a.best_objective, b.best_objective);
    }
}
