//! Simulated-annealing placement search (Section VII): fragment-relocation
//! moves with swap-back of displaced fragments, geometric cooling, and
//! multi-trial restarts from a common initial placement.

use crate::error::PlacementError;
use crate::evaluator::{BatchEvaluator, Evaluator};
use crate::problem::PlacementProblem;
use chainnet_ckpt::{CkptError, CkptStore};
use chainnet_obs::{CancelFlag, Obs};
use chainnet_qsim::model::Placement;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Telemetry record emitted once per completed trial on the `sa` component.
#[derive(Debug, Clone, Copy, Serialize)]
struct SaTrialEvent {
    kind: &'static str,
    trial: usize,
    proposals: u64,
    accepted: u64,
    improvements: usize,
    best_objective: f64,
    elapsed_secs: f64,
}

/// Configuration of the annealing search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Search steps per trial (100 in the paper's experiments).
    pub max_steps: usize,
    /// Initial temperature `τ_0`.
    pub initial_temp: f64,
    /// Geometric cooling rate `γ ∈ (0, 1)` (0.9 in the paper).
    pub cooling: f64,
    /// RNG seed; trial `t` uses `seed + t`.
    pub seed: u64,
    /// Attempts at generating a feasible candidate before a step is
    /// skipped (counts as a non-improving step).
    pub max_move_attempts: usize,
    /// Hard cap on objective evaluations across the whole search; when
    /// hit, the search stops mid-trial and returns the best-so-far with
    /// [`TerminationReason::MaxEvaluations`]. `None` (default) is
    /// unlimited.
    #[serde(default)]
    pub max_evaluations: Option<u64>,
    /// Wall-clock deadline in seconds for the whole search; when hit,
    /// the search stops mid-trial and returns the best-so-far with
    /// [`TerminationReason::WallClock`]. `None` (default) is unlimited.
    #[serde(default)]
    pub max_wall_secs: Option<f64>,
}

impl SaConfig {
    /// The paper's search settings: 100 steps, cooling 0.9.
    pub fn paper_default() -> Self {
        Self {
            max_steps: 100,
            initial_temp: 0.5,
            cooling: 0.9,
            seed: 0,
            max_move_attempts: 32,
            max_evaluations: None,
            max_wall_secs: None,
        }
    }

    /// Override the seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the step budget (builder-style).
    #[must_use]
    pub fn with_max_steps(mut self, steps: usize) -> Self {
        self.max_steps = steps;
        self
    }

    /// Cap total objective evaluations (builder-style).
    #[must_use]
    pub fn with_max_evaluations(mut self, evals: u64) -> Self {
        self.max_evaluations = Some(evals);
        self
    }

    /// Set a wall-clock deadline in seconds (builder-style). Non-finite
    /// or non-positive values are ignored.
    #[must_use]
    pub fn with_max_wall_secs(mut self, secs: f64) -> Self {
        self.max_wall_secs = Some(secs);
        self
    }
}

impl Default for SaConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Why a multi-trial search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TerminationReason {
    /// Every requested trial ran to its full step count.
    #[default]
    Completed,
    /// The [`SaConfig::max_evaluations`] cap was reached.
    MaxEvaluations,
    /// The [`SaConfig::max_wall_secs`] deadline passed.
    WallClock,
    /// Cooperative cancellation (`obs.cancel`, typically a
    /// SIGTERM/SIGINT handler) was requested; the search stopped at the
    /// next step boundary and returned the best-so-far.
    Cancelled,
}

impl std::fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Completed => "completed",
            Self::MaxEvaluations => "evaluation cap reached",
            Self::WallClock => "wall-clock deadline reached",
            Self::Cancelled => "cancelled",
        })
    }
}

/// One recorded search step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaStep {
    /// 0-based step index within the trial.
    pub step: usize,
    /// Objective of the candidate proposed this step.
    pub candidate_objective: f64,
    /// Objective of the current decision after the accept/reject choice.
    pub current_objective: f64,
    /// Best objective seen so far in this trial.
    pub best_objective: f64,
    /// Whether the candidate was accepted.
    pub accepted: bool,
    /// Wall-clock seconds since the trial started.
    pub elapsed_secs: f64,
}

/// A new best-so-far decision found during a trial, with the step index
/// and wall-clock instant it appeared (used by the post-processed curves
/// of Figs. 14c-d and 15).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaImprovement {
    /// 0-based step index within the trial.
    pub step: usize,
    /// Seconds since the trial started.
    pub elapsed_secs: f64,
    /// The new best placement.
    pub placement: Placement,
    /// Its objective value under the search evaluator.
    pub objective: f64,
}

/// The outcome of one trial (one cooling trajectory).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaTrial {
    /// Per-step trajectory (Fig. 14a plots these curves).
    pub steps: Vec<SaStep>,
    /// Every strict improvement of the best-so-far decision, in order.
    pub improvements: Vec<SaImprovement>,
    /// Best placement found in this trial.
    pub best_placement: Placement,
    /// Its objective value.
    pub best_objective: f64,
    /// Wall-clock seconds the trial took.
    pub elapsed_secs: f64,
    /// Candidate evaluations that failed (the candidate was treated as
    /// rejected and the search continued).
    #[serde(default)]
    pub eval_failures: u64,
}

/// The outcome of a multi-trial search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaResult {
    /// All trials, in execution order.
    pub trials: Vec<SaTrial>,
    /// Best placement across trials.
    pub best_placement: Placement,
    /// Its objective value.
    pub best_objective: f64,
    /// Objective of the shared initial placement.
    pub initial_objective: f64,
    /// Total objective evaluations consumed.
    pub evaluations: u64,
    /// Total wall-clock seconds.
    pub elapsed_secs: f64,
    /// Why the search stopped. Budget-bounded searches still return the
    /// best decision found so far.
    #[serde(default)]
    pub termination_reason: TerminationReason,
}

/// Schema version of serialized [`SaCheckpoint`] payloads; bump on any
/// layout change so stale checkpoints are skipped instead of misread.
pub const SA_CKPT_SCHEMA: u32 = 1;

/// The complete resumable state of a checkpointed multi-trial search.
///
/// Holds both search-level state (best-so-far decision, completed
/// trials, cumulative evaluation count) and mid-trial state (current
/// decision, temperature, raw RNG words), so a search killed between
/// steps resumes on the exact annealing trajectory. `step_next == 0`
/// marks a trial boundary: trial [`SaCheckpoint::trial`] has not
/// consumed any randomness yet and is restarted from its seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaCheckpoint {
    /// Configuration of the checkpointed search (must match at resume).
    pub config: SaConfig,
    /// Requested trial count (must match at resume).
    pub trials: usize,
    /// The shared initial placement (must match at resume).
    pub initial: Placement,
    /// Objective of the initial placement (never re-evaluated at resume).
    pub initial_objective: f64,
    /// Objective evaluations consumed so far, across all processes.
    pub evaluations: u64,
    /// Best placement across all completed work.
    pub best: Placement,
    /// Its objective value.
    pub best_objective: f64,
    /// Fully (or budget-) completed trials, in execution order.
    pub completed: Vec<SaTrial>,
    /// 0-based index of the in-flight trial.
    pub trial: usize,
    /// Next step of the in-flight trial; 0 means the trial has not
    /// started and the mid-trial fields below are placeholders.
    pub step_next: usize,
    /// Raw xoshiro256++ state of the in-flight trial's RNG.
    pub rng: [u64; 4],
    /// Current decision of the in-flight trial.
    pub current: Placement,
    /// Its objective value.
    pub current_objective: f64,
    /// Best placement of the in-flight trial.
    pub trial_best: Placement,
    /// Its objective value.
    pub trial_best_objective: f64,
    /// Current temperature of the in-flight trial.
    pub temp: f64,
    /// Steps recorded so far in the in-flight trial.
    pub steps: Vec<SaStep>,
    /// Improvements recorded so far in the in-flight trial.
    pub improvements: Vec<SaImprovement>,
    /// Failed candidate evaluations so far in the in-flight trial.
    pub eval_failures: u64,
}

/// Clamp non-finite objectives to `f64::MIN` before persisting. They
/// arise only from failed evaluations (recorded as `-inf`); the
/// vendored JSON layer maps non-finite floats to `null`, which would
/// not round-trip. `f64::MIN` orders identically against every real
/// objective, so resumed accept/reject decisions are unchanged.
fn finite_or_min(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        f64::MIN
    }
}

/// The one wall-clock read in this crate. Every budget watchdog and
/// telemetry timer routes through here so determinism review has a
/// single audited site; elapsed time bounds runtime and feeds metrics
/// but never feeds search results.
fn wall_timer() -> Instant {
    // lint:allow(determinism): wall-clock budget watchdog / telemetry timer (never feeds results)
    Instant::now()
}

fn sanitize_step(s: &SaStep) -> SaStep {
    SaStep {
        candidate_objective: finite_or_min(s.candidate_objective),
        current_objective: finite_or_min(s.current_objective),
        best_objective: finite_or_min(s.best_objective),
        ..*s
    }
}

fn sanitize_improvement(i: &SaImprovement) -> SaImprovement {
    SaImprovement {
        objective: finite_or_min(i.objective),
        ..i.clone()
    }
}

fn sanitize_trial(t: &SaTrial) -> SaTrial {
    SaTrial {
        steps: t.steps.iter().map(sanitize_step).collect(),
        improvements: t.improvements.iter().map(sanitize_improvement).collect(),
        best_placement: t.best_placement.clone(),
        best_objective: finite_or_min(t.best_objective),
        elapsed_secs: t.elapsed_secs,
        eval_failures: t.eval_failures,
    }
}

/// In-flight accept/reject state of one annealing trial, shared by the
/// plain and checkpointed drivers so both walk the exact same RNG and
/// decision sequence.
struct TrialCore {
    current: Placement,
    current_obj: f64,
    best: Placement,
    best_obj: f64,
    temp: f64,
    steps: Vec<SaStep>,
    improvements: Vec<SaImprovement>,
    eval_failures: u64,
}

impl TrialCore {
    fn fresh(initial: &Placement, initial_objective: f64, initial_temp: f64, cap: usize) -> Self {
        Self {
            current: initial.clone(),
            current_obj: initial_objective,
            best: initial.clone(),
            best_obj: initial_objective,
            temp: initial_temp,
            steps: Vec::with_capacity(cap),
            improvements: Vec::new(),
            eval_failures: 0,
        }
    }

    fn into_trial(self, elapsed_secs: f64) -> SaTrial {
        SaTrial {
            steps: self.steps,
            improvements: self.improvements,
            best_placement: self.best,
            best_objective: self.best_obj,
            elapsed_secs,
            eval_failures: self.eval_failures,
        }
    }
}

/// The simulated-annealing search driver.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimulatedAnnealing {
    config: SaConfig,
}

impl SimulatedAnnealing {
    /// Create a driver with the given configuration.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    /// The search configuration.
    pub fn config(&self) -> &SaConfig {
        &self.config
    }

    /// Generate a candidate move per Section VII: relocate one random
    /// fragment of a random chain to a device not already used by that
    /// chain, swapping back `b` random displaced fragments. Returns `None`
    /// if no feasible candidate is found within the attempt budget.
    pub fn propose(
        &self,
        problem: &PlacementProblem,
        placement: &Placement,
        rng: &mut SmallRng,
    ) -> Option<Placement> {
        let d = problem.num_devices();
        'attempts: for _ in 0..self.config.max_move_attempts {
            let c = rng.gen_range(0..placement.num_chains());
            let j = rng.gen_range(0..placement.chain_len(c));
            let k = placement.device_of(c, j);
            let route = placement.chain_route(c);
            let candidates: Vec<usize> = (0..d).filter(|k2| !route.contains(k2)).collect();
            let Some(&k2) = candidates.as_slice().choose(rng) else {
                continue;
            };
            let mut next = placement.clone();
            next.set_device(c, j, k2);

            // Fragments of *other* chains currently on k2 may be swapped
            // back to k.
            let others: Vec<(usize, usize)> = placement
                .iter()
                .filter(|&(i, _, kk)| kk == k2 && i != c)
                .map(|(i, jj, _)| (i, jj))
                .collect();
            if !others.is_empty() {
                let b = rng.gen_range(0..=others.len());
                let mut shuffled = others;
                shuffled.shuffle(rng);
                for &(i, jj) in shuffled.iter().take(b) {
                    // Swapping would duplicate a device within chain i?
                    if next.chain_route(i).contains(&k) {
                        continue 'attempts;
                    }
                    next.set_device(i, jj, k);
                }
            }
            if problem.is_feasible(&next) {
                return Some(next);
            }
        }
        None
    }

    /// Run one trial from `initial` (assumed feasible), consuming
    /// objective evaluations from `evaluator`.
    ///
    /// A failed candidate evaluation is treated as a rejected move
    /// (recorded with a `-inf` candidate objective and counted in
    /// [`SaTrial::eval_failures`]); the trial keeps going.
    pub fn run_trial(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        initial_objective: f64,
        evaluator: &mut dyn Evaluator,
        trial_seed: u64,
    ) -> SaTrial {
        self.run_trial_budgeted(
            problem,
            initial,
            initial_objective,
            evaluator,
            trial_seed,
            None,
            &CancelFlag::default(),
        )
        .0
    }

    /// [`run_trial`](Self::run_trial) that additionally stops early when
    /// the search-wide budget (deadline / evaluation cap, measured from
    /// `budget`'s start instant) is exhausted or cooperative
    /// cancellation is requested. Returns the trial — best-so-far even
    /// when truncated — and the reason it stopped early, if any.
    #[allow(clippy::too_many_arguments)]
    fn run_trial_budgeted(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        initial_objective: f64,
        evaluator: &mut dyn Evaluator,
        trial_seed: u64,
        budget: Option<(Instant, Option<f64>, Option<u64>)>,
        cancel: &CancelFlag,
    ) -> (SaTrial, Option<TerminationReason>) {
        let start = wall_timer();
        let mut rng = SmallRng::seed_from_u64(trial_seed);
        let mut core = TrialCore::fresh(
            initial,
            initial_objective,
            self.config.initial_temp,
            self.config.max_steps,
        );
        let mut stopped: Option<TerminationReason> = None;

        for step in 0..self.config.max_steps {
            // Cancellation beats budget: a SIGTERM'd search should say
            // so even if the deadline lapsed at the same instant.
            if cancel.is_set() {
                stopped = Some(TerminationReason::Cancelled);
                break;
            }
            if let Some((search_start, deadline, max_evals)) = budget {
                if let Some(secs) = deadline.filter(|s| s.is_finite() && *s >= 0.0) {
                    if search_start.elapsed().as_secs_f64() >= secs {
                        stopped = Some(TerminationReason::WallClock);
                        break;
                    }
                }
                if let Some(cap) = max_evals {
                    if evaluator.evaluations() >= cap {
                        stopped = Some(TerminationReason::MaxEvaluations);
                        break;
                    }
                }
            }
            self.anneal_step(problem, evaluator, &mut rng, &mut core, step, start);
        }
        (core.into_trial(start.elapsed().as_secs_f64()), stopped)
    }

    /// Execute one accept/reject step of a trial, mutating `core` in
    /// place. The RNG call order — propose, evaluate, then a Metropolis
    /// draw only when the candidate does not improve — is the
    /// bit-identity contract between the plain and checkpointed
    /// drivers; do not reorder.
    fn anneal_step(
        &self,
        problem: &PlacementProblem,
        evaluator: &mut dyn Evaluator,
        rng: &mut SmallRng,
        core: &mut TrialCore,
        step: usize,
        trial_start: Instant,
    ) {
        let (candidate_objective, accepted) = match self.propose(problem, &core.current, rng) {
            Some(candidate) => match evaluator.total_throughput(problem, &candidate) {
                Ok(obj) => {
                    let accept = obj > core.current_obj || {
                        let p = ((obj - core.current_obj) / core.temp.max(1e-12)).exp();
                        rng.gen::<f64>() < p
                    };
                    if accept {
                        core.current = candidate;
                        core.current_obj = obj;
                        if obj > core.best_obj {
                            core.best = core.current.clone();
                            core.best_obj = obj;
                            core.improvements.push(SaImprovement {
                                step,
                                elapsed_secs: trial_start.elapsed().as_secs_f64(),
                                placement: core.best.clone(),
                                objective: core.best_obj,
                            });
                        }
                    }
                    (obj, accept)
                }
                Err(_) => {
                    // Graceful degradation: an unevaluable candidate
                    // is simply rejected; the decision state and the
                    // best-so-far record stay intact.
                    core.eval_failures += 1;
                    (f64::NEG_INFINITY, false)
                }
            },
            None => (core.current_obj, false),
        };
        core.temp *= self.config.cooling;
        core.steps.push(SaStep {
            step,
            candidate_objective,
            current_objective: core.current_obj,
            best_objective: core.best_obj,
            accepted,
            elapsed_secs: trial_start.elapsed().as_secs_f64(),
        });
    }

    /// Run `trials` independent trials from the same initial placement
    /// (the paper's multi-start scheme) and keep the best decision.
    pub fn optimize(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        evaluator: &mut dyn Evaluator,
        trials: usize,
    ) -> SaResult {
        self.optimize_observed(problem, initial, evaluator, trials, &Obs::disabled())
    }

    /// [`optimize`](Self::optimize) with search telemetry recorded into
    /// `obs`: `sa.proposals` / `sa.accepted` / `sa.trials` / `sa.evaluations`
    /// counters, `sa.accept_rate` / `sa.best_objective` / `sa.temperature` /
    /// `sa.evals_per_sec` gauges, and one `sa_trial` event per trial.
    /// Metrics are aggregated after each trial, so the hot accept/reject
    /// loop is untouched.
    pub fn optimize_observed(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        evaluator: &mut dyn Evaluator,
        trials: usize,
        obs: &Obs,
    ) -> SaResult {
        let start = wall_timer();
        evaluator.set_tracer(obs.tracer.clone());
        // Graceful degradation: if even the initial placement cannot be
        // evaluated, the search still runs — any successfully evaluated
        // candidate beats `-inf` and becomes the best-so-far.
        let initial_objective = evaluator
            .total_throughput(problem, initial)
            .unwrap_or(f64::NEG_INFINITY);
        let budget = Some((
            start,
            self.config.max_wall_secs,
            self.config.max_evaluations,
        ));
        let mut termination_reason = TerminationReason::Completed;
        let mut result_trials = Vec::with_capacity(trials);
        let mut best = initial.clone();
        let mut best_obj = initial_objective;
        let mut proposals_total = 0u64;
        let mut accepted_total = 0u64;
        for t in 0..trials {
            let trial_span = obs.tracer.span("sa.trial");
            let (trial, stopped) = self.run_trial_budgeted(
                problem,
                initial,
                initial_objective,
                evaluator,
                self.config.seed.wrapping_add(t as u64),
                budget,
                &obs.cancel,
            );
            trial_span.close();
            if trial.best_objective > best_obj {
                best = trial.best_placement.clone();
                best_obj = trial.best_objective;
            }
            if obs.is_enabled() {
                let proposals = trial.steps.len() as u64;
                let accepted = trial.steps.iter().filter(|s| s.accepted).count() as u64;
                proposals_total += proposals;
                accepted_total += accepted;
                obs.registry.counter("sa.trials").inc();
                obs.registry.counter("sa.proposals").add(proposals);
                obs.registry.counter("sa.accepted").add(accepted);
                if trial.eval_failures > 0 {
                    obs.registry
                        .counter("sa.eval_failures")
                        .add(trial.eval_failures);
                }
                if proposals_total > 0 {
                    obs.registry
                        .gauge("sa.accept_rate")
                        .set(accepted_total as f64 / proposals_total as f64);
                }
                obs.registry.gauge("sa.best_objective").set(best_obj);
                obs.registry.gauge("sa.temperature").set(
                    self.config.initial_temp * self.config.cooling.powi(trial.steps.len() as i32),
                );
                obs.events.emit(
                    "sa",
                    &SaTrialEvent {
                        kind: "sa_trial",
                        trial: t,
                        proposals,
                        accepted,
                        improvements: trial.improvements.len(),
                        best_objective: trial.best_objective,
                        elapsed_secs: trial.elapsed_secs,
                    },
                );
            }
            result_trials.push(trial);
            if let Some(reason) = stopped {
                termination_reason = reason;
                break;
            }
        }
        let elapsed_secs = start.elapsed().as_secs_f64();
        let evaluations = evaluator.evaluations();
        if obs.is_enabled() {
            obs.registry.counter("sa.evaluations").add(evaluations);
            if elapsed_secs > 0.0 {
                obs.registry
                    .gauge("sa.evals_per_sec")
                    .set(evaluations as f64 / elapsed_secs);
            }
        }
        SaResult {
            trials: result_trials,
            best_placement: best,
            best_objective: best_obj,
            initial_objective,
            evaluations,
            elapsed_secs,
            termination_reason,
        }
    }

    /// [`optimize_neighborhood_observed`](Self::optimize_neighborhood_observed)
    /// without telemetry.
    pub fn optimize_neighborhood(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        evaluator: &mut dyn BatchEvaluator,
        trials: usize,
        neighborhood: usize,
    ) -> SaResult {
        self.optimize_neighborhood_observed(
            problem,
            initial,
            evaluator,
            trials,
            neighborhood,
            &Obs::disabled(),
        )
    }

    /// Neighborhood-batched annealing: each step proposes up to
    /// `neighborhood` candidates from the current decision, scores them
    /// all in **one** [`BatchEvaluator::total_throughput_batch`] call
    /// (one batched surrogate forward pass for [`GnnEvaluator`]), and
    /// runs the Metropolis accept/reject test against the best-scoring
    /// candidate. Failed candidate evaluations are counted in
    /// [`SaTrial::eval_failures`] and skipped; a step whose whole
    /// neighborhood fails (or yields no feasible proposal) is a rejected
    /// step, exactly like [`optimize`](Self::optimize)'s treatment.
    ///
    /// With an enabled `obs`, each batch call increments the
    /// `sa.batch_evals` counter, and the usual `sa.trials` /
    /// `sa.evaluations` counters and `sa.best_objective` /
    /// `sa.evals_per_sec` gauges are recorded.
    ///
    /// # RNG contract
    ///
    /// This driver consumes randomness on its own schedule —
    /// `neighborhood` proposals, then at most one Metropolis draw, per
    /// step — so its trajectories are **not** comparable with
    /// [`optimize`](Self::optimize) (one proposal per step). They are,
    /// however, deterministic in `(config.seed, neighborhood)` and
    /// identical across batched and per-candidate evaluator backends,
    /// because [`GnnEvaluator`]'s batch path is bit-identical to its
    /// sequential path.
    ///
    /// [`GnnEvaluator`]: crate::evaluator::GnnEvaluator
    pub fn optimize_neighborhood_observed(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        evaluator: &mut dyn BatchEvaluator,
        trials: usize,
        neighborhood: usize,
        obs: &Obs,
    ) -> SaResult {
        let start = wall_timer();
        evaluator.set_tracer(obs.tracer.clone());
        let neighborhood = neighborhood.max(1);
        let initial_objective = evaluator
            .total_throughput(problem, initial)
            .unwrap_or(f64::NEG_INFINITY);
        let mut result_trials = Vec::with_capacity(trials);
        let mut best = initial.clone();
        let mut best_obj = initial_objective;
        let mut termination_reason = TerminationReason::Completed;
        for t in 0..trials {
            let _trial_span = obs.tracer.span("sa.trial");
            let trial_start = wall_timer();
            let mut rng = SmallRng::seed_from_u64(self.config.seed.wrapping_add(t as u64));
            let mut core = TrialCore::fresh(
                initial,
                initial_objective,
                self.config.initial_temp,
                self.config.max_steps,
            );
            for step in 0..self.config.max_steps {
                if obs.cancel.is_set() {
                    termination_reason = TerminationReason::Cancelled;
                    break;
                }
                self.neighborhood_step(
                    problem,
                    evaluator,
                    &mut rng,
                    &mut core,
                    step,
                    neighborhood,
                    trial_start,
                    obs,
                );
            }
            let trial = core.into_trial(trial_start.elapsed().as_secs_f64());
            if trial.best_objective > best_obj {
                best = trial.best_placement.clone();
                best_obj = trial.best_objective;
            }
            if obs.is_enabled() {
                obs.registry.counter("sa.trials").inc();
                if trial.eval_failures > 0 {
                    obs.registry
                        .counter("sa.eval_failures")
                        .add(trial.eval_failures);
                }
                obs.registry.gauge("sa.best_objective").set(best_obj);
            }
            result_trials.push(trial);
            if termination_reason != TerminationReason::Completed {
                break;
            }
        }
        let elapsed_secs = start.elapsed().as_secs_f64();
        let evaluations = evaluator.evaluations();
        if obs.is_enabled() {
            obs.registry.counter("sa.evaluations").add(evaluations);
            if elapsed_secs > 0.0 {
                obs.registry
                    .gauge("sa.evals_per_sec")
                    .set(evaluations as f64 / elapsed_secs);
            }
        }
        SaResult {
            trials: result_trials,
            best_placement: best,
            best_objective: best_obj,
            initial_objective,
            evaluations,
            elapsed_secs,
            termination_reason,
        }
    }

    /// One neighborhood step: propose, batch-evaluate, accept/reject the
    /// best candidate.
    #[allow(clippy::too_many_arguments)]
    fn neighborhood_step(
        &self,
        problem: &PlacementProblem,
        evaluator: &mut dyn BatchEvaluator,
        rng: &mut SmallRng,
        core: &mut TrialCore,
        step: usize,
        neighborhood: usize,
        trial_start: Instant,
        obs: &Obs,
    ) {
        let _iter_span = obs.tracer.span("sa.iteration");
        let mut candidates = Vec::with_capacity(neighborhood);
        for _ in 0..neighborhood {
            if let Some(c) = self.propose(problem, &core.current, rng) {
                candidates.push(c);
            }
        }
        let (candidate_objective, accepted) = if candidates.is_empty() {
            (core.current_obj, false)
        } else {
            let batch_span = obs.tracer.span("sa.batch_eval");
            let scores = evaluator.total_throughput_batch(problem, &candidates);
            batch_span.close();
            if obs.is_enabled() {
                obs.registry.counter("sa.batch_evals").inc();
            }
            core.eval_failures += scores.iter().filter(|r| r.is_err()).count() as u64;
            // Best evaluable candidate wins the neighborhood; ties keep
            // the earliest proposal for determinism.
            let mut chosen: Option<(usize, f64)> = None;
            for (idx, score) in scores.iter().enumerate() {
                if let Ok(obj) = score {
                    if chosen.is_none_or(|(_, top)| *obj > top) {
                        chosen = Some((idx, *obj));
                    }
                }
            }
            match chosen {
                Some((idx, obj)) => {
                    let accept = obj > core.current_obj || {
                        let p = ((obj - core.current_obj) / core.temp.max(1e-12)).exp();
                        rng.gen::<f64>() < p
                    };
                    if accept {
                        core.current = candidates.swap_remove(idx);
                        core.current_obj = obj;
                        if obj > core.best_obj {
                            core.best = core.current.clone();
                            core.best_obj = obj;
                            core.improvements.push(SaImprovement {
                                step,
                                elapsed_secs: trial_start.elapsed().as_secs_f64(),
                                placement: core.best.clone(),
                                objective: core.best_obj,
                            });
                        }
                    }
                    (obj, accept)
                }
                // The whole neighborhood failed to evaluate: rejected step.
                None => (f64::NEG_INFINITY, false),
            }
        };
        core.temp *= self.config.cooling;
        core.steps.push(SaStep {
            step,
            candidate_objective,
            current_objective: core.current_obj,
            best_objective: core.best_obj,
            accepted,
            elapsed_secs: trial_start.elapsed().as_secs_f64(),
        });
    }

    /// [`optimize`](Self::optimize) with crash-safe checkpointing and
    /// no telemetry; see
    /// [`optimize_checkpointed_observed`](Self::optimize_checkpointed_observed).
    ///
    /// # Errors
    ///
    /// See [`optimize_checkpointed_observed`](Self::optimize_checkpointed_observed).
    #[allow(clippy::too_many_arguments)]
    pub fn optimize_checkpointed(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        evaluator: &mut dyn Evaluator,
        trials: usize,
        store: &CkptStore,
        every: usize,
        resume: bool,
    ) -> Result<SaResult, PlacementError> {
        self.optimize_checkpointed_observed(
            problem,
            initial,
            evaluator,
            trials,
            store,
            every,
            resume,
            &Obs::disabled(),
        )
    }

    /// [`optimize_observed`](Self::optimize_observed) with crash-safe
    /// checkpointing: the complete search state — best-so-far placement,
    /// current/best objectives, temperature, raw RNG words, and the
    /// cumulative evaluation count — is persisted to `store` every
    /// `every` steps and at every trial boundary, so a search killed at
    /// any point and rerun with `resume = true` continues the exact
    /// annealing trajectory and lands on a bit-identical best placement.
    ///
    /// The initial placement is evaluated exactly once per search, in
    /// the first process; resumed processes restore its stored
    /// objective. Wall-clock budgets restart at resume (time spent in a
    /// killed process is not carried over), while the evaluation cap
    /// counts evaluations across all processes.
    ///
    /// # Errors
    ///
    /// [`CkptError::InvalidCadence`] when `every == 0`;
    /// [`CkptError::NoCheckpoint`] when `resume` is set but `store`
    /// holds no usable checkpoint; [`CkptError::ResumeMismatch`] when
    /// the latest checkpoint belongs to a different configuration,
    /// trial count, or initial placement; and any I/O failure while
    /// saving.
    #[allow(clippy::too_many_arguments)]
    pub fn optimize_checkpointed_observed(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        evaluator: &mut dyn Evaluator,
        trials: usize,
        store: &CkptStore,
        every: usize,
        resume: bool,
        obs: &Obs,
    ) -> Result<SaResult, PlacementError> {
        let start = wall_timer();
        if every == 0 {
            return Err(PlacementError::Checkpoint(CkptError::InvalidCadence));
        }

        let mut next_seq: u64 = 1;
        let initial_objective: f64;
        let eval_offset: u64;
        let mut completed: Vec<SaTrial>;
        let mut best: Placement;
        let mut best_obj: f64;
        let start_trial: usize;
        let mut mid: Option<SaCheckpoint> = None;
        if resume {
            let (seq, ck) = store.resume_latest_state::<SaCheckpoint>()?;
            self.validate_sa_checkpoint(&ck, trials, initial)?;
            next_seq = seq + 1;
            initial_objective = ck.initial_objective;
            eval_offset = ck.evaluations;
            completed = ck.completed.clone();
            best = ck.best.clone();
            best_obj = ck.best_objective;
            start_trial = ck.trial;
            if ck.step_next > 0 {
                mid = Some(ck);
            }
        } else {
            // Graceful degradation: if even the initial placement cannot
            // be evaluated, the search still runs — any successfully
            // evaluated candidate beats `-inf` and becomes the best.
            initial_objective = evaluator
                .total_throughput(problem, initial)
                .unwrap_or(f64::NEG_INFINITY);
            eval_offset = 0;
            completed = Vec::with_capacity(trials);
            best = initial.clone();
            best_obj = initial_objective;
            start_trial = 0;
        }

        let mut termination_reason = TerminationReason::Completed;
        let mut proposals_total = 0u64;
        let mut accepted_total = 0u64;
        for t in start_trial..trials {
            let trial_start = wall_timer();
            let (mut rng, mut core, first_step) = match mid.take() {
                Some(ck) => (
                    SmallRng::from_state(ck.rng),
                    TrialCore {
                        current: ck.current,
                        current_obj: ck.current_objective,
                        best: ck.trial_best,
                        best_obj: ck.trial_best_objective,
                        temp: ck.temp,
                        steps: ck.steps,
                        improvements: ck.improvements,
                        eval_failures: ck.eval_failures,
                    },
                    ck.step_next,
                ),
                None => (
                    SmallRng::seed_from_u64(self.config.seed.wrapping_add(t as u64)),
                    TrialCore::fresh(
                        initial,
                        initial_objective,
                        self.config.initial_temp,
                        self.config.max_steps,
                    ),
                    0,
                ),
            };
            let mut stopped: Option<TerminationReason> = None;
            for step in first_step..self.config.max_steps {
                // A cancelled (SIGTERM'd) search stops at the step
                // boundary and falls through to the trial-boundary
                // checkpoint below, so the flushed state is exactly the
                // budget-stop shape a later `--resume` understands.
                if obs.cancel.is_set() {
                    stopped = Some(TerminationReason::Cancelled);
                    break;
                }
                if let Some(secs) = self
                    .config
                    .max_wall_secs
                    .filter(|s| s.is_finite() && *s >= 0.0)
                {
                    if start.elapsed().as_secs_f64() >= secs {
                        stopped = Some(TerminationReason::WallClock);
                        break;
                    }
                }
                if let Some(cap) = self.config.max_evaluations {
                    if eval_offset + evaluator.evaluations() >= cap {
                        stopped = Some(TerminationReason::MaxEvaluations);
                        break;
                    }
                }
                self.anneal_step(problem, evaluator, &mut rng, &mut core, step, trial_start);
                let done = step + 1;
                // Mid-trial checkpoints at the cadence; the final step of
                // a trial is covered by the boundary checkpoint below.
                if done % every == 0 && done < self.config.max_steps {
                    let ck = self.checkpoint_state(
                        trials,
                        initial,
                        initial_objective,
                        eval_offset + evaluator.evaluations(),
                        &best,
                        best_obj,
                        &completed,
                        t,
                        done,
                        rng.state(),
                        &core,
                    );
                    store.save_state(next_seq, &ck)?;
                    next_seq += 1;
                }
            }
            let trial = core.into_trial(trial_start.elapsed().as_secs_f64());
            if trial.best_objective > best_obj {
                best = trial.best_placement.clone();
                best_obj = trial.best_objective;
            }
            if obs.is_enabled() {
                let proposals = trial.steps.len() as u64;
                let accepted = trial.steps.iter().filter(|s| s.accepted).count() as u64;
                proposals_total += proposals;
                accepted_total += accepted;
                obs.registry.counter("sa.trials").inc();
                obs.registry.counter("sa.proposals").add(proposals);
                obs.registry.counter("sa.accepted").add(accepted);
                if trial.eval_failures > 0 {
                    obs.registry
                        .counter("sa.eval_failures")
                        .add(trial.eval_failures);
                }
                if proposals_total > 0 {
                    obs.registry
                        .gauge("sa.accept_rate")
                        .set(accepted_total as f64 / proposals_total as f64);
                }
                obs.registry.gauge("sa.best_objective").set(best_obj);
                obs.registry.gauge("sa.temperature").set(
                    self.config.initial_temp * self.config.cooling.powi(trial.steps.len() as i32),
                );
                obs.events.emit(
                    "sa",
                    &SaTrialEvent {
                        kind: "sa_trial",
                        trial: t,
                        proposals,
                        accepted,
                        improvements: trial.improvements.len(),
                        best_objective: trial.best_objective,
                        elapsed_secs: trial.elapsed_secs,
                    },
                );
            }
            completed.push(trial);
            if let Some(reason) = stopped {
                termination_reason = reason;
            }
            // Trial-boundary checkpoint (step_next == 0): always saved,
            // so a completed search leaves a final `trial == trials`
            // record and a resume returns the stored result directly.
            let boundary = self.checkpoint_state(
                trials,
                initial,
                initial_objective,
                eval_offset + evaluator.evaluations(),
                &best,
                best_obj,
                &completed,
                t + 1,
                0,
                SmallRng::seed_from_u64(self.config.seed.wrapping_add(t as u64 + 1)).state(),
                &TrialCore::fresh(initial, initial_objective, self.config.initial_temp, 0),
            );
            store.save_state(next_seq, &boundary)?;
            next_seq += 1;
            if termination_reason != TerminationReason::Completed {
                break;
            }
        }

        let elapsed_secs = start.elapsed().as_secs_f64();
        let process_evals = evaluator.evaluations();
        if obs.is_enabled() {
            obs.registry.counter("sa.evaluations").add(process_evals);
            if elapsed_secs > 0.0 {
                obs.registry
                    .gauge("sa.evals_per_sec")
                    .set(process_evals as f64 / elapsed_secs);
            }
        }
        Ok(SaResult {
            trials: completed,
            best_placement: best,
            best_objective: best_obj,
            initial_objective,
            evaluations: eval_offset + process_evals,
            elapsed_secs,
            termination_reason,
        })
    }

    /// Snapshot the full search state into a [`SaCheckpoint`], clamping
    /// non-finite objectives so the payload round-trips through JSON.
    #[allow(clippy::too_many_arguments)]
    fn checkpoint_state(
        &self,
        trials: usize,
        initial: &Placement,
        initial_objective: f64,
        evaluations: u64,
        best: &Placement,
        best_objective: f64,
        completed: &[SaTrial],
        trial: usize,
        step_next: usize,
        rng: [u64; 4],
        core: &TrialCore,
    ) -> SaCheckpoint {
        SaCheckpoint {
            config: self.config,
            trials,
            initial: initial.clone(),
            initial_objective: finite_or_min(initial_objective),
            evaluations,
            best: best.clone(),
            best_objective: finite_or_min(best_objective),
            completed: completed.iter().map(sanitize_trial).collect(),
            trial,
            step_next,
            rng,
            current: core.current.clone(),
            current_objective: finite_or_min(core.current_obj),
            trial_best: core.best.clone(),
            trial_best_objective: finite_or_min(core.best_obj),
            temp: core.temp,
            steps: core.steps.iter().map(sanitize_step).collect(),
            improvements: core.improvements.iter().map(sanitize_improvement).collect(),
            eval_failures: core.eval_failures,
        }
    }

    /// Reject a checkpoint that does not belong to this exact search:
    /// resuming it would silently change the annealing trajectory.
    fn validate_sa_checkpoint(
        &self,
        ck: &SaCheckpoint,
        trials: usize,
        initial: &Placement,
    ) -> Result<(), PlacementError> {
        let mismatch = |reason: &str| {
            PlacementError::Checkpoint(CkptError::ResumeMismatch {
                reason: reason.to_string(),
            })
        };
        if ck.config != self.config {
            return Err(mismatch(
                "search configuration differs from the checkpointed run",
            ));
        }
        if ck.trials != trials {
            return Err(mismatch("trial count differs from the checkpointed run"));
        }
        if ck.initial != *initial {
            return Err(mismatch(
                "initial placement differs from the checkpointed run",
            ));
        }
        if ck.trial > trials || (ck.trial == trials && ck.step_next != 0) {
            return Err(mismatch("checkpoint is beyond the requested trial count"));
        }
        if ck.step_next > self.config.max_steps {
            return Err(mismatch("checkpoint is beyond the configured step count"));
        }
        Ok(())
    }

    /// Run trials until `budget_secs` of wall clock is exhausted (the
    /// fixed-time comparison of Section VIII-C4a). At least one trial
    /// always completes.
    pub fn optimize_for(
        &self,
        problem: &PlacementProblem,
        initial: &Placement,
        evaluator: &mut dyn Evaluator,
        budget_secs: f64,
    ) -> SaResult {
        let start = wall_timer();
        let initial_objective = evaluator
            .total_throughput(problem, initial)
            .unwrap_or(f64::NEG_INFINITY);
        let mut result_trials = Vec::new();
        let mut best = initial.clone();
        let mut best_obj = initial_objective;
        let mut t = 0u64;
        loop {
            let trial = self.run_trial(
                problem,
                initial,
                initial_objective,
                evaluator,
                self.config.seed.wrapping_add(t),
            );
            t += 1;
            if trial.best_objective > best_obj {
                best = trial.best_placement.clone();
                best_obj = trial.best_objective;
            }
            result_trials.push(trial);
            if start.elapsed().as_secs_f64() >= budget_secs {
                break;
            }
        }
        SaResult {
            trials: result_trials,
            best_placement: best,
            best_objective: best_obj,
            initial_objective,
            evaluations: evaluator.evaluations(),
            elapsed_secs: start.elapsed().as_secs_f64(),
            // Exhausting the requested time budget *is* this entry
            // point's normal completion.
            termination_reason: TerminationReason::Completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SimEvaluator;
    use chainnet_qsim::model::{Device, Fragment, ServiceChain};
    use chainnet_qsim::sim::SimConfig;

    /// A problem with one obviously bad and one obviously good device.
    fn lopsided_problem() -> PlacementProblem {
        let devices = vec![
            Device::new(3.0, 0.2).unwrap(),  // slow, tiny buffer
            Device::new(50.0, 3.0).unwrap(), // fast, large buffer
            Device::new(50.0, 3.0).unwrap(),
        ];
        let chains = vec![ServiceChain::new(
            1.0,
            vec![
                Fragment::new(1.0, 1.0).unwrap(),
                Fragment::new(1.0, 1.0).unwrap(),
            ],
        )
        .unwrap()];
        PlacementProblem::new(devices, chains).unwrap()
    }

    #[test]
    fn proposals_stay_feasible() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default());
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            if let Some(cand) = sa.propose(&p, &init, &mut rng) {
                assert!(p.is_feasible(&cand));
            }
        }
    }

    #[test]
    fn proposals_change_the_placement() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default());
        let mut rng = SmallRng::seed_from_u64(2);
        let cand = sa.propose(&p, &init, &mut rng).unwrap();
        assert_ne!(cand, init);
    }

    #[test]
    fn search_improves_a_bad_start() {
        let p = lopsided_problem();
        // Worst start: both fragments forced through the slow device pair.
        let bad = Placement::new(vec![vec![0, 1]]);
        assert!(p.is_feasible(&bad));
        let mut ev = SimEvaluator::new(SimConfig::new(2_000.0, 3));
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(40).with_seed(4));
        let res = sa.optimize(&p, &bad, &mut ev, 2);
        assert!(
            res.best_objective > res.initial_objective,
            "best {} vs initial {}",
            res.best_objective,
            res.initial_objective
        );
        // The slow device 0 should be avoided in the best placement.
        assert!(!res.best_placement.chain_route(0).contains(&0));
    }

    #[test]
    fn best_objective_is_monotone_within_trial() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let mut ev = SimEvaluator::new(SimConfig::new(1_000.0, 5));
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(30));
        let res = sa.optimize(&p, &init, &mut ev, 1);
        let steps = &res.trials[0].steps;
        for w in steps.windows(2) {
            assert!(w[1].best_objective >= w[0].best_objective);
        }
    }

    #[test]
    fn trial_count_and_steps_respected() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let mut ev = SimEvaluator::new(SimConfig::new(500.0, 6));
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(10));
        let res = sa.optimize(&p, &init, &mut ev, 3);
        assert_eq!(res.trials.len(), 3);
        assert!(res.trials.iter().all(|t| t.steps.len() == 10));
        // 1 initial + up to 30 candidate evaluations.
        assert!(res.evaluations <= 31);
    }

    #[test]
    fn fixed_time_runs_at_least_one_trial() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let mut ev = SimEvaluator::new(SimConfig::new(200.0, 7));
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(5));
        let res = sa.optimize_for(&p, &init, &mut ev, 0.0);
        assert_eq!(res.trials.len(), 1);
    }

    #[test]
    fn observed_search_matches_plain_and_records_metrics() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(12));
        let mut ev1 = SimEvaluator::new(SimConfig::new(500.0, 9));
        let mut ev2 = SimEvaluator::new(SimConfig::new(500.0, 9));
        let plain = sa.optimize(&p, &init, &mut ev1, 2);
        let obs = Obs::enabled();
        let observed = sa.optimize_observed(&p, &init, &mut ev2, 2, &obs);
        // Instrumentation must not perturb the search.
        assert_eq!(plain.best_placement, observed.best_placement);
        assert_eq!(plain.best_objective, observed.best_objective);
        assert_eq!(plain.evaluations, observed.evaluations);
        let snap = obs.registry.snapshot();
        assert_eq!(snap.counters["sa.trials"], 2);
        assert_eq!(snap.counters["sa.proposals"], 24);
        assert_eq!(snap.counters["sa.evaluations"], observed.evaluations);
        let accepted = snap.counters["sa.accepted"];
        assert!(accepted <= 24);
        assert_eq!(snap.gauges["sa.accept_rate"], accepted as f64 / 24.0);
        assert_eq!(snap.gauges["sa.best_objective"], observed.best_objective);
        let expected_temp = 0.5 * 0.9f64.powi(12);
        assert!((snap.gauges["sa.temperature"] - expected_temp).abs() < 1e-12);
    }

    #[test]
    fn traced_search_is_bit_identical_and_records_causal_spans() {
        use chainnet_obs::Tracer;
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(6));
        let mut ev1 = SimEvaluator::new(SimConfig::new(300.0, 11));
        let mut ev2 = SimEvaluator::new(SimConfig::new(300.0, 11));
        let plain = sa.optimize_neighborhood(&p, &init, &mut ev1, 2, 3);
        let obs = Obs::enabled().with_tracer(Tracer::enabled());
        let traced = sa.optimize_neighborhood_observed(&p, &init, &mut ev2, 2, 3, &obs);
        // Span tracing must not perturb the trajectory in any way.
        assert_eq!(plain.best_placement, traced.best_placement);
        assert_eq!(plain.best_objective, traced.best_objective);
        assert_eq!(plain.evaluations, traced.evaluations);
        // Per-step trajectory must be bit-identical under tracing
        // (`elapsed_secs` is wall clock, so it differs between any two
        // runs — compare the decision fields).
        assert_eq!(plain.trials[0].steps.len(), traced.trials[0].steps.len());
        for (a, b) in plain.trials[0].steps.iter().zip(&traced.trials[0].steps) {
            assert_eq!(a.candidate_objective, b.candidate_objective);
            assert_eq!(a.current_objective, b.current_objective);
            assert_eq!(a.best_objective, b.best_objective);
            assert_eq!(a.accepted, b.accepted);
        }
        let trace = obs.tracer.take();
        trace.validate().unwrap();
        let stats = trace.phase_stats();
        assert_eq!(stats["sa.trial"].count, 2);
        assert_eq!(stats["sa.iteration"].count, 12);
        // Iterations are children of trials, batch evals of iterations.
        let trial_ids: Vec<u64> = trace
            .spans
            .iter()
            .filter(|s| s.name == "sa.trial")
            .map(|s| s.id)
            .collect();
        for s in trace.spans.iter().filter(|s| s.name == "sa.iteration") {
            assert!(trial_ids.contains(&s.parent));
        }
    }

    #[test]
    fn search_with_budget_exceeding_needs_runs_to_completion() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let cfg = SaConfig::paper_default()
            .with_max_steps(8)
            .with_max_evaluations(10_000)
            .with_max_wall_secs(3_600.0);
        let mut ev = SimEvaluator::new(SimConfig::new(200.0, 1));
        let res = SimulatedAnnealing::new(cfg).optimize(&p, &init, &mut ev, 2);
        assert_eq!(res.termination_reason, TerminationReason::Completed);
        assert_eq!(res.trials.len(), 2);
    }

    #[test]
    fn evaluation_cap_stops_early_with_best_so_far() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let cfg = SaConfig::paper_default()
            .with_max_steps(50)
            .with_max_evaluations(7);
        let mut ev = SimEvaluator::new(SimConfig::new(200.0, 2));
        let res = SimulatedAnnealing::new(cfg).optimize(&p, &init, &mut ev, 5);
        assert_eq!(res.termination_reason, TerminationReason::MaxEvaluations);
        // The cap is checked before each candidate: at most one overshoot.
        assert!(res.evaluations <= 8, "evaluations {}", res.evaluations);
        assert!(res.trials.len() < 5);
        assert!(res.best_objective >= res.initial_objective);
        assert!(p.is_feasible(&res.best_placement));
    }

    #[test]
    fn wall_clock_deadline_stops_early_with_best_so_far() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let cfg = SaConfig::paper_default()
            .with_max_steps(50)
            .with_max_wall_secs(0.0);
        let mut ev = SimEvaluator::new(SimConfig::new(200.0, 3));
        let res = SimulatedAnnealing::new(cfg).optimize(&p, &init, &mut ev, 3);
        assert_eq!(res.termination_reason, TerminationReason::WallClock);
        // Deadline already passed: only the initial evaluation happened,
        // and the initial placement is returned as best-so-far.
        assert_eq!(res.evaluations, 1);
        assert_eq!(res.best_placement, init);
    }

    #[test]
    fn search_survives_a_nan_rigged_surrogate_via_fallback() {
        use crate::evaluator::{GnnEvaluator, ResilientEvaluator};
        use chainnet::config::ModelConfig;
        use chainnet::graph::PlacementGraph;
        use chainnet::model::{ChainNet, PerfPrediction, Surrogate};
        use chainnet_obs::Obs;

        /// A surrogate whose predictions are rigged to NaN.
        struct NanRigged(ChainNet);
        impl Surrogate for NanRigged {
            fn name(&self) -> &str {
                "nan-rigged"
            }
            fn config(&self) -> &ModelConfig {
                self.0.config()
            }
            fn params(&self) -> &chainnet_neural::params::ParamStore {
                self.0.params()
            }
            fn params_mut(&mut self) -> &mut chainnet_neural::params::ParamStore {
                self.0.params_mut()
            }
            fn loss_on_graph(
                &self,
                tape: &mut chainnet_neural::tape::Tape,
                graph: &PlacementGraph,
                targets: &[chainnet::data::ChainTargets],
            ) -> chainnet_neural::tape::Var {
                self.0.loss_on_graph(tape, graph, targets)
            }
            fn predict(&self, graph: &PlacementGraph) -> Vec<PerfPrediction> {
                self.0
                    .predict(graph)
                    .into_iter()
                    .map(|mut p| {
                        p.throughput = f64::NAN;
                        p
                    })
                    .collect()
            }
        }

        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let obs = Obs::enabled();
        let rigged = GnnEvaluator::new(NanRigged(ChainNet::new(ModelConfig::small(), 7)));
        let mut ev = ResilientEvaluator::new_observed(
            rigged,
            SimEvaluator::new(SimConfig::new(500.0, 4)),
            obs.clone(),
        );
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(10));
        let res = sa.optimize_observed(&p, &init, &mut ev, 1, &obs);
        // The search completed on fallback evaluations alone: the best
        // decision is valid and every evaluation was answered.
        assert_eq!(res.termination_reason, TerminationReason::Completed);
        assert!(res.best_objective.is_finite());
        assert!(res.best_objective > 0.0);
        assert!(p.is_feasible(&res.best_placement));
        assert!(ev.fallback_evals() > 0);
        let snap = obs.registry.snapshot();
        assert!(snap.counters["sa.fallback_evals"] > 0);
        // Every candidate was answered by the fallback, so the SA loop
        // itself saw no failures.
        assert_eq!(res.trials[0].eval_failures, 0);
    }

    #[test]
    fn search_skips_failing_candidates_without_a_fallback() {
        use crate::error::PlacementError;

        /// Fails on every candidate except the very first evaluation.
        struct FailAfterFirst {
            count: u64,
        }
        impl Evaluator for FailAfterFirst {
            fn name(&self) -> &str {
                "fail-after-first"
            }
            fn total_throughput(
                &mut self,
                _problem: &PlacementProblem,
                _placement: &Placement,
            ) -> Result<f64, PlacementError> {
                self.count += 1;
                if self.count == 1 {
                    Ok(0.5)
                } else {
                    Err(PlacementError::NonFiniteObjective {
                        evaluator: "fail-after-first".into(),
                        value: f64::NAN,
                    })
                }
            }
            fn evaluations(&self) -> u64 {
                self.count
            }
        }

        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let mut ev = FailAfterFirst { count: 0 };
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(10));
        let res = sa.optimize(&p, &init, &mut ev, 1);
        // All candidates failed: the initial placement survives as best.
        assert_eq!(res.best_placement, init);
        assert_eq!(res.best_objective, 0.5);
        assert!(res.trials[0].eval_failures > 0);
        assert!(res.trials[0].steps.iter().all(|s| !s.accepted));
    }

    /// A fresh (removed-if-present) per-process temp dir for checkpoints.
    fn ckpt_tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("chainnet-sa-ckpt-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Zero out all wall-clock fields: everything else in a search
    /// result must be bit-identical across kill/resume boundaries.
    fn strip_time(mut r: SaResult) -> SaResult {
        r.elapsed_secs = 0.0;
        for t in &mut r.trials {
            t.elapsed_secs = 0.0;
            for s in &mut t.steps {
                s.elapsed_secs = 0.0;
            }
            for i in &mut t.improvements {
                i.elapsed_secs = 0.0;
            }
        }
        r
    }

    /// Copy checkpoints `1..=upto` from one store's dir to another's,
    /// simulating exactly what a killed process leaves behind.
    fn copy_ckpt_prefix(src: &chainnet_ckpt::CkptStore, dst: &chainnet_ckpt::CkptStore, upto: u64) {
        for seq in src.list().unwrap() {
            if seq <= upto {
                std::fs::copy(src.path_of(seq), dst.path_of(seq)).unwrap();
            }
        }
    }

    #[test]
    fn checkpointed_search_matches_plain_and_writes_at_cadence() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(12));
        let mut ev1 = SimEvaluator::new(SimConfig::new(500.0, 9));
        let mut ev2 = SimEvaluator::new(SimConfig::new(500.0, 9));
        let plain = sa.optimize(&p, &init, &mut ev1, 2);
        let dir = ckpt_tmp_dir("plain");
        let obs = Obs::enabled();
        let store =
            chainnet_ckpt::CkptStore::open_observed(&dir, "sa", SA_CKPT_SCHEMA, &obs).unwrap();
        let ckpt = sa
            .optimize_checkpointed_observed(&p, &init, &mut ev2, 2, &store, 5, false, &obs)
            .unwrap();
        assert_eq!(strip_time(plain), strip_time(ckpt));
        // Two mid-trial saves (steps 5 and 10) plus one boundary save
        // per trial.
        assert_eq!(store.list().unwrap(), vec![1, 2, 3, 4, 5, 6]);
        let snap = obs.registry.snapshot();
        assert_eq!(snap.counters["ckpt.writes"], 6);
        assert_eq!(snap.counters["sa.trials"], 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_and_resumed_search_is_bit_identical() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(12).with_seed(3));
        let dir_full = ckpt_tmp_dir("kill-full");
        let dir_cut = ckpt_tmp_dir("kill-cut");
        let full_store = chainnet_ckpt::CkptStore::open(&dir_full, "sa", SA_CKPT_SCHEMA).unwrap();
        let mut ev_full = SimEvaluator::new(SimConfig::new(500.0, 11));
        let full = sa
            .optimize_checkpointed(&p, &init, &mut ev_full, 2, &full_store, 3, false)
            .unwrap();

        // A kill mid-trial-1 leaves checkpoints 1..=4 behind (three
        // mid-trial saves at steps 3/6/9, one boundary for trial 0).
        let cut_store = chainnet_ckpt::CkptStore::open(&dir_cut, "sa", SA_CKPT_SCHEMA).unwrap();
        copy_ckpt_prefix(&full_store, &cut_store, 4);
        let mut ev_cut = SimEvaluator::new(SimConfig::new(500.0, 11));
        let resumed = sa
            .optimize_checkpointed(&p, &init, &mut ev_cut, 2, &cut_store, 3, true)
            .unwrap();

        assert_eq!(full.evaluations, resumed.evaluations);
        assert_eq!(strip_time(full), strip_time(resumed));
        let _ = std::fs::remove_dir_all(&dir_full);
        let _ = std::fs::remove_dir_all(&dir_cut);
    }

    #[test]
    fn corrupt_latest_checkpoint_falls_back_and_still_matches() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(10).with_seed(5));
        let dir_full = ckpt_tmp_dir("corrupt-full");
        let dir_cut = ckpt_tmp_dir("corrupt-cut");
        let full_store = chainnet_ckpt::CkptStore::open(&dir_full, "sa", SA_CKPT_SCHEMA).unwrap();
        let mut ev_full = SimEvaluator::new(SimConfig::new(500.0, 13));
        let full = sa
            .optimize_checkpointed(&p, &init, &mut ev_full, 1, &full_store, 2, false)
            .unwrap();

        let cut_store = chainnet_ckpt::CkptStore::open(&dir_cut, "sa", SA_CKPT_SCHEMA).unwrap();
        copy_ckpt_prefix(&full_store, &cut_store, 3);
        // Flip one payload bit in the newest surviving checkpoint.
        let newest = cut_store.path_of(3);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&newest, &bytes).unwrap();

        let mut ev_cut = SimEvaluator::new(SimConfig::new(500.0, 13));
        let resumed = sa
            .optimize_checkpointed(&p, &init, &mut ev_cut, 1, &cut_store, 2, true)
            .unwrap();
        // The corrupt file was quarantined and the run fell back to
        // checkpoint 2 — still landing on the identical result.
        assert_eq!(strip_time(full), strip_time(resumed));
        let quarantined = dir_cut.join("sa-00000003.ckpt.corrupt");
        assert!(quarantined.exists(), "corrupt checkpoint not quarantined");
        let _ = std::fs::remove_dir_all(&dir_full);
        let _ = std::fs::remove_dir_all(&dir_cut);
    }

    #[test]
    fn resume_of_completed_search_returns_final_state() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(8).with_seed(7));
        let dir = ckpt_tmp_dir("completed");
        let store = chainnet_ckpt::CkptStore::open(&dir, "sa", SA_CKPT_SCHEMA).unwrap();
        let mut ev1 = SimEvaluator::new(SimConfig::new(500.0, 17));
        let first = sa
            .optimize_checkpointed(&p, &init, &mut ev1, 2, &store, 4, false)
            .unwrap();
        // No work left: the resumed run restores the stored result
        // without consuming a single evaluation.
        let mut ev2 = SimEvaluator::new(SimConfig::new(500.0, 17));
        let resumed = sa
            .optimize_checkpointed(&p, &init, &mut ev2, 2, &store, 4, true)
            .unwrap();
        assert_eq!(ev2.evaluations(), 0);
        assert_eq!(first.evaluations, resumed.evaluations);
        assert_eq!(first.best_placement, resumed.best_placement);
        assert_eq!(first.best_objective, resumed.best_objective);
        assert_eq!(strip_time(first).trials, strip_time(resumed).trials);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_cadence_zero_is_a_typed_error() {
        use crate::error::PlacementError;
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default());
        let dir = ckpt_tmp_dir("cadence");
        let store = chainnet_ckpt::CkptStore::open(&dir, "sa", SA_CKPT_SCHEMA).unwrap();
        let mut ev = SimEvaluator::new(SimConfig::new(200.0, 1));
        let err = sa
            .optimize_checkpointed(&p, &init, &mut ev, 1, &store, 0, false)
            .unwrap_err();
        assert_eq!(
            err,
            PlacementError::Checkpoint(chainnet_ckpt::CkptError::InvalidCadence)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_without_checkpoint_is_a_typed_error() {
        use crate::error::PlacementError;
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default());
        let dir = ckpt_tmp_dir("empty");
        let store = chainnet_ckpt::CkptStore::open(&dir, "sa", SA_CKPT_SCHEMA).unwrap();
        let mut ev = SimEvaluator::new(SimConfig::new(200.0, 1));
        let err = sa
            .optimize_checkpointed(&p, &init, &mut ev, 1, &store, 5, true)
            .unwrap_err();
        assert!(matches!(
            err,
            PlacementError::Checkpoint(chainnet_ckpt::CkptError::NoCheckpoint { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_changed_config_is_a_mismatch() {
        use crate::error::PlacementError;
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let dir = ckpt_tmp_dir("mismatch");
        let store = chainnet_ckpt::CkptStore::open(&dir, "sa", SA_CKPT_SCHEMA).unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(6).with_seed(1));
        let mut ev = SimEvaluator::new(SimConfig::new(200.0, 2));
        sa.optimize_checkpointed(&p, &init, &mut ev, 1, &store, 3, false)
            .unwrap();
        // Same store, different seed: resuming would silently change
        // the trajectory, so it must be refused.
        let other =
            SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(6).with_seed(2));
        let mut ev2 = SimEvaluator::new(SimConfig::new(200.0, 2));
        let err = other
            .optimize_checkpointed(&p, &init, &mut ev2, 1, &store, 3, true)
            .unwrap_err();
        assert!(matches!(
            err,
            PlacementError::Checkpoint(chainnet_ckpt::CkptError::ResumeMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn neighborhood_search_improves_a_bad_start() {
        let p = lopsided_problem();
        let bad = Placement::new(vec![vec![0, 1]]);
        let mut ev = SimEvaluator::new(SimConfig::new(1_000.0, 3));
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(15).with_seed(4));
        let res = sa.optimize_neighborhood(&p, &bad, &mut ev, 1, 4);
        assert!(res.best_objective > res.initial_objective);
        assert!(p.is_feasible(&res.best_placement));
        assert_eq!(res.trials[0].steps.len(), 15);
    }

    #[test]
    fn neighborhood_search_is_deterministic() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(10).with_seed(2));
        let mut ev1 = SimEvaluator::new(SimConfig::new(500.0, 8));
        let mut ev2 = SimEvaluator::new(SimConfig::new(500.0, 8));
        let a = sa.optimize_neighborhood(&p, &init, &mut ev1, 2, 3);
        let b = sa.optimize_neighborhood(&p, &init, &mut ev2, 2, 3);
        assert_eq!(a.best_placement, b.best_placement);
        assert_eq!(a.best_objective, b.best_objective);
        assert_eq!(a.evaluations, b.evaluations);
    }

    /// The batched surrogate backend and a sequential-only backend must
    /// walk the exact same trajectory: the batch path is bit-identical
    /// per candidate, and the driver consumes RNG identically.
    #[test]
    fn neighborhood_trajectory_identical_across_batched_and_sequential_backends() {
        use crate::evaluator::{BatchEvaluator, GnnEvaluator};
        use chainnet::config::ModelConfig;
        use chainnet::model::ChainNet;

        /// A GnnEvaluator stripped of its batch override: scores each
        /// candidate with a separate sequential forward pass.
        struct SequentialOnly(GnnEvaluator<ChainNet>);
        impl Evaluator for SequentialOnly {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn total_throughput(
                &mut self,
                problem: &PlacementProblem,
                placement: &Placement,
            ) -> Result<f64, PlacementError> {
                self.0.total_throughput(problem, placement)
            }
            fn evaluations(&self) -> u64 {
                self.0.evaluations()
            }
        }
        impl BatchEvaluator for SequentialOnly {}

        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let net = ChainNet::new(ModelConfig::small(), 21);
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(12).with_seed(6));
        let mut batched = GnnEvaluator::new(net.clone());
        let mut sequential = SequentialOnly(GnnEvaluator::new(net));
        let a = sa.optimize_neighborhood(&p, &init, &mut batched, 2, 4);
        let b = sa.optimize_neighborhood(&p, &init, &mut sequential, 2, 4);
        assert_eq!(a.best_placement, b.best_placement);
        assert_eq!(a.best_objective.to_bits(), b.best_objective.to_bits());
        assert_eq!(a.evaluations, b.evaluations);
        for (ta, tb) in a.trials.iter().zip(&b.trials) {
            for (sa_step, sb_step) in ta.steps.iter().zip(&tb.steps) {
                assert_eq!(
                    sa_step.candidate_objective.to_bits(),
                    sb_step.candidate_objective.to_bits()
                );
                assert_eq!(sa_step.accepted, sb_step.accepted);
            }
        }
    }

    #[test]
    fn neighborhood_search_records_batch_metrics() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let mut ev = SimEvaluator::new(SimConfig::new(500.0, 9));
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(8));
        let obs = Obs::enabled();
        let res = sa.optimize_neighborhood_observed(&p, &init, &mut ev, 2, 3, &obs);
        let snap = obs.registry.snapshot();
        assert_eq!(snap.counters["sa.trials"], 2);
        // One batch call per step that produced at least one proposal.
        let batches = snap.counters["sa.batch_evals"];
        assert!((1..=16).contains(&batches), "batches {batches}");
        assert_eq!(snap.counters["sa.evaluations"], res.evaluations);
        assert_eq!(snap.gauges["sa.best_objective"], res.best_objective);
    }

    #[test]
    fn same_seed_reproduces_search() {
        let p = lopsided_problem();
        let init = p.initial_placement().unwrap();
        let sa = SimulatedAnnealing::new(SaConfig::paper_default().with_max_steps(15));
        let mut ev1 = SimEvaluator::new(SimConfig::new(500.0, 8));
        let mut ev2 = SimEvaluator::new(SimConfig::new(500.0, 8));
        let a = sa.optimize(&p, &init, &mut ev1, 1);
        let b = sa.optimize(&p, &init, &mut ev2, 1);
        assert_eq!(a.best_placement, b.best_placement);
        assert_eq!(a.best_objective, b.best_objective);
    }
}
