//! Typed errors for placement evaluation and search.
//!
//! Evaluators are fallible: the queueing layer can reject a model or
//! blow its simulation budget, and a surrogate can emit a non-finite
//! prediction. The search drivers never panic on these — they skip or
//! fall back (see [`ResilientEvaluator`](crate::ResilientEvaluator))
//! and always return a best-so-far decision.

use chainnet_ckpt::CkptError;
use chainnet_qsim::QsimError;

/// An evaluator or search-plumbing failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlacementError {
    /// The queueing layer rejected the bound model or failed to
    /// simulate it.
    Qsim(QsimError),
    /// An evaluator produced a non-finite (NaN/inf) objective estimate.
    NonFiniteObjective {
        /// Name of the offending evaluator.
        evaluator: String,
        /// The non-finite value it produced.
        value: f64,
    },
    /// A checkpoint could not be saved, loaded, or matched to the
    /// requested search (see
    /// [`SimulatedAnnealing::optimize_checkpointed`](crate::sa::SimulatedAnnealing::optimize_checkpointed)).
    Checkpoint(CkptError),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Qsim(e) => write!(f, "queueing layer error: {e}"),
            Self::NonFiniteObjective { evaluator, value } => write!(
                f,
                "evaluator '{evaluator}' produced a non-finite objective ({value})"
            ),
            Self::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for PlacementError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Qsim(e) => Some(e),
            Self::NonFiniteObjective { .. } => None,
            Self::Checkpoint(e) => Some(e),
        }
    }
}

impl From<QsimError> for PlacementError {
    fn from(e: QsimError) -> Self {
        Self::Qsim(e)
    }
}

impl From<CkptError> for PlacementError {
    fn from(e: CkptError) -> Self {
        Self::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_evaluator_and_value() {
        let e = PlacementError::NonFiniteObjective {
            evaluator: "gnn".into(),
            value: f64::NAN,
        };
        let s = e.to_string();
        assert!(s.contains("gnn") && s.contains("NaN"));
    }

    #[test]
    fn qsim_errors_convert_and_expose_a_source() {
        let e: PlacementError = QsimError::InvalidModel("no devices".into()).into();
        assert!(e.to_string().contains("no devices"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
