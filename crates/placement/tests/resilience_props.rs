//! Property tests for the resilience layer (satellite of the serving
//! PR): [`ResilientEvaluator`] retry ordering and budget, and
//! [`TerminationReason`] propagation through budget-bounded searches
//! running over a transiently failing primary evaluator.

use chainnet_placement::error::PlacementError;
use chainnet_placement::evaluator::{ApproxEvaluator, Evaluator, ResilientEvaluator};
use chainnet_placement::problem::PlacementProblem;
use chainnet_placement::sa::{SaConfig, SimulatedAnnealing, TerminationReason};
use chainnet_qsim::model::{Device, Fragment, Placement, ServiceChain};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// Who handled one evaluator attempt, in global order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Who {
    Primary { ok: bool },
    Fallback,
}

type CallLog = Arc<Mutex<Vec<Who>>>;

/// A deterministic, transiently failing evaluator: attempt `i` fails
/// iff `(i * 2654435761 + seed) % 101 < fail_mod`. Failures are
/// per-attempt (not per-candidate), so a retry of the same candidate
/// can succeed — exactly the transient shape `ResilientEvaluator`'s
/// retry-once policy targets.
struct Flaky {
    inner: ApproxEvaluator,
    seed: u64,
    fail_mod: u64,
    attempts: u64,
    log: CallLog,
}

impl Flaky {
    fn new(seed: u64, fail_mod: u64, log: CallLog) -> Self {
        Self {
            inner: ApproxEvaluator::default(),
            seed,
            fail_mod,
            attempts: 0,
            log,
        }
    }

    fn fails_now(&self) -> bool {
        (self
            .attempts
            .wrapping_mul(2_654_435_761)
            .wrapping_add(self.seed))
            % 101
            < self.fail_mod
    }
}

impl Evaluator for Flaky {
    fn name(&self) -> &str {
        "flaky"
    }

    fn total_throughput(
        &mut self,
        problem: &PlacementProblem,
        placement: &Placement,
    ) -> Result<f64, PlacementError> {
        let fail = self.fails_now();
        self.attempts += 1;
        if let Ok(mut log) = self.log.lock() {
            log.push(Who::Primary { ok: !fail });
        }
        if fail {
            return Err(PlacementError::NonFiniteObjective {
                evaluator: "flaky".to_string(),
                value: f64::NAN,
            });
        }
        self.inner.total_throughput(problem, placement)
    }

    fn evaluations(&self) -> u64 {
        self.attempts
    }
}

/// Fallback that records its calls and delegates to the analytic model.
struct LoggedFallback {
    inner: ApproxEvaluator,
    log: CallLog,
}

impl Evaluator for LoggedFallback {
    fn name(&self) -> &str {
        "logged-fallback"
    }

    fn total_throughput(
        &mut self,
        problem: &PlacementProblem,
        placement: &Placement,
    ) -> Result<f64, PlacementError> {
        if let Ok(mut log) = self.log.lock() {
            log.push(Who::Fallback);
        }
        self.inner.total_throughput(problem, placement)
    }

    fn evaluations(&self) -> u64 {
        self.inner.evaluations()
    }
}

fn problem() -> PlacementProblem {
    let devices = vec![
        Device::new(10.0, 3.0).expect("device"),
        Device::new(10.0, 2.0).expect("device"),
        Device::new(8.0, 1.5).expect("device"),
    ];
    let chains = vec![
        ServiceChain::new(
            0.8,
            vec![
                Fragment::new(2.0, 1.0).expect("frag"),
                Fragment::new(1.0, 1.0).expect("frag"),
            ],
        )
        .expect("chain"),
        ServiceChain::new(0.5, vec![Fragment::new(1.0, 0.8).expect("frag")]).expect("chain"),
    ];
    PlacementProblem::new(devices, chains).expect("problem")
}

/// Split a global call log back into per-request attempt groups: each
/// request starts with a primary attempt; retries and fallback belong
/// to the same group.
fn groups(log: &[Who]) -> Vec<Vec<Who>> {
    let mut out: Vec<Vec<Who>> = Vec::new();
    let mut i = 0;
    while i < log.len() {
        // A group is: P(ok) | P(fail) P(ok) | P(fail) P(fail) F.
        match log[i] {
            Who::Primary { ok: true } => {
                out.push(vec![log[i]]);
                i += 1;
            }
            Who::Primary { ok: false } => match log.get(i + 1) {
                Some(&Who::Primary { ok: true }) => {
                    out.push(log[i..i + 2].to_vec());
                    i += 2;
                }
                Some(&Who::Primary { ok: false }) => {
                    assert_eq!(
                        log.get(i + 2),
                        Some(&Who::Fallback),
                        "double primary failure must be followed by the fallback"
                    );
                    out.push(log[i..i + 3].to_vec());
                    i += 3;
                }
                other => panic!("dangling primary failure followed by {other:?}"),
            },
            Who::Fallback => panic!("fallback consulted before the primary failed twice"),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-request contract: the primary is always tried first, retried
    /// at most once, and the fallback consulted only after two primary
    /// failures — never more than 3 attempts for one candidate.
    #[test]
    fn retry_ordering_and_budget(seed in 0u64..10_000, fail_mod in 0u64..102, requests in 1usize..40) {
        let log: CallLog = Arc::new(Mutex::new(Vec::new()));
        let problem = problem();
        let placement = problem.initial_placement().expect("feasible initial");
        let mut resilient = ResilientEvaluator::new(
            Flaky::new(seed, fail_mod, Arc::clone(&log)),
            LoggedFallback { inner: ApproxEvaluator::default(), log: Arc::clone(&log) },
        );
        let mut failures = 0usize;
        for _ in 0..requests {
            if resilient.total_throughput(&problem, &placement).is_err() {
                failures += 1;
            }
        }
        let log = log.lock().expect("log lock");
        let groups = groups(&log);
        prop_assert_eq!(groups.len(), requests);
        for g in &groups {
            prop_assert!(g.len() <= 3, "attempt budget exceeded: {g:?}");
        }
        // The analytic fallback never fails on a feasible placement, so
        // every request with a fallback group succeeded.
        prop_assert_eq!(failures, 0);
        // The wrapper's own accounting agrees with the log.
        let retried = groups.iter()
            .filter(|g| matches!(g[..], [Who::Primary { ok: false }, Who::Primary { ok: true }]))
            .count() as u64;
        let fell_back = groups.iter().filter(|g| g.len() == 3).count() as u64;
        prop_assert_eq!(resilient.retries(), retried);
        prop_assert_eq!(resilient.fallback_evals(), fell_back);
    }

    /// An evaluation-capped search over a flaky resilient stack stops
    /// with `MaxEvaluations` and never overshoots the cap by more than
    /// one request's worth of attempts (primary + retry + fallback).
    #[test]
    fn evaluation_cap_terminates_flaky_search(seed in 0u64..10_000, fail_mod in 0u64..60, cap in 1u64..40) {
        let log: CallLog = Arc::new(Mutex::new(Vec::new()));
        let problem = problem();
        let initial = problem.initial_placement().expect("feasible initial");
        let mut ev = ResilientEvaluator::new(
            Flaky::new(seed, fail_mod, Arc::clone(&log)),
            LoggedFallback { inner: ApproxEvaluator::default(), log },
        );
        let sa = SimulatedAnnealing::new(
            SaConfig::paper_default()
                .with_max_steps(500)
                .with_seed(seed)
                .with_max_evaluations(cap),
        );
        let result = sa.optimize(&problem, &initial, &mut ev, 3);
        prop_assert_eq!(result.termination_reason, TerminationReason::MaxEvaluations);
        // The cap is checked before each step; one step spends at most
        // 3 attempts (and the fallback's count rides on top).
        prop_assert!(
            result.evaluations <= cap + 3,
            "evaluations {} overshot cap {}", result.evaluations, cap
        );
    }

    /// A flaky primary does not break determinism: the injected failure
    /// pattern is part of the seed, so the same seed replays the same
    /// search — bit-identical best placement and objective.
    #[test]
    fn flaky_search_is_deterministic_given_seed(seed in 0u64..10_000, fail_mod in 0u64..60) {
        let problem = problem();
        let initial = problem.initial_placement().expect("feasible initial");
        let run = || {
            let log: CallLog = Arc::new(Mutex::new(Vec::new()));
            let mut ev = ResilientEvaluator::new(
                Flaky::new(seed, fail_mod, Arc::clone(&log)),
                LoggedFallback { inner: ApproxEvaluator::default(), log },
            );
            let sa = SimulatedAnnealing::new(
                SaConfig::paper_default().with_max_steps(40).with_seed(seed),
            );
            sa.optimize(&problem, &initial, &mut ev, 2)
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.best_placement, b.best_placement);
        prop_assert_eq!(a.best_objective.to_bits(), b.best_objective.to_bits());
        prop_assert_eq!(a.evaluations, b.evaluations);
        prop_assert_eq!(a.termination_reason, b.termination_reason);
    }

    /// Pre-set cancellation propagates `Cancelled` out of the search no
    /// matter how flaky the evaluator stack is, and the result still
    /// carries a valid (initial) placement.
    #[test]
    fn cancellation_propagates_through_flaky_stack(seed in 0u64..10_000, fail_mod in 0u64..102) {
        use chainnet_obs::Obs;
        let problem = problem();
        let initial = problem.initial_placement().expect("feasible initial");
        let log: CallLog = Arc::new(Mutex::new(Vec::new()));
        let mut ev = ResilientEvaluator::new(
            Flaky::new(seed, fail_mod, Arc::clone(&log)),
            LoggedFallback { inner: ApproxEvaluator::default(), log },
        );
        let sa = SimulatedAnnealing::new(
            SaConfig::paper_default().with_max_steps(50).with_seed(seed),
        );
        let obs = Obs::disabled();
        obs.cancel.set();
        let result = sa.optimize_observed(&problem, &initial, &mut ev, 2, &obs);
        prop_assert_eq!(result.termination_reason, TerminationReason::Cancelled);
        prop_assert!(problem.is_feasible(&result.best_placement));
    }
}
